"""Shim for environments without the ``wheel`` package (legacy editable
installs via ``pip install -e . --no-build-isolation --no-use-pep517``).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
