"""Unit tests for the decision-provenance ledger and chain stitching."""

import threading

from repro.core.testbed import build_linear_testbed
from repro.crypto import cache as verification_cache
from repro.obs import audit as obs_audit
from repro.obs import events as obs_events


def test_record_assigns_sequence_and_attributes():
    led = obs_audit.DecisionLedger()
    first = led.record(
        obs_audit.RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        matched_rule="A/0", note="hello",
    )
    second = led.record("deny", domain="B", reason="no", reason_code="policy_denied")
    assert (first.seq, second.seq) == (0, 1)
    assert first.attribute("note") == "hello"
    assert first.attribute("missing", "x") == "x"
    assert second.kind is obs_audit.RecordKind.DENY
    assert len(led) == 2
    assert led.records(obs_audit.RecordKind.ADMIT)[0].handle == "R1"
    assert led.records(domain="B")[0].reason_code == "policy_denied"


def test_record_picks_up_correlation_scope():
    led = obs_audit.DecisionLedger()
    with obs_events.correlation_scope("req-test-1"):
        rec = led.record(obs_audit.RecordKind.ADMIT, domain="A")
    assert rec.correlation_id == "req-test-1"
    explicit = led.record(
        obs_audit.RecordKind.ADMIT, domain="A", correlation_id="req-other"
    )
    assert explicit.correlation_id == "req-other"


def test_pending_buffer_drains_into_next_record():
    with obs_audit.use_ledger() as led:
        obs_audit.discard_pending()
        obs_audit.note_check(
            "certificate", subject="alice", fingerprint="fp1",
        )
        obs_audit.note_retry(target="B", reason="timeout")
        obs_audit.note_recovery(
            breaker_state="half_open", deadline_remaining_s=1.5,
        )
        rec = led.record(obs_audit.RecordKind.ADMIT, domain="A", granted=True)
        assert [c.kind for c in rec.checks] == ["certificate", "retry"]
        assert rec.retries == 1
        assert rec.breaker_state == "half_open"
        assert rec.deadline_remaining_s == 1.5
        # Drained: the next record starts from a clean buffer.
        rec2 = led.record(obs_audit.RecordKind.ADMIT, domain="B", granted=True)
        assert rec2.checks == () and rec2.retries == 0


def test_discard_pending_drops_stale_notes():
    with obs_audit.use_ledger() as led:
        obs_audit.note_check("certificate", subject="stale")
        obs_audit.discard_pending()
        rec = led.record(obs_audit.RecordKind.ADMIT, domain="A")
        assert rec.checks == ()


def test_everything_is_a_noop_when_disabled():
    assert obs_audit.get_ledger() is None
    obs_audit.note_check("certificate", subject="x")
    obs_audit.note_retry()
    obs_audit.note_recovery(breaker_state="open")
    assert obs_audit.record_decision(
        obs_audit.RecordKind.DENY, domain="A"
    ) is None
    assert obs_audit.record_revocation(fingerprint="fp") is None
    with obs_audit.use_ledger() as led:
        rec = led.record(obs_audit.RecordKind.ADMIT, domain="A")
        # Nothing noted while disabled leaks into the enabled ledger.
        assert rec.checks == ()


def test_revocation_record_shape():
    with obs_audit.use_ledger() as led:
        rec = obs_audit.record_revocation(
            fingerprint="fp-1", subject="/CN=Alice", authority="CA-A",
            at_time=7.0,
        )
    assert rec is not None and rec.kind is obs_audit.RecordKind.REVOKE
    assert rec.domain == "CA-A" and rec.at_time == 7.0
    (check,) = rec.checks
    assert check.kind == "revocation"
    assert check.fingerprint == "fp-1"
    assert check.verdict == "revoked"
    assert len(led) == 1


def test_json_roundtrip_preserves_everything():
    led = obs_audit.DecisionLedger()
    led.record(
        obs_audit.RecordKind.ADMIT, at_time=1.0, domain="A", handle="R1",
        user="/CN=Alice", correlation_id="req-1", granted=True,
        rate_mbps=10.0, window=(0.0, 3600.0), upstream=None, downstream="B",
        matched_rule="A/0", rules_fired=("A/0?x=y", "A/0"),
        checks=(obs_audit.CheckRecord(
            kind="certificate", subject="/CN=Alice", fingerprint="fp",
            source="cache:rar",
        ),),
        path="A>B",
    )
    led.record(
        obs_audit.RecordKind.DENY, domain="B", reason="no capacity",
        reason_code="capacity_exceeded", correlation_id="req-1",
    )
    clone = obs_audit.DecisionLedger.from_json(led.to_json())
    assert [r.to_dict() for r in clone] == [r.to_dict() for r in led]


def test_pending_buffer_is_thread_isolated():
    failures = []
    with obs_audit.use_ledger() as led:
        barrier = threading.Barrier(2)

        def worker(name):
            try:
                obs_audit.discard_pending()
                obs_audit.note_check("certificate", subject=name)
                barrier.wait(timeout=10)
                rec = led.record(
                    obs_audit.RecordKind.ADMIT, domain=name, granted=True,
                )
                if [c.subject for c in rec.checks] != [name]:
                    failures.append((name, rec.checks))
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((name, exc))

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not failures


def test_four_domain_chain_reconstruction():
    """Acceptance: explain a 4-domain reservation — every hop with the
    rules fired, the certificates checked, and the verdict sources."""
    tb = build_linear_testbed(["A", "B", "C", "D"])
    user = tb.add_user("A", "Alice")
    with obs_audit.use_ledger() as led:
        outcome = tb.reserve(
            user, source="A", destination="D", bandwidth_mbps=10.0,
        )
    assert outcome.granted

    # A reservation handle resolves to the same chain as the id itself.
    assert obs_audit.resolve_correlation(
        led, outcome.handles["C"]
    ) == outcome.correlation_id
    assert obs_audit.resolve_correlation(led, "nonsense") is None

    chain = obs_audit.stitch(led, outcome.correlation_id)
    assert chain.granted
    assert chain.path == ("A", "B", "C", "D")
    assert chain.complete_for(("A", "B", "C", "D"))
    assert chain.outcome is not None and chain.outcome.granted
    for depth, hop in enumerate(chain.hops):
        assert hop.kind is obs_audit.RecordKind.ADMIT
        assert hop.matched_rule  # the policy rule that granted it
        kinds = [c.kind for c in hop.checks]
        # One certificate per introduction layer plus the trust summary.
        assert kinds.count("certificate") == depth + 1
        assert "rar_trust" in kinds
        assert all(c.source == "fresh" for c in hop.checks)

    text = obs_audit.render_chain(chain)
    assert "A -> B -> C -> D" in text
    assert "GRANTED" in text
    assert "rule:" in text and "check:" in text

    doc = obs_audit.chain_to_dict(chain)
    assert doc["granted"] and doc["path"] == ["A", "B", "C", "D"]
    assert len(doc["hops"]) == 4


def test_cache_hits_record_cache_source():
    """A repeat of an identical reservation is served from the RAR
    verification cache, and the provenance says so."""
    tb = build_linear_testbed(["A", "B", "C"])
    user = tb.add_user("A", "Alice")
    with obs_audit.use_ledger() as led, verification_cache.use_caches():
        tb.reserve(user, source="A", destination="C", bandwidth_mbps=10.0)
        second = tb.reserve(
            user, source="A", destination="C", bandwidth_mbps=10.0,
        )
    chain = obs_audit.stitch(led, second.correlation_id)
    assert chain.granted and chain.complete_for(("A", "B", "C"))
    for hop in chain.hops:
        trust_checks = [c for c in hop.checks if c.kind == "rar_trust"]
        assert trust_checks and all(
            c.source == "cache:rar" for c in trust_checks
        )
