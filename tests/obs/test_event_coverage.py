"""Correlation coverage: EVERY event kind the fabric can emit must carry
a correlation ID that joins it to its originating trace.  The test is
parametrized over the full ``EventKind`` enum via a scenario table, so
adding a new kind without teaching this test how to produce it fails
loudly instead of silently shipping uncorrelated events."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import ReproError, TunnelError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, TargetKind
from repro.obs import events, spans
from repro.obs.events import EventKind


def inject(testbed, *specs):
    testbed.attach_injector(FaultInjector(FaultPlan(tuple(specs), seed=1)))


# ---------------------------------------------------------------------------
# One scenario per EventKind: run under an event log, return that log.
# ---------------------------------------------------------------------------


def scenario_grant_lifecycle():
    """ADMIT at every hop, then CLAIM and CANCEL everywhere."""
    testbed = build_linear_testbed(["A", "B", "C"])
    user = testbed.add_user("A", "Alice")
    outcome = testbed.reserve(
        user, source="A", destination="C", bandwidth_mbps=10.0,
    )
    assert outcome.granted
    testbed.hop_by_hop.claim(outcome)
    testbed.hop_by_hop.cancel(outcome)


def scenario_deny_and_release():
    """DENY at the refusing hop, RELEASE of the partial path."""
    testbed = build_linear_testbed(["A", "B", "C"])
    testbed.set_policy("C", "Return DENY")
    user = testbed.add_user("A", "Alice")
    outcome = testbed.reserve(
        user, source="A", destination="C", bandwidth_mbps=10.0,
    )
    assert not outcome.granted


def scenario_trust_failure():
    """On-path tampering makes downstream verification fail."""
    from repro.core.messages import F_RES_SPEC

    testbed = build_linear_testbed(["A", "B", "C"])
    user = testbed.add_user("A", "Alice")
    channel = testbed.channels.between(
        testbed.brokers["B"].dn, testbed.brokers["C"].dn
    )

    def inflate(message):
        spec = message.get(F_RES_SPEC)
        if spec is None:
            inner = message.get("inner_rar")
            if inner is not None:
                return message.with_tampered_field("inner_rar", inflate(inner))
            return message
        return message.with_tampered_field(
            F_RES_SPEC, spec.with_attributes(injected=True)
        )

    channel.tamper_hook = inflate
    outcome = testbed.reserve(
        user, source="A", destination="C", bandwidth_mbps=10.0,
    )
    assert not outcome.granted


def scenario_transient_fault_and_retry():
    """One dropped message: FAULT from the injector, RETRY from the
    signalling engine, grant survives."""
    testbed = build_linear_testbed(["A", "B", "C"])
    user = testbed.add_user("A", "Alice")
    inject(
        testbed,
        FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.DROP, ops=1),
    )
    outcome = testbed.reserve(
        user, source="A", destination="C", bandwidth_mbps=10.0,
    )
    assert outcome.granted and outcome.retries >= 1


def scenario_breaker_opens():
    """A persistently dead link burns the retry budget until the
    circuit breaker opens (BREAKER transition events)."""
    testbed = build_linear_testbed(["A", "B", "C"])
    user = testbed.add_user("A", "Alice")
    inject(
        testbed,
        FaultSpec(TargetKind.CHANNEL, "B|C", FaultKind.DROP, ops=None),
    )
    outcome = testbed.reserve(
        user, source="A", destination="C", bandwidth_mbps=10.0,
    )
    assert not outcome.granted


def scenario_unwind_failure():
    """A denial unwinds the partial path, but one broker's cancel
    fails: UNWIND_FAILED, with soft state left to reclaim."""
    testbed = build_linear_testbed(["A", "B", "C"], soft_state_ttl_s=60.0)
    testbed.set_policy("C", "Return DENY")
    user = testbed.add_user("A", "Alice")
    broker_b = testbed.brokers["B"]
    real_cancel = broker_b.cancel

    def refuse(handle, **kwargs):
        raise ReproError("simulated dead broker during unwind")

    broker_b.cancel = refuse
    try:
        outcome = testbed.reserve(
            user, source="A", destination="C", bandwidth_mbps=10.0,
        )
    finally:
        broker_b.cancel = real_cancel
    assert not outcome.granted


def scenario_soft_state_expiry():
    """An unrefreshed lease lapses; the sweep emits EXPIRE events."""
    testbed = build_linear_testbed(["A", "B"], soft_state_ttl_s=60.0)
    user = testbed.add_user("A", "Alice")
    outcome = testbed.reserve(
        user, source="A", destination="B", bandwidth_mbps=10.0,
    )
    assert outcome.granted
    assert testbed.sweep_soft_state(61.0) == 2


def scenario_tunnel_fallback():
    """A broken direct channel degrades a tunnel flow to per-flow
    signalling (FALLBACK)."""
    testbed = build_linear_testbed(["A", "B", "C", "D"])
    user = testbed.add_user("A", "Alice")
    request = testbed.make_request(
        source="A", destination="D", bandwidth_mbps=50.0, duration=7200.0,
    )
    tunnel, outcome = testbed.tunnels.establish(user, request)
    assert outcome.granted
    inject(
        testbed,
        FaultSpec(TargetKind.CHANNEL, "A|D", FaultKind.DROP, ops=None),
    )
    alloc, _, _ = testbed.tunnels.allocate_flow(tunnel.tunnel_id, user, 10.0)
    assert alloc.via == "per-flow"


def scenario_alert_firing():
    """A monitored backlog breach walks the full alert lifecycle; every
    transition is an ALERT event carrying the incident correlation id
    (minted at PENDING, so even a blip's events stitch)."""
    from repro.obs.telemetry import AlertEngine, AlertRule, AlertSeverity
    from repro.obs.telemetry.series import SeriesStore

    engine = AlertEngine([AlertRule(
        name="backlog", kind="threshold",
        metric="work_queue_backlog_s",
        severity=AlertSeverity.CRITICAL,
        group_by="domain", threshold=2.0, for_s=0.0,
    )])
    store = SeriesStore()
    store.record("work_queue_backlog_s", 1.0, 5.0,
                 labels={"domain": "A"})
    engine.step(store, 1.0)
    store.record("work_queue_backlog_s", 2.0, 0.1,
                 labels={"domain": "A"})
    engine.step(store, 2.0)


#: Which scenario produces each kind.  A kind missing here makes the
#: parametrized test fail with a KeyError — the desired tripwire.
SCENARIOS = {
    EventKind.ADMIT: scenario_grant_lifecycle,
    EventKind.CLAIM: scenario_grant_lifecycle,
    EventKind.CANCEL: scenario_grant_lifecycle,
    EventKind.DENY: scenario_deny_and_release,
    EventKind.RELEASE: scenario_deny_and_release,
    EventKind.TRUST_FAILURE: scenario_trust_failure,
    EventKind.FAULT: scenario_transient_fault_and_retry,
    EventKind.RETRY: scenario_transient_fault_and_retry,
    EventKind.BREAKER: scenario_breaker_opens,
    EventKind.UNWIND_FAILED: scenario_unwind_failure,
    EventKind.EXPIRE: scenario_soft_state_expiry,
    EventKind.FALLBACK: scenario_tunnel_fallback,
    EventKind.ALERT: scenario_alert_firing,
}


class TestEveryKindCarriesACorrelationId:
    @pytest.mark.parametrize("kind", list(EventKind), ids=lambda k: k.value)
    def test_kind_emitted_and_correlated(self, kind):
        scenario = SCENARIOS[kind]  # KeyError = untestable new kind
        with events.use_event_log() as log:
            scenario()
        emitted = log.events(kind)
        assert emitted, f"scenario produced no {kind.value} events"
        for event in emitted:
            assert event.correlation_id, (
                f"{kind.value} event has no correlation id: {event}"
            )

    def test_scenario_table_covers_the_enum(self):
        assert set(SCENARIOS) == set(EventKind)


class TestExpireJoinsTheOriginatingTrace:
    def test_expire_carries_the_admission_correlation_id(self):
        """The sweep runs outside any request scope; EXPIRE must still
        carry the ID minted when the reservation was admitted."""
        with events.use_event_log() as log, spans.use_tracer():
            testbed = build_linear_testbed(["A", "B"], soft_state_ttl_s=60.0)
            user = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                user, source="A", destination="B", bandwidth_mbps=10.0,
            )
            assert outcome.granted
            testbed.sweep_soft_state(61.0)
        expires = log.events(EventKind.EXPIRE)
        assert len(expires) == 2
        assert {e.correlation_id for e in expires} == {outcome.correlation_id}

    def test_reservation_stashes_the_correlation_id(self):
        with events.use_event_log():
            testbed = build_linear_testbed(["A", "B"])
            user = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                user, source="A", destination="B", bandwidth_mbps=10.0,
            )
        for domain in "AB":
            resv = testbed.brokers[domain].reservations.get(
                outcome.handles[domain]
            )
            assert resv.correlation_id == outcome.correlation_id


class TestBackgroundWorkOpensSpans:
    def test_soft_state_sweep_is_traced(self):
        with spans.use_tracer() as tracer:
            testbed = build_linear_testbed(["A", "B"], soft_state_ttl_s=60.0)
            user = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                user, source="A", destination="B", bandwidth_mbps=10.0,
            )
            assert outcome.granted
            testbed.sweep_soft_state(61.0)
        sweeps = [s for s in tracer if s.name == "sweep"]
        # One sweep span per broker, each in a trace of its own.
        assert {s.attributes["domain"] for s in sweeps} == {"A", "B"}
        for sweep in sweeps:
            assert sweep.finished
            assert sweep.attributes["reclaimed"] == 1
            assert sweep.trace_id != outcome.correlation_id

    def test_tunnel_fallback_is_traced_and_linked(self):
        with spans.use_tracer() as tracer, events.use_event_log() as log:
            scenario_tunnel_fallback()
        fallbacks = [s for s in tracer if s.name == "tunnel_fallback"]
        assert len(fallbacks) == 1
        span = fallbacks[0]
        assert span.finished and span.status == "ok"
        # The degradation span links to the per-flow reservation's own
        # trace, and the FALLBACK event shares the degradation's ID.
        assert span.attributes["link"].startswith("req-")
        fallback_events = log.events(EventKind.FALLBACK)
        assert len(fallback_events) == 1
        assert fallback_events[0].correlation_id == span.trace_id

    def test_denied_fallback_span_marks_error(self):
        with spans.use_tracer() as tracer:
            testbed = build_linear_testbed(["A", "B", "C", "D"])
            user = testbed.add_user("A", "Alice")
            request = testbed.make_request(
                source="A", destination="D", bandwidth_mbps=50.0,
                duration=7200.0,
            )
            tunnel, outcome = testbed.tunnels.establish(user, request)
            assert outcome.granted
            testbed.set_policy("B", "Return DENY")
            inject(
                testbed,
                FaultSpec(TargetKind.CHANNEL, "A|D", FaultKind.DROP,
                          ops=None),
            )
            with pytest.raises(TunnelError, match="fallback"):
                testbed.tunnels.allocate_flow(tunnel.tunnel_id, user, 10.0)
        span = next(s for s in tracer if s.name == "tunnel_fallback")
        assert span.status == "error"
        assert span.attributes["error"]
