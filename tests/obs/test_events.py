"""Structured events: lifecycle records on grant and deny-with-release
paths, correlation tagging, and log bounds."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.obs import events
from repro.obs.events import EventKind, EventLog, correlation_scope


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit(EventKind.ADMIT, domain="A", handle="H-1")
        log.emit(EventKind.DENY, domain="B", reason="policy")
        log.emit(EventKind.ADMIT, domain="B")
        assert len(log) == 3
        assert len(log.events(EventKind.ADMIT)) == 2
        assert log.events(EventKind.DENY)[0].reason == "policy"
        assert len(log.events(domain="B")) == 2

    def test_bounded_retention(self):
        log = EventLog(max_events=10)
        for i in range(25):
            log.emit(EventKind.CLAIM, handle=f"H-{i}")
        assert len(log) == 10
        assert log.emitted == 25
        assert log.events()[0].handle == "H-15"

    def test_correlation_scope_tags_events(self):
        log = EventLog()
        with correlation_scope("req-000042"):
            log.emit(EventKind.ADMIT, domain="A")
        log.emit(EventKind.ADMIT, domain="B")
        tagged = log.events(correlation_id="req-000042")
        assert len(tagged) == 1 and tagged[0].domain == "A"
        assert log.events(domain="B")[0].correlation_id == ""

    def test_to_dict(self):
        log = EventLog()
        event = log.emit(
            EventKind.RELEASE, at_time=5.0, domain="B", handle="H-9",
            reason="denied by C", rate_mbps=10.0,
        )
        d = event.to_dict()
        assert d["kind"] == "release"
        assert d["attributes"] == {"rate_mbps": "10.0"}

    def test_disabled_by_default(self):
        assert events.get_event_log() is None


class TestGrantPath:
    def test_admit_per_domain_then_claim_and_cancel(self):
        with events.use_event_log() as log:
            testbed = build_linear_testbed(["A", "B", "C"])
            user = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                user, source="A", destination="C", bandwidth_mbps=10.0,
            )
            assert outcome.granted
            testbed.hop_by_hop.claim(outcome)
            testbed.hop_by_hop.cancel(outcome)

        admits = log.events(EventKind.ADMIT,
                            correlation_id=outcome.correlation_id)
        assert [e.domain for e in admits] == ["A", "B", "C"]
        assert all(e.handle for e in admits)
        assert {e.domain for e in log.events(EventKind.CLAIM)} == {"A", "B", "C"}
        assert {e.domain for e in log.events(EventKind.CANCEL)} == {"A", "B", "C"}
        assert not log.events(EventKind.DENY)
        assert not log.events(EventKind.RELEASE)


class TestDenyPath:
    def test_deny_releases_upstream_grants(self):
        with events.use_event_log() as log:
            testbed = build_linear_testbed(["A", "B", "C"])
            testbed.set_policy("C", "Return DENY")
            user = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                user, source="A", destination="C", bandwidth_mbps=10.0,
            )
        assert not outcome.granted

        denies = log.events(EventKind.DENY,
                            correlation_id=outcome.correlation_id)
        assert [e.domain for e in denies] == ["C"]
        releases = log.events(EventKind.RELEASE,
                              correlation_id=outcome.correlation_id)
        # A and B granted before the denial; both partial grants released.
        assert {e.domain for e in releases} == {"A", "B"}
        assert all("denied by C" in e.reason for e in releases)
