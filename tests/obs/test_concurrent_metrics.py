"""Hammer tests: obs instruments stay exact under concurrent writers.

The concurrent signaller meters from every worker thread, so counters,
gauges, histograms and the tracer must not tear: N threads x M
operations must land on exactly N*M — a single lost read-modify-write
makes these totals drift.  Each test drives a shared instrument from
many threads and asserts the *exact* expected value, which fails with
high probability under any unlocked update.
"""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

THREADS = 8
OPS = 2_000


def hammer(worker):
    """Run *worker(thread_index)* on THREADS threads; re-raise failures."""
    errors = []

    def call(i):
        try:
            worker(i)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=call, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


class TestCounters:
    def test_exact_total_under_hammer(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammered_total", "hammer target")
        hammer(lambda i: [counter.inc() for _ in range(OPS)])
        assert counter.value() == THREADS * OPS

    def test_labelled_series_do_not_tear(self):
        """Every thread hits its own label set AND one shared set: both
        the per-thread and the contended series must be exact."""
        registry = MetricsRegistry()
        counter = registry.counter("labelled_total", "hammer target")

        def worker(i):
            for _ in range(OPS):
                counter.inc(worker=str(i))
                counter.inc(worker="shared")

        hammer(worker)
        for i in range(THREADS):
            assert counter.value(worker=str(i)) == OPS
        assert counter.value(worker="shared") == THREADS * OPS
        assert counter.total() == 2 * THREADS * OPS

    def test_concurrent_instrument_creation_is_single(self):
        """All threads race registry.counter() for the same name: they
        must all receive the SAME instrument (no lost increments into
        an orphaned duplicate)."""
        registry = MetricsRegistry()

        def worker(i):
            c = registry.counter("raced_total", "hammer target")
            for _ in range(OPS):
                c.inc()

        hammer(worker)
        assert registry.counter("raced_total").value() == THREADS * OPS


class TestGaugesAndHistograms:
    def test_gauge_inc_dec_balance(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight", "hammer target")

        def worker(i):
            for _ in range(OPS):
                gauge.inc(2.0)
                gauge.dec(2.0)

        hammer(worker)
        assert gauge.value() == 0.0

    def test_histogram_count_and_sum_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "latencies", "hammer target", buckets=(0.1, 1.0, 10.0)
        )

        # Dyadic values: their float sums are exact, so any drift in the
        # total is a lost update, not rounding.
        def worker(i):
            for _ in range(OPS):
                hist.observe(0.0625)
                hist.observe(4.0)

        hammer(worker)
        assert hist.count() == 2 * THREADS * OPS
        assert hist.sum() == (0.0625 + 4.0) * THREADS * OPS
        cumulative = dict(hist.cumulative_buckets())
        assert cumulative[0.1] == THREADS * OPS
        assert cumulative[10.0] == 2 * THREADS * OPS


class TestTracer:
    def test_span_ids_unique_and_all_finished(self):
        tracer = Tracer()
        root = tracer.begin("batch", trace_id="trace-1")

        def worker(i):
            for n in range(200):
                span = tracer.begin(
                    f"job-{i}", trace_id="trace-1", parent=root, n=n
                )
                tracer.end(span, result="ok")

        hammer(worker)
        tracer.end(root)
        spans = tracer.spans_for("trace-1")
        assert len(spans) == THREADS * 200 + 1
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        assert all(s.finished for s in spans)
        # end() merged the attribute under the lock: nothing torn away.
        children = [s for s in spans if s.parent_id == root.span_id]
        assert all(s.attributes.get("result") == "ok" for s in children)
        assert all(s.status == "ok" for s in children)

    def test_record_backdates_safely_under_hammer(self):
        from repro.obs.spans import phase_clock

        tracer = Tracer()
        root = tracer.begin("batch", trace_id="trace-2")

        def worker(i):
            for _ in range(200):
                t0 = phase_clock()
                tracer.record(
                    "phase", parent=root, start_wall=t0, worker=i
                )

        hammer(worker)
        phases = [
            s for s in tracer.spans_for("trace-2") if s.name == "phase"
        ]
        assert len(phases) == THREADS * 200
        assert all(s.finished and s.wall_duration_s >= 0.0 for s in phases)

    def test_concurrent_traces_stay_separate(self):
        tracer = Tracer()

        def worker(i):
            trace = f"trace-{i}"
            for n in range(200):
                span = tracer.begin("op", trace_id=trace, n=n)
                tracer.end(span)

        hammer(worker)
        assert len(tracer.traces()) == THREADS
        for i in range(THREADS):
            assert len(tracer.spans_for(f"trace-{i}")) == 200
