"""Histogram quantiles and the exporters that surface them, the
snapshot differ behind ``repro metrics --diff``, and the
``Histogram.time()`` context manager."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    EXPORTED_QUANTILES,
    diff_snapshots,
    json_snapshot,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry, interpolate_quantile


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestInterpolateQuantile:
    def test_empty_distribution_is_zero(self):
        assert interpolate_quantile([1.0, 2.0], [0, 0], 0.95) == 0.0

    def test_interpolates_within_the_bucket(self):
        # 10 observations, all in (0, 1]: the median sits mid-bucket.
        assert interpolate_quantile([1.0, 2.0], [10, 0], 0.5) == pytest.approx(0.5)

    def test_interpolates_across_buckets(self):
        bounds, counts = [1.0, 2.0, 4.0], [5, 5, 0]
        assert interpolate_quantile(bounds, counts, 0.5) == pytest.approx(1.0)
        assert interpolate_quantile(bounds, counts, 0.75) == pytest.approx(1.5)

    def test_inf_bucket_clamps_to_last_bound(self):
        # All mass beyond the finite bounds.
        assert interpolate_quantile([1.0, 2.0], [0, 0, 10][:2], 0.99) == 0.0
        bounds, counts = [1.0, 2.0], [1, 0]
        # Rank beyond the tracked mass -> clamp to the largest bound.
        assert interpolate_quantile(bounds, counts, 1.0) == pytest.approx(1.0)

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ObservabilityError):
            interpolate_quantile([1.0], [1], 1.5)


class TestHistogramQuantiles:
    def test_per_series_quantile(self, registry):
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for _ in range(9):
            hist.observe(0.05, domain="A")
        hist.observe(5.0, domain="A")
        hist.observe(5.0, domain="B")
        p50_a = hist.quantile(0.5, domain="A")
        assert 0.0 < p50_a <= 0.1
        assert hist.quantile(0.5, domain="B") > 1.0
        # Absent series estimates zero rather than raising.
        assert hist.quantile(0.5, domain="Z") == 0.0

    def test_aggregate_quantile_merges_series(self, registry):
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            hist.observe(0.05, domain="A")
        hist.observe(5.0, domain="B")
        assert hist.aggregate_quantile(0.5) <= 0.1
        assert hist.aggregate_quantile(0.999) > 1.0


class TestExportedQuantiles:
    def _observe(self, registry):
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for _ in range(10):
            hist.observe(0.05, domain="A")

    def test_prometheus_text_has_quantile_series(self, registry):
        self._observe(registry)
        text = prometheus_text(registry)
        for q in EXPORTED_QUANTILES:
            assert f'quantile="{q}"' in text
        line = next(
            l for l in text.splitlines() if 'quantile="0.5"' in l
        )
        assert float(line.split()[-1]) <= 0.1

    def test_json_snapshot_has_p50_p95_p99(self, registry):
        self._observe(registry)
        snap = json_snapshot(registry)
        series = snap["lat_seconds"]["series"][0]
        assert set(series["quantiles"]) == {"p50", "p95", "p99"}
        assert 0.0 < series["quantiles"]["p95"] <= 0.1


class TestDiffSnapshots:
    def _snap(self, counter_value, observations):
        registry = MetricsRegistry()
        registry.counter("messages_total").inc(counter_value, domain="A")
        hist = registry.histogram("lat", buckets=(1.0,))
        for _ in range(observations):
            hist.observe(0.5)
        return json_snapshot(registry)

    def test_identical_snapshots_agree(self):
        assert diff_snapshots(self._snap(3, 2), self._snap(3, 2)) == []

    def test_value_delta_reported(self):
        lines = diff_snapshots(self._snap(3, 2), self._snap(5, 2))
        assert any(
            "messages_total" in l and "3 -> 5 (+2)" in l for l in lines
        )

    def test_histogram_count_delta_reported(self):
        lines = diff_snapshots(self._snap(3, 2), self._snap(3, 7))
        assert any("lat" in l and "2 -> 7" in l for l in lines)

    def test_one_sided_metrics_and_series(self):
        a = self._snap(3, 2)
        b = self._snap(3, 2)
        extra = MetricsRegistry()
        extra.counter("only_in_b").inc()
        b["only_in_b"] = json_snapshot(extra)["only_in_b"]
        lines = diff_snapshots(a, b)
        assert any("+ metric only_in_b" in l for l in lines)
        lines = diff_snapshots(b, a)
        assert any("- metric only_in_b" in l for l in lines)


class TestHistogramTimer:
    def test_observes_on_clean_exit(self, registry):
        hist = registry.histogram("op_seconds", buckets=(0.1, 1.0))
        with hist.time(op="x"):
            pass
        assert hist.count(op="x") == 1
        assert hist.sum(op="x") >= 0.0

    def test_records_nothing_when_the_block_raises(self, registry):
        hist = registry.histogram("op_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            with hist.time(op="x"):
                raise ValueError("boom")
        assert hist.count(op="x") == 0
