"""Alert rules and the pending → firing → resolved lifecycle."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import EventKind, EventLog
from repro.obs.telemetry import (
    AlertEngine,
    AlertRule,
    AlertSeverity,
    AlertState,
    FlightRecorder,
    RecordingWriter,
    chaos_rules,
    default_rules,
)
from repro.obs.telemetry.series import SeriesStore


def _backlog_rule(**overrides):
    params = dict(
        name="backlog", kind="threshold",
        metric="work_queue_backlog_s",
        severity=AlertSeverity.CRITICAL,
        group_by="domain", threshold=2.0, for_s=2.0,
    )
    params.update(overrides)
    return AlertRule(**params)


def _set_backlog(store, t, value, domain="A"):
    store.record("work_queue_backlog_s", t, value,
                 labels={"domain": domain})


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError, match="kind"):
            AlertRule(name="x", kind="slope", metric="m")

    def test_threshold_rule_needs_metric(self):
        with pytest.raises(ObservabilityError, match="metric"):
            AlertRule(name="x", kind="threshold")

    def test_numerator_without_denominator_rejected(self):
        with pytest.raises(ObservabilityError, match="together"):
            AlertRule(name="x", kind="burn_rate", numerator="a_total")

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ObservabilityError, match="unique"):
            AlertEngine([_backlog_rule(), _backlog_rule()])


class TestLifecycle:
    def test_pending_firing_resolved_inactive(self):
        engine = AlertEngine([_backlog_rule()])
        store = SeriesStore()

        _set_backlog(store, 1.0, 0.5)
        assert engine.step(store, 1.0) == ()

        _set_backlog(store, 2.0, 3.0)
        (pending,) = engine.step(store, 2.0)
        assert pending.from_state is AlertState.INACTIVE
        assert pending.to_state is AlertState.PENDING
        # The incident id is minted at PENDING so every transition —
        # including the blip that never fires — is correlated.
        assert pending.correlation_id == "alert-backlog-0001"

        _set_backlog(store, 3.0, 3.0)  # breached 1s < for_s=2
        assert engine.step(store, 3.0) == ()

        _set_backlog(store, 4.0, 3.5)  # breached 2s: fires
        (firing,) = engine.step(store, 4.0)
        assert firing.to_state is AlertState.FIRING
        assert firing.correlation_id == "alert-backlog-0001"
        assert engine.firing_count() == 1
        assert engine.firing_count(AlertSeverity.CRITICAL) == 1
        assert engine.first_firing() is firing

        _set_backlog(store, 5.0, 3.5)  # FIRING stays FIRING, quietly
        assert engine.step(store, 5.0) == ()

        _set_backlog(store, 6.0, 0.1)
        (resolved,) = engine.step(store, 6.0)
        assert resolved.to_state is AlertState.RESOLVED
        assert resolved.correlation_id == "alert-backlog-0001"
        assert engine.firing_count() == 0
        assert engine.active() == ()

    def test_blip_shorter_than_for_s_never_fires(self):
        engine = AlertEngine([_backlog_rule()])
        store = SeriesStore()
        _set_backlog(store, 1.0, 3.0)
        engine.step(store, 1.0)
        _set_backlog(store, 2.0, 0.1)
        (back,) = engine.step(store, 2.0)
        assert back.from_state is AlertState.PENDING
        assert back.to_state is AlertState.INACTIVE
        assert back.correlation_id == "alert-backlog-0001"
        assert engine.first_firing() is None

    def test_zero_for_s_fires_immediately(self):
        engine = AlertEngine([_backlog_rule(for_s=0.0)])
        store = SeriesStore()
        _set_backlog(store, 1.0, 3.0)
        transitions = engine.step(store, 1.0)
        assert [t.to_state for t in transitions] \
            == [AlertState.PENDING, AlertState.FIRING]

    def test_incident_ids_are_deterministic_and_sequential(self):
        engine = AlertEngine([_backlog_rule(for_s=0.0)])
        store = SeriesStore()
        _set_backlog(store, 1.0, 3.0)
        engine.step(store, 1.0)
        _set_backlog(store, 2.0, 0.1)
        engine.step(store, 2.0)
        _set_backlog(store, 3.0, 3.0)  # a second, distinct incident
        engine.step(store, 3.0)
        firing = [t for t in engine.transitions
                  if t.to_state is AlertState.FIRING]
        assert [t.correlation_id for t in firing] \
            == ["alert-backlog-0001", "alert-backlog-0002"]

    def test_group_by_runs_one_machine_per_domain(self):
        engine = AlertEngine([_backlog_rule(for_s=0.0)])
        store = SeriesStore()
        _set_backlog(store, 1.0, 3.0, domain="B")
        _set_backlog(store, 1.0, 0.1, domain="A")
        transitions = engine.step(store, 1.0)
        assert {t.group for t in transitions} == {"B"}
        assert engine.firing_count() == 1


class TestBurnRateRules:
    def test_generic_numerator_denominator_burn(self):
        rule = AlertRule(
            name="denied-burn", kind="burn_rate",
            severity=AlertSeverity.CRITICAL,
            numerator="reservations_total",
            numerator_where=(("result", "denied"),),
            denominator="reservations_total",
            threshold=1.5, slo=0.5, slow_fraction=0.8,
            fast_window_s=10.0, slow_window_s=30.0, for_s=0.0,
        )
        store = SeriesStore()
        for t in range(1, 11):
            store.record("reservations_total", float(t), float(t),
                         kind="counter", labels={"result": "denied"})
            store.record("reservations_total", float(t), 0.0,
                         kind="counter", labels={"result": "granted"})
        # Everything denied: ratio 1.0, burn 2.0 on both windows.
        evaluated = rule.evaluate(store, 10.0)
        breached, value = evaluated[""]
        assert breached
        assert value == pytest.approx(2.0)

    def test_slow_fraction_gates_on_slow_window(self):
        """Fast window saturated but slow window still quiet: with
        slow_fraction=1.0 nothing breaches; relaxing it detects the
        ramp early."""
        store = SeriesStore()
        for t in range(61):
            store.record(
                "admissions_total", float(t), float(min(t, 50)),
                kind="counter",
                labels={"domain": "A", "granted": "true"},
            )
            store.record(
                "admissions_total", float(t), float(max(t - 50, 0)),
                kind="counter",
                labels={"domain": "A", "granted": "false"},
            )
        strict = AlertRule(
            name="strict", kind="burn_rate", group_by="domain",
            threshold=1.8, slo=0.5, slow_fraction=1.0, for_s=0.0,
        )
        relaxed = AlertRule(
            name="relaxed", kind="burn_rate", group_by="domain",
            threshold=1.8, slo=0.5, slow_fraction=0.1, for_s=0.0,
        )
        assert strict.evaluate(store, 60.0)["A"][0] is False
        assert relaxed.evaluate(store, 60.0)["A"][0] is True


class TestAnomalyRules:
    def _rule(self, **overrides):
        params = dict(
            name="drift", kind="anomaly", metric="domain_utilization",
            z_threshold=4.0, alpha=0.3, min_samples=8, for_s=0.0,
        )
        params.update(overrides)
        return AlertRule(**params)

    def test_spike_after_flat_history_breaches(self):
        store = SeriesStore()
        for t in range(12):
            store.record("domain_utilization", float(t), 0.2)
        store.record("domain_utilization", 12.0, 0.9)
        breached, z = self._rule().evaluate(store, 12.0)[""]
        assert breached
        assert z > 4.0

    def test_flat_history_is_quiet(self):
        store = SeriesStore()
        for t in range(20):
            store.record("domain_utilization", float(t), 0.2)
        breached, z = self._rule().evaluate(store, 19.0)[""]
        assert not breached
        assert z == pytest.approx(0.0)

    def test_too_few_samples_is_quiet(self):
        store = SeriesStore()
        for t in range(4):
            store.record("domain_utilization", float(t), 0.2)
        store.record("domain_utilization", 4.0, 0.9)
        assert self._rule().evaluate(store, 4.0)[""] == (False, 0.0)


class TestEmission:
    def test_transitions_emit_alert_events_with_incident_id(self):
        engine = AlertEngine([_backlog_rule(for_s=0.0)])
        store = SeriesStore()
        log = EventLog()
        _set_backlog(store, 1.0, 3.0)
        engine.step(store, 1.0, event_log=log)
        events = log.events(EventKind.ALERT)
        assert [dict(e.attributes)["state"] for e in events] \
            == ["pending", "firing"]
        assert events[-1].correlation_id == "alert-backlog-0001"
        assert events[-1].domain == "A"

    def test_transitions_stream_into_the_recording(self):
        stream = io.StringIO()
        writer = RecordingWriter(stream)
        recorder = FlightRecorder(writer=writer)
        engine = AlertEngine([_backlog_rule(for_s=0.0)])
        store = SeriesStore()
        _set_backlog(store, 1.0, 3.0)
        engine.step(store, 1.0, recorder=recorder)
        writer.close()
        alerts = [json.loads(line)["a"]
                  for line in stream.getvalue().splitlines()
                  if '"a"' in line]
        assert [a["state"] for a in alerts] == ["pending", "firing"]
        assert alerts[-1]["rule"] == "backlog"


class TestStockRules:
    def test_default_rules_are_engine_ready(self):
        engine = AlertEngine(default_rules())
        assert engine.step(SeriesStore(), 1.0) == ()

    def test_chaos_rules_are_engine_ready(self):
        engine = AlertEngine(chaos_rules())
        assert engine.step(SeriesStore(), 1.0) == ()

    def test_replay_reproduces_identical_transitions(self):
        """Two engines walked over the same frames take the same
        transitions — the determinism the .tsrec replay relies on."""
        def run():
            engine = AlertEngine([_backlog_rule(for_s=1.0)])
            store = SeriesStore()
            for t, value in enumerate(
                [0.1, 3.0, 3.0, 3.0, 0.1, 3.0, 3.0], start=1
            ):
                _set_backlog(store, float(t), value)
                engine.step(store, float(t))
            return [t.to_dict() for t in engine.transitions]

        assert run() == run()
