"""Health verdicts: burn math, multi-window filtering, worst-wins."""

import pytest

from repro.obs.telemetry.health import (
    HealthPolicy,
    HealthStatus,
    breaker_flaps,
    denial_burn,
    evaluate_fleet,
    evaluate_health,
)
from repro.obs.telemetry.series import SeriesStore


def _admit(store, t, *, granted, denied, domain="A"):
    """Record cumulative admission counters at *t* for one domain."""
    store.record(
        "admissions_total", t, granted, kind="counter",
        labels={"domain": domain, "granted": "true"},
    )
    store.record(
        "admissions_total", t, denied, kind="counter",
        labels={"domain": domain, "granted": "false"},
    )


class TestDenialBurn:
    def test_burn_is_windowed_ratio_over_slo(self):
        store = SeriesStore()
        # 3 denied of 12 total in the window: ratio 0.25, burn 0.5.
        for t in range(5):
            _admit(store, float(t), granted=float(t * 9) / 4.0,
                   denied=float(t * 3) / 4.0)
        burn = denial_burn(store, "A", now=4.0, window_s=10.0, slo=0.5)
        assert burn == pytest.approx(0.5)

    def test_no_traffic_reads_zero_burn(self):
        assert denial_burn(
            SeriesStore(), "A", now=1.0, window_s=10.0, slo=0.5
        ) == 0.0


class TestBurnVerdict:
    def test_sustained_full_denial_is_critical(self):
        store = SeriesStore()
        for t in range(61):
            _admit(store, float(t), granted=0.0, denied=float(t))
        verdict = evaluate_health(store, "A", now=60.0)
        assert verdict.status is HealthStatus.CRITICAL
        assert "denial burn" in verdict.reasons()[0]

    def test_fast_only_blip_is_filtered_to_degraded(self):
        """The slow window must confirm: a 10 s full-denial burst after
        a long healthy history is DEGRADED, not CRITICAL."""
        store = SeriesStore()
        for t in range(61):
            _admit(store, float(t),
                   granted=float(min(t, 50)),
                   denied=float(max(t - 50, 0)))
        verdict = evaluate_health(store, "A", now=60.0)
        assert verdict.status is HealthStatus.DEGRADED

    def test_half_denial_is_degraded(self):
        store = SeriesStore()
        for t in range(61):
            _admit(store, float(t), granted=float(t), denied=float(t))
        verdict = evaluate_health(store, "A", now=60.0)
        assert verdict.status is HealthStatus.DEGRADED

    def test_light_denial_is_green(self):
        store = SeriesStore()
        for t in range(61):
            _admit(store, float(t), granted=float(t * 9), denied=float(t))
        verdict = evaluate_health(store, "A", now=60.0)
        assert verdict.status is HealthStatus.GREEN


class TestOtherSignals:
    def test_backlog_thresholds(self):
        store = SeriesStore()
        store.record("work_queue_backlog_s", 1.0, 3.0,
                     labels={"domain": "A"})
        verdict = evaluate_health(store, "A", now=1.0)
        assert verdict.status is HealthStatus.CRITICAL
        assert any("backlog" in r for r in verdict.reasons())

        store = SeriesStore()
        store.record("work_queue_backlog_s", 1.0, 1.5,
                     labels={"domain": "A"})
        assert evaluate_health(store, "A", now=1.0).status \
            is HealthStatus.DEGRADED

    def test_saturation_alone_is_only_degraded(self):
        store = SeriesStore()
        store.record("domain_utilization", 1.0, 0.95,
                     labels={"domain": "A"})
        verdict = evaluate_health(store, "A", now=1.0)
        assert verdict.status is HealthStatus.DEGRADED

    def test_open_breaker_on_domain_link_is_critical(self):
        store = SeriesStore()
        store.record("breaker_state", 1.0, 2.0, labels={"link": "A|B"})
        for domain in ("A", "B"):
            verdict = evaluate_health(store, domain, now=1.0)
            assert verdict.status is HealthStatus.CRITICAL
        # C is not an endpoint of A|B.
        assert evaluate_health(store, "C", now=1.0).status \
            is HealthStatus.GREEN

    def test_breaker_flapping_is_degraded(self):
        store = SeriesStore()
        for t, state in enumerate([0.0, 1.0, 0.0, 1.0, 0.0]):
            store.record("breaker_state", float(t), state,
                         labels={"link": "A|B"})
        changes, worst = breaker_flaps(store, "A", now=4.0, window_s=30.0)
        assert changes == 4
        assert worst == 0.0  # current state, and the link is closed now
        verdict = evaluate_health(store, "A", now=4.0)
        assert verdict.status is HealthStatus.DEGRADED
        assert any("flapping" in r for r in verdict.reasons())


class TestVerdictFolding:
    def test_worst_signal_wins_and_reasons_sort_worst_first(self):
        store = SeriesStore()
        store.record("domain_utilization", 1.0, 0.95,
                     labels={"domain": "A"})
        store.record("work_queue_backlog_s", 1.0, 5.0,
                     labels={"domain": "A"})
        verdict = evaluate_health(store, "A", now=1.0)
        assert verdict.status is HealthStatus.CRITICAL
        assert "backlog" in verdict.reasons()[0]
        assert any("utilization" in r for r in verdict.reasons()[1:])

    def test_policy_overrides_thresholds(self):
        store = SeriesStore()
        store.record("work_queue_backlog_s", 1.0, 0.5,
                     labels={"domain": "A"})
        strict = HealthPolicy(backlog_degraded_s=0.25,
                              backlog_critical_s=0.4)
        assert evaluate_health(store, "A", now=1.0).status \
            is HealthStatus.GREEN
        assert evaluate_health(store, "A", now=1.0, policy=strict).status \
            is HealthStatus.CRITICAL

    def test_to_dict_round_trips_status_names(self):
        verdict = evaluate_health(SeriesStore(), "A", now=1.0)
        payload = verdict.to_dict()
        assert payload["status"] == "GREEN"
        assert {s["name"] for s in payload["signals"]} == {
            "denial_burn", "backlog", "utilization", "breakers",
        }

    def test_evaluate_fleet_covers_sorted_domains(self):
        store = SeriesStore()
        store.record("work_queue_backlog_s", 1.0, 5.0,
                     labels={"domain": "B"})
        fleet = evaluate_fleet(store, ["B", "A"], now=1.0)
        assert list(fleet) == ["A", "B"]
        assert fleet["A"].status is HealthStatus.GREEN
        assert fleet["B"].status is HealthStatus.CRITICAL
