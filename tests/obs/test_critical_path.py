"""Critical-path attribution: the end-to-end wall time of a reservation
must decompose into named ``<domain>/<phase>`` segments, with ≥95% of it
attributed for a multi-domain path (the ISSUE 4 acceptance gate)."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import ObservabilityError
from repro.obs import spans
from repro.obs.perf import (
    analyze_critical_path,
    render_critical_path,
)
from repro.obs.spans import Tracer


def synthetic_trace(tracer: Tracer) -> str:
    """A hand-built tree with exact timings:

    root [0, 10]
      ├─ prepare [0, 2]            (leaf, no domain -> user/prepare)
      └─ hop A [2, 9]              (interior, 1s self-time)
           ├─ verify [2, 5]        (leaf -> A/verify)
           └─ admission [5, 8]     (leaf -> A/admission)
    """
    trace = "req-synth"
    root = tracer.begin("reserve", trace_id=trace)
    prepare = tracer.begin("prepare", trace_id=trace, parent=root)
    hop = tracer.begin("hop", trace_id=trace, parent=root, domain="A")
    verify = tracer.begin("verify", trace_id=trace, parent=hop,
                          sim_latency_s=0.5)
    admission = tracer.begin("admission", trace_id=trace, parent=hop)
    for span, (start, end) in (
        (root, (0.0, 10.0)),
        (prepare, (0.0, 2.0)),
        (hop, (2.0, 9.0)),
        (verify, (2.0, 5.0)),
        (admission, (5.0, 8.0)),
    ):
        span.start_wall = start
        span.end_wall = end
    return trace


class TestSyntheticAttribution:
    def test_segments_and_untracked(self):
        tracer = Tracer()
        trace = synthetic_trace(tracer)
        report = analyze_critical_path(tracer, trace)
        assert report.total_wall_s == 10.0
        by_name = {s.name: s for s in report.segments}
        assert by_name["user/prepare"].wall_s == 2.0
        assert by_name["A/verify"].wall_s == 3.0
        assert by_name["A/admission"].wall_s == 3.0
        # root self-time (10-2-7=1) + hop self-time (7-3-3=1).
        assert report.untracked_wall_s == pytest.approx(2.0)
        assert report.coverage == pytest.approx(0.8)
        assert report.total_sim_latency_s == pytest.approx(0.5)

    def test_segments_ranked_by_wall_time(self):
        tracer = Tracer()
        trace = synthetic_trace(tracer)
        report = analyze_critical_path(tracer, trace)
        walls = [s.wall_s for s in report.segments]
        assert walls == sorted(walls, reverse=True)
        assert report.top(1)[0].wall_s == max(walls)

    def test_domain_inherited_from_enclosing_hop(self):
        tracer = Tracer()
        trace = synthetic_trace(tracer)
        report = analyze_critical_path(tracer, trace)
        verify = next(s for s in report.segments if s.phase == "verify")
        assert verify.domain == "A"

    def test_open_child_clamps_to_trace_end(self):
        """A denial leg can leave downstream spans unclosed: they count
        as ending with the trace, not as zero or negative time."""
        tracer = Tracer()
        trace = synthetic_trace(tracer)
        dangling = tracer.begin(
            "forward", trace_id=trace,
            parent=tracer.root(trace), domain="A",
        )
        dangling.start_wall = 9.0
        dangling.end_wall = None
        report = analyze_critical_path(tracer, trace)
        seg = next(s for s in report.segments if s.phase == "forward")
        assert seg.wall_s == pytest.approx(1.0)  # clamped to root end 10.0

    def test_latest_trace_is_the_default(self):
        tracer = Tracer()
        trace = synthetic_trace(tracer)
        assert analyze_critical_path(tracer).trace_id == trace

    def test_errors(self):
        tracer = Tracer()
        with pytest.raises(ObservabilityError, match="no traces"):
            analyze_critical_path(tracer)
        with pytest.raises(ObservabilityError, match="no spans"):
            analyze_critical_path(tracer, "req-nope")
        open_root = tracer.begin("reserve", trace_id="req-open")
        assert open_root is not None
        with pytest.raises(ObservabilityError, match="still open"):
            analyze_critical_path(tracer, "req-open")

    def test_render(self):
        tracer = Tracer()
        trace = synthetic_trace(tracer)
        text = render_critical_path(analyze_critical_path(tracer, trace))
        assert f"critical path for trace {trace}" in text
        assert "A/verify" in text and "user/prepare" in text
        assert "(untracked)" in text
        assert "coverage: 80.0%" in text


class TestAcceptanceCoverage:
    """The gate: ≥95% of a 4-domain reservation's end-to-end wall time
    attributed to named hop/phase segments."""

    def _best_coverage(self, attempts: int = 3) -> tuple[float, object]:
        # Wall-clock attribution is scheduler-sensitive; take the best of
        # a few runs so a preempted run doesn't fail a correct
        # implementation (a real coverage regression fails all of them).
        best, best_report = -1.0, None
        for _ in range(attempts):
            with spans.use_tracer() as tracer:
                testbed = build_linear_testbed(["A", "B", "C", "D"])
                user = testbed.add_user("A", "Alice")
                outcome = testbed.reserve(
                    user, source="A", destination="D", bandwidth_mbps=10.0,
                )
            assert outcome.granted
            report = analyze_critical_path(tracer, outcome.correlation_id)
            if report.coverage > best:
                best, best_report = report.coverage, report
        return best, best_report

    def test_coverage_at_least_95_percent(self):
        coverage, report = self._best_coverage()
        assert coverage >= 0.95, render_critical_path(report)

    def test_all_four_domains_and_user_named(self):
        _, report = self._best_coverage(attempts=1)
        assert {s.domain for s in report.segments} == {
            "user", "A", "B", "C", "D",
        }
        phases = {s.phase for s in report.segments}
        assert {"verify", "policy", "admission", "forward",
                "delegation", "reply", "prepare", "submit"} <= phases

    def test_modelled_latency_attributed(self):
        _, report = self._best_coverage(attempts=1)
        assert report.total_sim_latency_s > 0.0
