"""Sampler soundness under concurrent writers (satellite 3).

Eight threads hammer one :class:`SeriesStore` while a reader takes
consistent snapshots.  Pins the three store guarantees the flight
recorder depends on: nothing is lost (exact per-thread sums), frames
are atomic (a snapshot never sees half of a ``record_frame``), and the
ring bound holds under churn.
"""

import threading

from repro.obs.telemetry.series import SeriesKey, SeriesStore

THREADS = 8
FRAMES = 300


class TestConcurrentWriters:
    def test_exact_sums_no_lost_appends(self):
        store = SeriesStore(capacity=FRAMES + 8)
        barrier = threading.Barrier(THREADS)

        def writer(w: int) -> None:
            barrier.wait()
            for i in range(1, FRAMES + 1):
                store.record("thread_total", float(i), float(i),
                             kind="counter", labels={"writer": str(w)})

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        expected = FRAMES * (FRAMES + 1) / 2
        for w in range(THREADS):
            series = store.series("thread_total", {"writer": str(w)})
            points = series.points()
            assert len(points) == FRAMES
            assert sum(v for _, v in points) == expected
        # And the scrape-level aggregation sums across all writers.
        assert store.last_value("thread_total") == FRAMES * THREADS

    def test_frames_are_atomic_no_torn_reads(self):
        """Each writer records (left, right) pairs summing to zero in
        one frame; a concurrent reader snapshotting via last_points()
        must never observe a writer's pair mid-frame (differing times
        or a non-zero sum)."""
        store = SeriesStore(capacity=FRAMES + 8)
        stop = threading.Event()
        torn: list[object] = []
        barrier = threading.Barrier(THREADS + 1)

        def writer(w: int) -> None:
            left = SeriesKey.make(
                "pair", {"writer": str(w), "side": "l"})
            right = SeriesKey.make(
                "pair", {"writer": str(w), "side": "r"})
            barrier.wait()
            for i in range(1, FRAMES + 1):
                store.record_frame(
                    float(i), {left: float(i), right: float(-i)})

        def reader() -> None:
            barrier.wait()
            while not stop.is_set():
                snapshot = store.last_points("pair")
                pairs: dict[str, list[tuple[float, float]]] = {}
                for key, point in snapshot.items():
                    pairs.setdefault(key.label("writer"), []).append(point)
                for w, points in pairs.items():
                    if len(points) != 2:
                        continue  # writer hasn't produced both yet
                    (t1, v1), (t2, v2) = points
                    if t1 != t2 or v1 + v2 != 0.0:
                        torn.append((w, points))

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(THREADS)]
        reading = threading.Thread(target=reader)
        reading.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        reading.join()

        assert torn == []
        for w in range(THREADS):
            for side in ("l", "r"):
                series = store.series(
                    "pair", {"writer": str(w), "side": side})
                assert len(series.points()) == FRAMES

    def test_ring_bound_holds_under_churn(self):
        capacity = 32
        appends = 1000
        store = SeriesStore(capacity=capacity)

        def writer(w: int) -> None:
            for i in range(1, appends + 1):
                store.record("churn", float(i), float(i),
                             labels={"writer": str(w)})

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for w in range(THREADS):
            points = store.series("churn", {"writer": str(w)}).points()
            assert len(points) == capacity
            assert points[-1] == (float(appends), float(appends))
            assert points[0] == (float(appends - capacity + 1),
                                 float(appends - capacity + 1))
