"""Exporter-format regression tests (satellites 1 and 2).

The exact Prometheus text lines for the admission-plane defense
counters are pinned here: dashboards and the attack harness join
``reason_code`` against event/audit reason codes, so a renamed label or
a dropped series is a silent breakage this test turns loud.  The
snapshot-diff half pins the "snapshots come off disk" hardening:
one-sided metrics and malformed entries are reported, never raised.
"""

import pytest

from repro.bb.defense import DefensePolicy, DomainDefense
from repro.errors import RateLimitedError, ReplayRejectedError
from repro.obs import metrics as obs_metrics
from repro.obs.export import diff_snapshots, json_snapshot, prometheus_text


@pytest.fixture()
def rejecting_registry():
    """A registry that has seen one rate-limit and one replay rejection
    on domain B, produced through the real defense path."""
    defense = DomainDefense(
        DefensePolicy(peer_burst=1.0, peer_rate_per_s=0.0,
                      replay_window_s=60.0),
        domain="B",
    )
    with obs_metrics.use_registry() as registry:
        defense.admit_signal(peer="mallory", now=0.0,
                             envelope_digest=b"d1")
        with pytest.raises(RateLimitedError):
            defense.admit_signal(peer="mallory", now=0.0,
                                 envelope_digest=b"d2")
        with pytest.raises(ReplayRejectedError):
            defense.admit_signal(peer="alice", now=1.0,
                                 envelope_digest=b"d1")
        yield registry


class TestPrometheusDefenseLines:
    def test_exact_defense_rejection_lines(self, rejecting_registry):
        text = prometheus_text(rejecting_registry)
        lines = text.splitlines()
        assert "# TYPE defense_rejections_total counter" in lines
        assert (
            'defense_rejections_total{domain="B",kind="rate_limited",'
            'reason_code="rate_limited"} 1'
        ) in lines
        assert (
            'defense_rejections_total{domain="B",kind="replay_rejected",'
            'reason_code="replay_rejected"} 1'
        ) in lines

    def test_exact_replay_guard_lines(self, rejecting_registry):
        lines = prometheus_text(rejecting_registry).splitlines()
        assert "# TYPE replay_guard_rejections_total counter" in lines
        assert (
            'replay_guard_rejections_total{domain="B",'
            'reason_code="replay_rejected"} 1'
        ) in lines

    def test_replay_guard_counts_only_replays(self, rejecting_registry):
        """The rate-limit rejection must not leak into the replay-guard
        counter: its total is exactly the replay count."""
        counter = rejecting_registry.get("replay_guard_rejections_total")
        assert sum(counter.series().values()) == 1

    def test_json_snapshot_carries_the_same_labels(self, rejecting_registry):
        snapshot = json_snapshot(rejecting_registry)
        series = snapshot["defense_rejections_total"]["series"]
        labels = [entry["labels"] for entry in series]
        assert {"domain": "B", "kind": "rate_limited",
                "reason_code": "rate_limited"} in labels
        assert {"domain": "B", "kind": "replay_rejected",
                "reason_code": "replay_rejected"} in labels


def _metric(series):
    return {"kind": "counter", "help": "", "series": series}


class TestDiffSnapshots:
    def test_identical_snapshots_diff_clean(self):
        snap = {"m": _metric([{"labels": {"d": "A"}, "value": 1}])}
        assert diff_snapshots(snap, snap) == []

    def test_one_sided_metric_reported_not_raised(self):
        before = {"old_total": _metric([{"labels": {}, "value": 1}])}
        after = {"new_total": _metric([{"labels": {}, "value": 2}])}
        lines = diff_snapshots(before, after)
        assert "- metric old_total (only in A)" in lines
        assert "+ metric new_total (only in B)" in lines

    def test_one_sided_series_reported_with_value(self):
        before = {"m": _metric([{"labels": {"d": "A"}, "value": 1}])}
        after = {"m": _metric([
            {"labels": {"d": "A"}, "value": 1},
            {"labels": {"d": "B"}, "value": 4},
        ])}
        assert diff_snapshots(before, after) \
            == ["+ m{d=B} = 4 (only in B)"]

    def test_value_delta_reported(self):
        before = {"m": _metric([{"labels": {}, "value": 3}])}
        after = {"m": _metric([{"labels": {}, "value": 8}])}
        assert diff_snapshots(before, after) == ["~ m{-}: 3 -> 8 (+5)"]

    def test_histograms_compare_by_count(self):
        before = {"h": {"kind": "histogram", "series": [
            {"labels": {}, "count": 2, "sum": 1.0}]}}
        after = {"h": {"kind": "histogram", "series": [
            {"labels": {}, "count": 5, "sum": 9.0}]}}
        assert diff_snapshots(before, after) == ["~ h{-}: 2 -> 5 (+3)"]

    def test_malformed_entries_skipped_not_raised(self):
        before = {
            "bad_metric": "not a dict",
            "bad_series": _metric("not a list"),
            "bad_rows": _metric([
                "not a dict",
                {"labels": "not a dict", "value": 1},
                {"labels": {}, "value": "unparsable"},
            ]),
        }
        after = {
            "bad_metric": _metric([{"labels": {}, "value": 1}]),
            "bad_series": _metric([]),
            "bad_rows": _metric([{"labels": {}, "value": 2}]),
        }
        lines = diff_snapshots(before, after)
        # The readable pieces still diff: the bad rows collapsed to the
        # unlabelled entry on side A (labels fall back to {}).
        assert "+ bad_metric{-} = 1 (only in B)" in lines
        assert any(line.startswith("~ bad_rows") for line in lines)

    def test_non_object_snapshot_sides_flagged(self):
        assert diff_snapshots("junk", {}) \
            == ["~ snapshot is not a JSON object on side A"]
        assert diff_snapshots({}, 7) \
            == ["~ snapshot is not a JSON object on side B"]
        assert diff_snapshots(None, []) \
            == ["~ snapshot is not a JSON object on both sides"]
