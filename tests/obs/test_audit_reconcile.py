"""Unit tests for the audit reconciliation invariants.

One healthy end-to-end run must reconcile clean against every ground
truth (brokers, bookings, billing); each invariant then gets a
synthetic ledger that violates exactly it.
"""

from types import SimpleNamespace

from repro.accounting.billing import TransitiveBilling
from repro.core.testbed import build_linear_testbed
from repro.obs import audit as obs_audit
from repro.obs.audit import CheckRecord, DecisionLedger, RecordKind


def invariants(violations):
    return [v.invariant for v in violations]


def test_healthy_run_reconciles_clean():
    tb = build_linear_testbed(["A", "B", "C", "D"])
    user = tb.add_user("A", "Alice")
    billing = TransitiveBilling(tb.brokers)
    with obs_audit.use_ledger() as led:
        outcome = tb.reserve(
            user, source="A", destination="D", bandwidth_mbps=10.0,
        )
        assert outcome.granted
        tb.hop_by_hop.claim(outcome)
        billing.bill(outcome)
        tb.hop_by_hop.cancel(outcome)
    report = obs_audit.reconcile(
        led, brokers=tb.brokers, billing_runs=billing.ledger,
    )
    assert report.ok, report.render()
    assert report.checked_records == len(led)
    assert report.checked_reservations >= 4
    assert report.checked_billing_runs == 1
    assert "OK" in report.render()
    assert report.to_dict()["ok"] is True


def test_admission_without_rule_is_flagged():
    led = DecisionLedger()
    led.record(
        RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        correlation_id="c1",
    )
    assert invariants(obs_audit.reconcile_ledger(led)) == ["policy-evaluation"]


def test_claim_without_admission_is_flagged():
    led = DecisionLedger()
    led.record(RecordKind.CLAIM, domain="A", handle="R9", correlation_id="c1")
    assert "claim-provenance" in invariants(obs_audit.reconcile_ledger(led))


def test_granted_outcome_with_missing_hop_is_flagged():
    led = DecisionLedger()
    led.record(
        RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        matched_rule="A/0", correlation_id="c1",
    )
    led.record(
        RecordKind.OUTCOME, granted=True, correlation_id="c1", path="A>B",
    )
    assert "provenance-chain" in invariants(obs_audit.reconcile_ledger(led))


def test_admissions_out_of_travel_order_are_flagged():
    led = DecisionLedger()
    led.record(
        RecordKind.ADMIT, domain="B", handle="R2", granted=True,
        matched_rule="B/0", correlation_id="c1",
    )
    led.record(
        RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        matched_rule="A/0", correlation_id="c1",
    )
    led.record(
        RecordKind.OUTCOME, granted=True, correlation_id="c1", path="A>B",
    )
    assert "provenance-chain" in invariants(obs_audit.reconcile_ledger(led))


def test_denied_outcome_without_denial_record_is_flagged():
    led = DecisionLedger()
    led.record(
        RecordKind.OUTCOME, domain="B", granted=False, correlation_id="c1",
        reason="denied by B", path="A>B",
    )
    assert "provenance-chain" in invariants(obs_audit.reconcile_ledger(led))


def test_denied_run_with_unbalanced_admission_is_flagged():
    led = DecisionLedger()
    led.record(
        RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        matched_rule="A/0", correlation_id="c1",
    )
    led.record(
        RecordKind.DENY, domain="B", reason="full", correlation_id="c1",
    )
    led.record(
        RecordKind.OUTCOME, domain="B", granted=False, correlation_id="c1",
        path="A>B",
    )
    assert "unwind-balance" in invariants(obs_audit.reconcile_ledger(led))

    # The same run with the unwind recorded reconciles clean.
    led.record(RecordKind.CANCEL, domain="A", handle="R1", correlation_id="c1")
    assert "unwind-balance" not in invariants(obs_audit.reconcile_ledger(led))


def test_cache_verdict_after_revocation_is_flagged():
    led = DecisionLedger()
    led.record(
        RecordKind.REVOKE, domain="CA-A",
        checks=(CheckRecord(
            kind="revocation", fingerprint="fp-1", verdict="revoked",
            source="authority",
        ),),
    )
    led.record(
        RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        matched_rule="A/0", correlation_id="c1",
        checks=(CheckRecord(
            kind="certificate", fingerprint="fp-1", verdict="ok",
            source="cache:rar",
        ),),
    )
    assert "cache-revocation" in invariants(obs_audit.reconcile_ledger(led))


def test_fresh_verdict_after_revocation_is_not_flagged():
    # A *fresh* verification after revocation is the revocation
    # checker's business, not the cache invariant's.
    led = DecisionLedger()
    led.record(
        RecordKind.REVOKE,
        checks=(CheckRecord(
            kind="revocation", fingerprint="fp-1", verdict="revoked",
            source="authority",
        ),),
    )
    led.record(
        RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        matched_rule="A/0",
        checks=(CheckRecord(
            kind="certificate", fingerprint="fp-1", verdict="ok",
            source="fresh",
        ),),
    )
    assert "cache-revocation" not in invariants(obs_audit.reconcile_ledger(led))


def test_cache_verdict_before_revocation_is_not_flagged():
    led = DecisionLedger()
    led.record(
        RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        matched_rule="A/0",
        checks=(CheckRecord(
            kind="certificate", fingerprint="fp-1", verdict="ok",
            source="cache:rar",
        ),),
    )
    led.record(
        RecordKind.REVOKE,
        checks=(CheckRecord(
            kind="revocation", fingerprint="fp-1", verdict="revoked",
            source="authority",
        ),),
    )
    assert "cache-revocation" not in invariants(obs_audit.reconcile_ledger(led))


def test_broker_state_unknown_to_ledger_is_flagged():
    tb = build_linear_testbed(["A", "B"])
    user = tb.add_user("A", "Alice")
    # Reserve with the ledger OFF: broker state exists, ledger is empty.
    outcome = tb.reserve(user, source="A", destination="B", bandwidth_mbps=10.0)
    assert outcome.granted
    violations = obs_audit.reconcile_brokers(DecisionLedger(), tb.brokers)
    kinds = invariants(violations)
    assert "table-ledger" in kinds
    assert "booking-ledger" in kinds


def test_accounting_mismatch_is_flagged():
    led = DecisionLedger()
    led.record(
        RecordKind.ADMIT, domain="A", handle="R1", granted=True,
        matched_rule="A/0", correlation_id="c1",
    )
    run = SimpleNamespace(correlation_id="c1", path=("A", "B"))
    violations = obs_audit.reconcile_accounting(led, [run])
    assert invariants(violations) == ["accounting"]
    # A run with no correlation id predates the ledger: skipped.
    legacy = SimpleNamespace(correlation_id="", path=("A", "B"))
    assert obs_audit.reconcile_accounting(led, [legacy]) == []
