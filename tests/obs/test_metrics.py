"""Registry semantics: instrument behaviour, globals, and exporters."""

import json
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import export, metrics
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_monotonic(self, registry):
        c = registry.counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        with pytest.raises(ObservabilityError):
            c.inc(-1)
        assert c.value() == 3.5

    def test_label_sets_are_independent_series(self, registry):
        c = registry.counter("admissions_total")
        c.inc(domain="A", granted="true")
        c.inc(domain="A", granted="true")
        c.inc(domain="B", granted="false")
        assert c.value(domain="A", granted="true") == 2
        assert c.value(domain="B", granted="false") == 1
        assert c.value(domain="C") == 0
        assert c.total() == 3

    def test_label_order_is_irrelevant(self, registry):
        c = registry.counter("x_total")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1


class TestGauge:
    def test_moves_both_ways(self, registry):
        g = registry.gauge("queue_depth")
        g.set(7)
        g.inc(3)
        g.dec(5)
        assert g.value() == 5

    def test_per_label(self, registry):
        g = registry.gauge("load")
        g.set(10, resource="intra")
        g.set(20, resource="egress")
        assert g.value(resource="intra") == 10
        assert g.value(resource="egress") == 20


class TestHistogram:
    def test_bucketing(self, registry):
        h = registry.histogram("lat", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.002, 0.05, 0.05, 5.0):
            h.observe(v)
        assert h.cumulative_buckets() == [(0.001, 1), (0.01, 2), (0.1, 4)]
        assert h.count() == 5  # the 5.0 only lands in the +Inf bucket
        assert h.sum() == pytest.approx(5.1025)

    def test_boundary_is_inclusive(self, registry):
        h = registry.histogram("b", buckets=(1.0, 2.0))
        h.observe(1.0)
        h.observe(2.0)
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 2)]

    def test_buckets_sorted_and_deduplicated(self, registry):
        h = registry.histogram("s", buckets=(5.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 5.0)
        with pytest.raises(ObservabilityError):
            registry.histogram("dup", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("thing")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("thing")

    def test_collect_is_name_sorted(self, registry):
        registry.counter("zeta")
        registry.gauge("alpha")
        assert [m.name for m in registry.collect()] == ["alpha", "zeta"]

    def test_thread_safety(self, registry):
        c = registry.counter("contended_total")

        def hammer():
            for _ in range(1000):
                c.inc(worker="w")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(worker="w") == 4000


class TestGlobals:
    def test_disabled_by_default(self):
        assert metrics.get_registry() is None

    def test_use_registry_restores_previous(self):
        outer = metrics.enable()
        try:
            with metrics.use_registry() as inner:
                assert metrics.get_registry() is inner
                assert inner is not outer
            assert metrics.get_registry() is outer
        finally:
            metrics.disable()
        assert metrics.get_registry() is None


class TestExporters:
    def fill(self, registry):
        registry.counter("c_total", "a counter").inc(2, domain="A")
        registry.gauge("g", "a gauge").set(1.5)
        h = registry.histogram("h", "a histogram", buckets=(0.1, 1.0))
        h.observe(0.05, op="x")
        h.observe(3.0, op="x")

    def test_prometheus_text(self, registry):
        self.fill(registry)
        text = export.prometheus_text(registry)
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{domain="A"} 2' in text
        assert "g 1.5" in text
        assert '[h_bucket{le="0.1",op="x"} 1' not in text  # sanity: labels sorted
        assert 'h_bucket{le="0.1",op="x"} 1' in text
        assert 'h_bucket{le="1",op="x"} 1' in text
        assert 'h_bucket{le="+Inf",op="x"} 2' in text
        assert 'h_sum{op="x"} 3.05' in text
        assert 'h_count{op="x"} 2' in text

    def test_prometheus_empty_series_renders_zero(self, registry):
        registry.counter("nothing_total", "untouched")
        assert "nothing_total 0" in export.prometheus_text(registry)

    def test_label_escaping(self, registry):
        registry.counter("esc_total").inc(reason='say "no"\nplease')
        text = export.prometheus_text(registry)
        assert r'reason="say \"no\"\nplease"' in text

    def test_json_roundtrip(self, registry):
        self.fill(registry)
        snapshot = json.loads(export.json_text(registry))
        assert snapshot["c_total"]["kind"] == "counter"
        assert snapshot["c_total"]["series"][0] == {
            "labels": {"domain": "A"}, "value": 2,
        }
        hist = snapshot["h"]
        assert hist["buckets"] == [0.1, 1.0]
        assert hist["series"][0]["bucket_counts"] == [1, 0]
        assert hist["series"][0]["count"] == 2
