"""The benchmark-trajectory harness: entry assembly, schema validation,
the append-only trajectory at the repo root, and the regression gate.
All offline — the pytest-subprocess runner is exercised by CI's
``repro bench --quick``, not here."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.perf.bench import (
    BENCH_SCHEMA,
    build_entry,
    compare_entries,
    machine_fingerprint,
    next_entry_number,
    trajectory_entries,
    validate_bench_entry,
    write_entry,
)


def benchmark_json(**means):
    """A minimal pytest-benchmark document with one entry per kwarg."""
    return {
        "datetime": "2026-08-05T00:00:00",
        "benchmarks": [
            {
                "name": name,
                "group": "signalling",
                "stats": {
                    "mean": mean, "stddev": mean / 10,
                    "min": mean * 0.9, "rounds": 5,
                },
            }
            for name, mean in means.items()
        ],
    }


@pytest.fixture()
def repo_root(tmp_path):
    (tmp_path / "benchmarks").mkdir()
    return tmp_path


class TestBuildEntry:
    def test_merges_timings_and_snapshot(self, repo_root):
        snap_dir = repo_root / "benchmarks" / ".metrics"
        snap_dir.mkdir()
        (snap_dir / "test_reserve.json").write_text(json.dumps({
            "messages_total": {
                "kind": "counter",
                "series": [
                    {"labels": {"domain": "A"}, "value": 6.0},
                    {"labels": {"domain": "B"}, "value": 4.0},
                ],
            },
            "signalling_latency_seconds": {
                "kind": "histogram",
                "buckets": [0.1, 1.0, 10.0],
                "series": [
                    {"labels": {}, "bucket_counts": [8, 2, 0],
                     "sum": 1.0, "count": 10},
                ],
            },
        }))
        entry = build_entry(
            repo_root=repo_root,
            benchmark_json=benchmark_json(test_reserve=0.012),
            entry_number=4,
            quick=True,
        )
        assert entry["schema"] == BENCH_SCHEMA
        record = entry["benchmarks"]["test_reserve"]
        assert record["mean_s"] == 0.012
        assert record["counters"]["messages_total"] == 10.0
        q = record["quantiles"]["signalling_latency_seconds"]
        assert set(q) == {"p50", "p95", "p99"}
        assert 0.0 < q["p50"] <= 0.1 < q["p95"] <= 1.0

    def test_entry_without_snapshot_still_valid(self, repo_root):
        entry = build_entry(
            repo_root=repo_root,
            benchmark_json=benchmark_json(test_x=0.5),
            entry_number=7,
            quick=False,
        )
        assert "counters" not in entry["benchmarks"]["test_x"]
        assert validate_bench_entry(entry) == []

    def test_machine_fingerprint_fields(self):
        fp = machine_fingerprint()
        assert fp["python"] and fp["platform"]
        assert fp["cpu_count"] >= 1


class TestValidation:
    def _valid(self, repo_root):
        return build_entry(
            repo_root=repo_root,
            benchmark_json=benchmark_json(test_x=0.5),
            entry_number=4,
            quick=True,
        )

    def test_valid_entry_passes(self, repo_root):
        assert validate_bench_entry(self._valid(repo_root)) == []

    @pytest.mark.parametrize(
        "mutation, complaint",
        [
            ({"schema": "bogus/9"}, "schema"),
            ({"entry": -1}, "entry"),
            ({"git_sha": ""}, "git_sha"),
            ({"quick": "yes"}, "quick"),
            ({"machine": None}, "machine"),
            ({"benchmarks": {}}, "benchmarks"),
        ],
    )
    def test_broken_entries_flagged(self, repo_root, mutation, complaint):
        entry = {**self._valid(repo_root), **mutation}
        problems = validate_bench_entry(entry)
        assert problems and any(complaint in p for p in problems)

    def test_negative_mean_flagged(self, repo_root):
        entry = self._valid(repo_root)
        entry["benchmarks"]["test_x"]["mean_s"] = -1.0
        assert any("negative" in p for p in validate_bench_entry(entry))


class TestTrajectory:
    def test_empty_repo_starts_at_entry_4(self, repo_root):
        assert trajectory_entries(repo_root) == []
        assert next_entry_number(repo_root) == 4

    def test_entries_sorted_and_next_is_max_plus_one(self, repo_root):
        for n in (7, 4, 5):
            (repo_root / f"BENCH_{n}.json").write_text("{}")
        (repo_root / "BENCH_nope.json").write_text("{}")
        assert [n for n, _ in trajectory_entries(repo_root)] == [4, 5, 7]
        assert next_entry_number(repo_root) == 8

    def test_write_entry_round_trips(self, repo_root):
        entry = build_entry(
            repo_root=repo_root,
            benchmark_json=benchmark_json(test_x=0.5),
            entry_number=4,
            quick=True,
        )
        path = write_entry(repo_root, entry)
        assert path.name == "BENCH_4.json"
        assert json.loads(path.read_text()) == entry
        assert next_entry_number(repo_root) == 5

    def test_write_refuses_invalid_entry(self, repo_root):
        with pytest.raises(ObservabilityError, match="invalid"):
            write_entry(repo_root, {"schema": "bogus"})


class TestRegressionGate:
    def _entry(self, repo_root, **means):
        return build_entry(
            repo_root=repo_root,
            benchmark_json=benchmark_json(**means),
            entry_number=4,
            quick=True,
        )

    def test_steady_state_is_quiet(self, repo_root):
        a = self._entry(repo_root, test_x=0.100)
        b = self._entry(repo_root, test_x=0.105)
        regressions, notes = compare_entries(a, b)
        assert regressions == [] and notes == []

    def test_regression_beyond_threshold(self, repo_root):
        a = self._entry(repo_root, test_x=0.100)
        b = self._entry(repo_root, test_x=0.250)
        regressions, _ = compare_entries(a, b, threshold=2.0)
        assert len(regressions) == 1
        assert "test_x" in regressions[0] and "2.50x" in regressions[0]
        # A looser gate lets the same drift through.
        assert compare_entries(a, b, threshold=3.0)[0] == []

    def test_drift_is_a_note_not_a_regression(self, repo_root):
        a = self._entry(repo_root, test_x=0.100)
        b = self._entry(repo_root, test_x=0.150)  # 1.5x: note territory
        regressions, notes = compare_entries(a, b)
        assert regressions == []
        assert any("slower" in n for n in notes)
        regressions, notes = compare_entries(b, a)
        assert regressions == []
        assert any("faster" in n for n in notes)

    def test_appeared_and_vanished_benchmarks_noted(self, repo_root):
        a = self._entry(repo_root, test_old=0.1)
        b = self._entry(repo_root, test_new=0.1)
        regressions, notes = compare_entries(a, b)
        assert regressions == []
        assert any("test_new: new benchmark" in n for n in notes)
        assert any("test_old: no longer run" in n for n in notes)
