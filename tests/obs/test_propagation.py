"""Trace context propagation: the W3C-style ``traceparent`` wire format
and its end-to-end journey inside the signed RAR envelopes — every hop
rewrites the field with its OWN span id, so the span tree a downstream
domain builds nests exactly like the signature envelopes."""

import pytest

from repro.core.messages import F_TRACEPARENT
from repro.core.testbed import build_linear_testbed
from repro.errors import ObservabilityError
from repro.obs import spans
from repro.obs.propagation import (
    TraceContext,
    decode_trace_id,
    encode_trace_id,
    format_traceparent,
    parse_traceparent,
)


class TestWireFormat:
    def test_round_trip(self):
        ctx = TraceContext(trace_id="req-000042", span_id=0xDEADBEEF)
        assert parse_traceparent(format_traceparent(ctx)) == ctx

    def test_shape(self):
        text = format_traceparent(TraceContext(trace_id="req-000001", span_id=7))
        version, trace_field, span_field, flags = text.split("-")
        assert version == "00" and flags == "01"
        assert len(trace_field) == 32 and len(span_field) == 16
        assert span_field == f"{7:016x}"

    def test_correlation_id_is_reversible(self):
        field = encode_trace_id("req-000317")
        assert decode_trace_id(field) == "req-000317"

    def test_overlong_id_degrades_to_stable_hash(self):
        long_id = "x" * 40
        field = encode_trace_id(long_id)
        assert len(field) == 32
        assert field == encode_trace_id(long_id)  # stable grouping key
        # Not reversible: the decoder returns the field itself.
        assert decode_trace_id(field) == field

    def test_foreign_trace_id_survives_decode(self):
        # Random hex from another tracer: not UTF-8-round-trippable, so
        # the field itself becomes the (stable) trace id.
        foreign = "4bf92f3577b34da6a3ce929d0e0e4736"
        assert decode_trace_id(foreign) == foreign

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "hello",
            "00-zz-11-01",
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",  # unknown version
            "00-" + "1" * 31 + "-" + "2" * 16 + "-01",  # short trace id
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ObservabilityError):
            parse_traceparent(bad)

    def test_non_string_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_traceparent(12345)

    def test_context_validation(self):
        with pytest.raises(ObservabilityError):
            TraceContext(trace_id="", span_id=1)
        with pytest.raises(ObservabilityError):
            TraceContext(trace_id="req-000001", span_id=0)


class TestEnvelopePropagation:
    """The field travels inside the signed payload and is rewritten at
    every hop — the tracing analogue of envelope nesting."""

    @pytest.fixture()
    def traced(self):
        with spans.use_tracer() as tracer:
            testbed = build_linear_testbed(["A", "B", "C", "D"])
            user = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                user, source="A", destination="D", bandwidth_mbps=10.0,
            )
        assert outcome.granted
        return tracer, outcome, testbed

    @staticmethod
    def _peel_traceparents(rar):
        """Outermost-first ``traceparent`` of every envelope layer."""
        found = []
        while rar is not None:
            carried = rar.get(F_TRACEPARENT)
            if carried is not None:
                found.append(parse_traceparent(carried))
            rar = rar.get("inner_rar")
        return found

    def test_every_layer_names_the_same_trace(self, traced):
        _, outcome, _ = traced
        contexts = self._peel_traceparents(outcome.final_rar)
        # User layer + one per forwarding BB (A, B, C for an A->D path).
        assert len(contexts) == 4
        assert {c.trace_id for c in contexts} == {outcome.correlation_id}

    def test_each_hop_rewrites_the_span_id(self, traced):
        tracer, outcome, _ = traced
        contexts = self._peel_traceparents(outcome.final_rar)
        span_ids = [c.span_id for c in contexts]
        assert len(set(span_ids)) == len(span_ids), "a hop forwarded its upstream context"
        # Outermost layer was written by the last forwarder (C), then B,
        # then A, and the innermost by the user agent (the root span).
        chain = tracer.hop_chain(outcome.correlation_id)
        by_domain = {s.attributes["domain"]: s.span_id for s in chain}
        root = tracer.root(outcome.correlation_id)
        assert span_ids == [by_domain["C"], by_domain["B"], by_domain["A"],
                            root.span_id]

    def test_downstream_parents_under_carried_context(self, traced):
        tracer, outcome, _ = traced
        chain = tracer.hop_chain(outcome.correlation_id)
        contexts = self._peel_traceparents(outcome.final_rar)
        carried_ids = {c.span_id for c in contexts}
        # Every non-root hop's parent is a span id some envelope carried.
        for hop in chain[1:]:
            assert hop.parent_id in carried_ids

    def test_tampered_traceparent_fails_signature(self, traced):
        """The field lives inside the signed payload: flipping it breaks
        the envelope like any other field."""
        _, outcome, testbed = traced
        rar = outcome.final_rar
        forged = rar.with_tampered_field(
            F_TRACEPARENT,
            format_traceparent(TraceContext(trace_id="req-999999", span_id=99)),
        )
        signer_key = testbed.brokers["C"].keypair.public
        assert rar.verify(signer_key)
        assert not forged.verify(signer_key)

    def test_no_traceparent_when_tracing_disabled(self):
        testbed = build_linear_testbed(["A", "B"])
        user = testbed.add_user("A", "Alice")
        outcome = testbed.reserve(
            user, source="A", destination="B", bandwidth_mbps=5.0,
        )
        assert outcome.granted
        assert self._peel_traceparents(outcome.final_rar) == []
