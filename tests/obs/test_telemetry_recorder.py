"""Flight recorder, ``.tsrec`` round trip, and fabric probes."""

import io
import json

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import ObservabilityError
from repro.obs.events import Event, EventKind
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    BREAKER_STATE_VALUES,
    FlightRecorder,
    Recording,
    RecordingWriter,
    SeriesKey,
    TSREC_SCHEMA,
)
from repro.obs.telemetry import testbed_probes as fabric_probes


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestSampling:
    def test_scrapes_counters_gauges_histograms(self, registry):
        registry.counter("admissions_total").inc(domain="A", granted="true")
        registry.gauge("queue_depth").set(7, domain="A")
        hist = registry.histogram("latency_seconds")
        for v in (0.1, 0.2, 0.4):
            hist.observe(v)
        recorder = FlightRecorder()
        frame = recorder.sample(1.0, registry=registry)
        assert frame[SeriesKey.make("admissions_total",
                                    {"domain": "A", "granted": "true"})] == 1.0
        assert frame[SeriesKey.make("queue_depth", {"domain": "A"})] == 7.0
        assert frame[SeriesKey.make("latency_seconds:count")] == 3.0
        assert frame[SeriesKey.make("latency_seconds:sum")] \
            == pytest.approx(0.7)
        assert SeriesKey.make("latency_seconds:p95") in frame
        assert recorder.frames == 1

    def test_counter_series_kind_survives_into_store(self, registry):
        registry.counter("requests_total").inc()
        recorder = FlightRecorder()
        recorder.sample(1.0, registry=registry)
        series = recorder.store.select("requests_total")[0]
        assert series.kind == "counter"

    def test_probes_merge_into_frame(self, registry):
        recorder = FlightRecorder()
        key = SeriesKey.make("work_queue_backlog_s", {"domain": "B"})
        recorder.add_probe(lambda now: {key: now * 2})
        frame = recorder.sample(3.0, registry=registry)
        assert frame[key] == 6.0

    def test_probe_keys_coerced_from_bare_names_and_pairs(self, registry):
        recorder = FlightRecorder()
        recorder.add_probe(lambda now: {
            "bare_gauge": 1.0,
            # Labels as a tuple of pairs: the frame mapping needs
            # hashable keys, so a dict cannot appear inside one.
            ("paired_gauge", (("domain", "A"),)): 2.0,
        })
        frame = recorder.sample(1.0, registry=registry)
        assert frame[SeriesKey.make("bare_gauge")] == 1.0
        assert frame[SeriesKey.make("paired_gauge", {"domain": "A"})] == 2.0


class TestRoundTrip:
    def _record(self, registry):
        stream = io.StringIO()
        writer = RecordingWriter(stream, meta={"seed": 7})
        recorder = FlightRecorder(writer=writer)
        counter = registry.counter("denials_total")
        for t in range(1, 4):
            counter.inc(domain="A")
            recorder.sample(float(t), registry=registry)
        recorder.record_event(Event(
            kind=EventKind.DENY, at_time=2.5, domain="A",
            reason="capacity", correlation_id="req-1",
        ))
        recorder.record_alert(3.0, {"rule": "denial-burn",
                                    "state": "firing"})
        recorder.record_meta(attack_onset_s=1.25)
        writer.close()
        return stream.getvalue()

    def test_full_round_trip(self, registry):
        text = self._record(registry)
        header = json.loads(text.splitlines()[0])
        assert header["schema"] == TSREC_SCHEMA
        assert header["meta"] == {"seed": 7}

        recording = Recording.parse(text.splitlines())
        assert recording.meta["seed"] == 7
        assert recording.meta["attack_onset_s"] == 1.25
        assert len(recording.frames) == 3
        assert recording.start == 1.0 and recording.end == 3.0
        assert recording.store.last_value(
            "denials_total", {"domain": "A"}) == 3.0
        assert recording.events[0]["kind"] == "deny"
        assert recording.alerts[0]["rule"] == "denial-burn"
        assert recording.domains() == ("A",)

    def test_kinds_written_once_but_apply_forever(self, registry):
        text = self._record(registry)
        lines = [json.loads(line) for line in text.splitlines()]
        frame_lines = [obj for obj in lines if "f" in obj]
        assert "k" in frame_lines[0]
        assert all("k" not in obj for obj in frame_lines[1:])
        recording = Recording.parse(text.splitlines())
        assert all(
            s.kind == "counter"
            for s in recording.store.select("denials_total")
        )

    def test_replay_yields_incremental_stores(self, registry):
        recording = Recording.parse(self._record(registry).splitlines())
        seen = []
        for t, store in recording.replay():
            seen.append((t, store.last_value("denials_total")))
        assert seen == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]

    def test_writer_refuses_after_close(self):
        writer = RecordingWriter(io.StringIO())
        writer.close()
        with pytest.raises(ObservabilityError):
            writer.write_meta({"late": True})

    def test_load_from_disk(self, registry, tmp_path):
        path = tmp_path / "run.tsrec"
        with RecordingWriter.open(path, meta={"campaign": "unit"}) as writer:
            FlightRecorder(writer=writer).sample(1.0, registry=registry)
        recording = Recording.load(path)
        assert recording.meta["campaign"] == "unit"


class TestParseErrors:
    def test_empty_file_rejected(self):
        with pytest.raises(ObservabilityError, match="empty"):
            Recording.parse([])

    def test_wrong_schema_rejected(self):
        with pytest.raises(ObservabilityError, match="schema"):
            Recording.parse(['{"schema": "other/9", "meta": {}}'])

    def test_invalid_json_rejected_with_line_number(self):
        lines = [
            json.dumps({"schema": TSREC_SCHEMA, "meta": {}}),
            "{not json",
        ]
        with pytest.raises(ObservabilityError, match="line 2"):
            Recording.parse(lines)

    def test_unknown_record_shape_rejected(self):
        lines = [
            json.dumps({"schema": TSREC_SCHEMA, "meta": {}}),
            json.dumps({"t": 1.0, "x": {}}),
        ]
        with pytest.raises(ObservabilityError, match="unrecognised"):
            Recording.parse(lines)


class TestFabricProbes:
    def test_probe_frame_covers_fabric_state(self):
        testbed = build_linear_testbed(["A", "B", "C"])
        user = testbed.add_user("A", "Alice")
        testbed.reserve(user, source="A", destination="C",
                        bandwidth_mbps=10.0, duration=3600.0)
        recorder = FlightRecorder()
        for probe in fabric_probes(testbed):
            recorder.add_probe(probe)
        frame = recorder.sample(1.0)
        util_a = frame[SeriesKey.make("domain_utilization",
                                      {"domain": "A"})]
        assert util_a > 0.0
        assert frame[SeriesKey.make("reservation_table_size",
                                    {"domain": "A"})] >= 1.0
        breaker_keys = [k for k in frame
                        if k.name == "breaker_state"]
        assert breaker_keys
        assert all(
            frame[k] in BREAKER_STATE_VALUES.values()
            for k in breaker_keys
        )
