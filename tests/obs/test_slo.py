"""Declarative SLOs: spec parsing, evaluation over the metrics registry
and event log, burn rates, and the chaos harness's verdict table."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import EventKind, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO,
    default_slos,
    evaluate_slos,
    parse_slo_spec,
)


class TestSLOValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown kind"):
            SLO(name="x", kind="availability", threshold=0.1)

    def test_latency_objective_needs_a_metric(self):
        with pytest.raises(ObservabilityError, match="metric"):
            SLO(name="x", kind="latency_quantile", threshold=0.5)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ObservabilityError, match="threshold"):
            SLO(name="x", kind="denial_rate", threshold=-0.1)

    def test_quantile_bounds(self):
        with pytest.raises(ObservabilityError, match="quantile"):
            SLO(name="x", kind="latency_quantile", metric="m",
                threshold=0.5, quantile=1.5)


class TestSpecParsing:
    def test_full_spec(self):
        slos = parse_slo_spec("""
        {"slos": [
          {"name": "p95", "type": "latency_quantile",
           "metric": "signalling_latency_seconds",
           "quantile": 0.95, "threshold": 0.5},
          {"name": "denials", "type": "denial_rate", "threshold": 0.1}
        ]}
        """)
        assert [s.name for s in slos] == ["p95", "denials"]
        assert slos[0].quantile == 0.95
        assert slos[1].kind == "denial_rate"

    @pytest.mark.parametrize(
        "text, complaint",
        [
            ("not json", "not valid JSON"),
            ("[]", "slos"),
            ('{"slos": []}', "no objectives"),
            ('{"slos": [42]}', "not an object"),
            ('{"slos": [{"name": "x", "type": "denial_rate",'
             ' "threshold": 0.1, "bogus": 1}]}', "unknown keys"),
            ('{"slos": [{"name": "x", "type": "denial_rate"}]}',
             "threshold"),
        ],
    )
    def test_bad_specs_rejected(self, text, complaint):
        with pytest.raises(ObservabilityError, match=complaint):
            parse_slo_spec(text)


class TestEvaluation:
    def test_latency_quantile_against_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", buckets=(0.1, 1.0, 10.0),
        )
        for _ in range(95):
            hist.observe(0.05)
        for _ in range(5):
            hist.observe(5.0)
        slo = SLO(name="p50", kind="latency_quantile",
                  metric="lat_seconds", quantile=0.5, threshold=0.2)
        report = evaluate_slos((slo,), registry=registry, event_log=None)
        result = report.results[0]
        assert result.ok
        assert result.actual < 0.2
        assert "100 observations" in result.detail

    def test_latency_quantile_failure_and_burn(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for _ in range(10):
            hist.observe(0.9)
        slo = SLO(name="p95", kind="latency_quantile",
                  metric="lat_seconds", quantile=0.95, threshold=0.2)
        result = evaluate_slos(
            (slo,), registry=registry, event_log=None
        ).results[0]
        assert not result.ok
        assert result.burn_rate == pytest.approx(result.actual / 0.2)
        assert result.burn_rate > 1.0

    def test_denial_rate(self):
        log = EventLog()
        for _ in range(8):
            log.emit(EventKind.ADMIT, domain="A")
        for _ in range(2):
            log.emit(EventKind.DENY, domain="B", reason="policy")
        slo = SLO(name="denials", kind="denial_rate", threshold=0.1)
        result = evaluate_slos(
            (slo,), registry=None, event_log=log
        ).results[0]
        assert result.actual == pytest.approx(0.2)
        assert not result.ok
        assert result.burn_rate == pytest.approx(2.0)
        assert "2 denials / 10 decisions" in result.detail

    def test_breaker_open_rate_counts_only_opens(self):
        log = EventLog()
        for _ in range(10):
            log.emit(EventKind.ADMIT, domain="A")
        log.emit(EventKind.BREAKER, reason="closed -> open", link="A|B")
        log.emit(EventKind.BREAKER, reason="open -> half_open", link="A|B")
        log.emit(EventKind.BREAKER, reason="half_open -> closed", link="A|B")
        slo = SLO(name="breakers", kind="breaker_open_rate", threshold=0.25)
        result = evaluate_slos(
            (slo,), registry=None, event_log=log
        ).results[0]
        assert result.actual == pytest.approx(0.1)
        assert result.ok
        assert "1 breaker opens" in result.detail

    def test_no_data_passes_vacuously(self):
        report = evaluate_slos(default_slos(), registry=None, event_log=None)
        assert report.ok
        assert all(r.actual == 0.0 for r in report.results)

    def test_zero_threshold_burn_rate(self):
        log = EventLog()
        log.emit(EventKind.ADMIT, domain="A")
        log.emit(EventKind.DENY, domain="A", reason="x")
        slo = SLO(name="no-denials", kind="denial_rate", threshold=0.0)
        result = evaluate_slos(
            (slo,), registry=None, event_log=log
        ).results[0]
        assert not result.ok
        assert result.burn_rate == float("inf")

    def test_render_table(self):
        log = EventLog()
        log.emit(EventKind.ADMIT, domain="A")
        report = evaluate_slos(
            (SLO(name="denials", kind="denial_rate", threshold=0.1),),
            registry=None, event_log=log,
        )
        text = report.render()
        assert "OK" in text and "denials" in text
        assert "all objectives met" in text


class TestChaosIntegration:
    def test_chaos_report_carries_slo_verdicts(self):
        from repro.faults.chaos import run_chaos

        report = run_chaos(seed=11, trials=6)
        assert report.slo_report is not None
        names = {r.slo.name for r in report.slo_report.results}
        assert names == {s.name for s in default_slos()}
        # Six faulty trials still produced decisions to judge.
        assert any(
            "decisions" in r.detail for r in report.slo_report.results
        )
        assert "SLO verdicts:" in report.summary()

    def test_chaos_accepts_custom_slos(self):
        from repro.faults.chaos import run_chaos

        impossible = SLO(name="zero-latency", kind="latency_quantile",
                         metric="signalling_latency_seconds",
                         quantile=0.5, threshold=0.0)
        report = run_chaos(seed=11, trials=6, slos=(impossible,))
        assert [r.slo.name for r in report.slo_report.results] == [
            "zero-latency"
        ]
        # Signalling always takes nonzero modelled time, so a zero
        # budget must burn.
        assert not report.slo_report.ok
        # SLO verdicts are informational: invariants still decide health.
        assert report.violations == []
