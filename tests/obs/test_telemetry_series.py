"""Ring-buffer time series and the store (repro.obs.telemetry.series)."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.telemetry.series import (
    DEFAULT_CAPACITY,
    SeriesKey,
    SeriesStore,
    TimeSeries,
    ewm_stats,
    ewma,
)


class TestSeriesKey:
    def test_labels_are_sorted_and_hashable(self):
        a = SeriesKey.make("m", {"b": "2", "a": "1"})
        b = SeriesKey.make("m", {"a": "1", "b": "2"})
        assert a == b
        assert hash(a) == hash(b)
        assert a.labels == (("a", "1"), ("b", "2"))

    def test_render_parse_round_trip(self):
        key = SeriesKey.make("admissions_total",
                             {"domain": "A", "granted": "true"})
        rendered = key.render()
        assert rendered == "admissions_total{domain=A,granted=true}"
        assert SeriesKey.parse(rendered) == key

    def test_parse_bare_name(self):
        key = SeriesKey.parse("sim_pending_events")
        assert key.name == "sim_pending_events"
        assert key.labels == ()

    def test_label_lookup_and_matches(self):
        key = SeriesKey.make("m", {"domain": "B"})
        assert key.label("domain") == "B"
        assert key.label("missing") == ""
        assert key.matches("m", {"domain": "B"})
        assert not key.matches("m", {"domain": "C"})
        assert not key.matches("other", None)


KEY = SeriesKey.make("m")


class TestTimeSeries:
    def test_append_and_window(self):
        s = TimeSeries(KEY)
        for t in range(5):
            s.append(float(t), float(t * 10))
        assert s.last() == (4.0, 40.0)
        assert s.window(1.0, 3.0) == ((1.0, 10.0), (2.0, 20.0), (3.0, 30.0))

    def test_backwards_time_rejected(self):
        s = TimeSeries(KEY)
        s.append(5.0, 1.0)
        with pytest.raises(ObservabilityError):
            s.append(4.0, 2.0)

    def test_ring_bound(self):
        s = TimeSeries(KEY, capacity=8)
        for t in range(100):
            s.append(float(t), float(t))
        points = s.points()
        assert len(points) == 8
        assert points[0] == (92.0, 92.0)
        assert points[-1] == (99.0, 99.0)

    def test_default_capacity(self):
        s = TimeSeries(KEY)
        for t in range(DEFAULT_CAPACITY + 50):
            s.append(float(t), 0.0)
        assert len(s.points()) == DEFAULT_CAPACITY

    def test_zero_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            TimeSeries(KEY, capacity=0)


class TestSeriesStore:
    def test_record_frame_and_select(self):
        store = SeriesStore()
        ka = SeriesKey.make("denials_total", {"domain": "A"})
        kb = SeriesKey.make("denials_total", {"domain": "B"})
        store.record_frame(1.0, {ka: 3.0, kb: 1.0},
                           {ka: "counter", kb: "counter"})
        assert store.last_value("denials_total") == 4.0
        assert store.last_value("denials_total", {"domain": "A"}) == 3.0
        assert len(store.select("denials_total")) == 2
        assert store.select("denials_total", {"domain": "B"})[0].last() \
            == (1.0, 1.0)

    def test_delta_ignores_counter_resets(self):
        store = SeriesStore()
        for t, v in [(1.0, 10.0), (2.0, 14.0), (3.0, 2.0), (4.0, 5.0)]:
            store.record("requests_total", t, v, kind="counter")
        # +4 (10->14), reset ignored (14->2 reads as no traffic), +3.
        assert store.delta("requests_total", now=4.0, window_s=10.0) == 7.0

    def test_rate_is_delta_over_covered_seconds(self):
        store = SeriesStore()
        for t in range(11):
            store.record("requests_total", float(t), float(t * 2),
                         kind="counter")
        assert store.rate("requests_total", now=10.0, window_s=5.0) \
            == pytest.approx(2.0)

    def test_ratio(self):
        store = SeriesStore()
        denied = SeriesKey.make("denials_total")
        granted = SeriesKey.make("grants_total")
        for t in range(5):
            store.record_frame(
                float(t),
                {denied: float(t), granted: float(t * 3)},
                {denied: "counter", granted: "counter"},
            )
        burn = store.ratio(
            "denials_total", ["denials_total", "grants_total"],
            now=4.0, window_s=10.0,
        )
        assert burn == pytest.approx(4.0 / 16.0)

    def test_empty_store_reads_zero(self):
        store = SeriesStore()
        assert store.last_value("nothing") == 0.0
        assert store.delta("nothing", now=1.0, window_s=1.0) == 0.0
        assert store.rate("nothing", now=1.0, window_s=1.0) == 0.0


class TestEwma:
    def test_ewma_converges_to_constant(self):
        assert ewma([5.0] * 20, 0.3) == pytest.approx(5.0)

    def test_ewm_stats_flat_series_has_zero_std(self):
        mean, std, count = ewm_stats([2.0] * 10, 0.3)
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(0.0)
        assert count == 10

    def test_ewm_stats_weighs_recent_samples(self):
        mean, std, _ = ewm_stats([0.0] * 20 + [10.0] * 5, 0.5)
        assert mean > 5.0
        assert std > 0.0
