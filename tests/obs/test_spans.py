"""Span tracing: the span tree must nest exactly like the signature
envelopes — the root-to-leaf chain of hop spans is the signer order
``trace_request_path`` recovers from the RAR the destination received."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.core.tracing import trace_request_path
from repro.errors import ObservabilityError
from repro.obs import spans
from repro.obs.spans import Tracer, mint_correlation_id


class TestTracerPrimitives:
    def test_begin_end_records_duration(self):
        tracer = Tracer()
        span = tracer.begin("op", trace_id="t1")
        assert not span.finished
        tracer.end(span, status="ok", extra=1)
        assert span.finished
        assert span.wall_duration_s >= 0.0
        assert span.attributes["extra"] == 1

    def test_open_span_has_no_duration(self):
        tracer = Tracer()
        span = tracer.begin("op", trace_id="t1")
        with pytest.raises(ObservabilityError):
            _ = span.wall_duration_s

    def test_parenting_and_queries(self):
        tracer = Tracer()
        root = tracer.begin("root", trace_id="t")
        child = tracer.begin("child", trace_id="t", parent=root)
        grandchild = tracer.begin("leaf", trace_id="t", parent=child)
        assert tracer.root("t") is root
        assert tracer.children_of(root) == (child,)
        assert tracer.children_of(child) == (grandchild,)

    def test_correlation_ids_unique(self):
        a, b = mint_correlation_id(), mint_correlation_id()
        assert a != b
        assert a.startswith("req-")

    def test_disabled_by_default(self):
        assert spans.get_tracer() is None


class TestFourDomainPath:
    """The acceptance scenario: A,B,C,D with hop spans mirroring envelopes."""

    @pytest.fixture()
    def traced(self):
        with spans.use_tracer() as tracer:
            testbed = build_linear_testbed(["A", "B", "C", "D"])
            user = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                user, source="A", destination="D", bandwidth_mbps=10.0,
            )
        assert outcome.granted
        return tracer, outcome

    def test_hop_spans_nest_in_travel_order(self, traced):
        tracer, outcome = traced
        chain = tracer.hop_chain(outcome.correlation_id)
        assert [s.attributes["domain"] for s in chain] == ["A", "B", "C", "D"]
        # Each hop span parents the next — the envelope-nesting shape.
        for parent, child in zip(chain, chain[1:]):
            assert child.parent_id == parent.span_id

    def test_chain_matches_envelope_signers(self, traced):
        tracer, outcome = traced
        chain = tracer.hop_chain(outcome.correlation_id)
        envelope = trace_request_path(outcome.final_rar)
        assert envelope.consistent
        # The destination's RAR is signed by the user and every BB before
        # the destination, in travel order.
        bbs_in_spans = [str(s.attributes["bb"]) for s in chain[:-1]]
        assert bbs_in_spans == [str(dn) for dn in envelope.signers[1:]]
        assert str(envelope.signers[0]) == str(outcome.verified.user)

    def test_every_hop_has_phase_children(self, traced):
        tracer, outcome = traced
        chain = tracer.hop_chain(outcome.correlation_id)
        for i, hop in enumerate(chain):
            phases = {
                s.name for s in tracer.children_of(hop) if s.name != "hop"
            }
            assert {"verify", "policy", "admission"} <= phases
            if i < len(chain) - 1:
                assert "forward" in phases
            else:
                assert "delegation" in phases

    def test_verify_depth_grows_along_path(self, traced):
        tracer, outcome = traced
        chain = tracer.hop_chain(outcome.correlation_id)
        depths = [
            next(s for s in tracer.children_of(hop) if s.name == "verify")
            .attributes["depth"]
            for hop in chain
        ]
        assert depths == [0, 1, 2, 3]

    def test_hop_spans_closed_by_reply_leg(self, traced):
        tracer, outcome = traced
        for span in tracer.spans_for(outcome.correlation_id):
            assert span.finished, f"span {span.name} left open"
        root = tracer.root(outcome.correlation_id)
        assert root.name == "reserve"
        assert root.attributes["granted"] is True

    def test_render_shows_the_tree(self, traced):
        tracer, outcome = traced
        text = tracer.render(outcome.correlation_id)
        assert f"trace {outcome.correlation_id}" in text
        assert text.count("hop") >= 4
        assert "verify" in text and "admission" in text


class TestDeniedPath:
    def test_denied_hops_marked(self):
        with spans.use_tracer() as tracer:
            testbed = build_linear_testbed(["A", "B", "C"])
            testbed.set_policy("C", "Return DENY")
            user = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                user, source="A", destination="C", bandwidth_mbps=10.0,
            )
        assert not outcome.granted
        chain = tracer.hop_chain(outcome.correlation_id)
        statuses = {s.attributes["domain"]: s.status for s in chain}
        assert statuses["C"] == "denied"
        assert statuses["A"] == "released"
        assert statuses["B"] == "released"
        root = tracer.root(outcome.correlation_id)
        assert root.status == "denied"
