"""Tests for the synthetic reservation workload driver."""

import random

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import SimulationError
from repro.workloads.generator import ReservationWorkload, WorkloadSpec


def make_spec(**kwargs):
    defaults = dict(
        arrival_rate_per_s=0.05,
        mean_duration_s=300.0,
        rate_choices_mbps=(5.0, 10.0),
        pairs=(("A", "C"),),
        horizon_s=2000.0,
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestSpec:
    def test_offered_load(self):
        spec = make_spec(arrival_rate_per_s=0.1, mean_duration_s=100.0,
                         rate_choices_mbps=(10.0,))
        assert spec.offered_load_mbps() == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            make_spec(arrival_rate_per_s=0.0)
        with pytest.raises(SimulationError):
            make_spec(mean_duration_s=0.0)
        with pytest.raises(SimulationError):
            make_spec(rate_choices_mbps=())
        with pytest.raises(SimulationError):
            make_spec(pairs=())


class TestWorkloadRun:
    def test_light_load_all_accepted(self):
        tb = build_linear_testbed(["A", "B", "C"], hosts_per_domain=1)
        spec = make_spec(arrival_rate_per_s=0.01, rate_choices_mbps=(1.0,))
        result = ReservationWorkload(tb, spec, rng=random.Random(1)).run()
        assert result.offered > 5
        assert result.acceptance_ratio == 1.0
        assert result.carried_fraction == 1.0

    def test_heavy_load_rejections(self):
        tb = build_linear_testbed(
            ["A", "B", "C"], hosts_per_domain=1, inter_capacity_mbps=50.0
        )
        spec = make_spec(
            arrival_rate_per_s=0.2, rate_choices_mbps=(20.0, 40.0),
            mean_duration_s=600.0,
        )
        result = ReservationWorkload(tb, spec, rng=random.Random(2)).run()
        assert result.rejected > 0
        assert 0.0 < result.acceptance_ratio < 1.0
        # All rejections come from capacity, somewhere along A-B-C.
        assert set(result.rejected_by_domain) <= {"A", "B", "C"}

    def test_reservations_expire_and_capacity_recovers(self):
        """With holding times far shorter than the horizon, the system
        reaches steady state instead of monotonically filling up: the
        late-window acceptance ratio stays well above zero."""
        tb = build_linear_testbed(
            ["A", "B"], hosts_per_domain=1, inter_capacity_mbps=50.0
        )
        spec = WorkloadSpec(
            arrival_rate_per_s=0.1,
            mean_duration_s=100.0,
            rate_choices_mbps=(10.0,),
            pairs=(("A", "B"),),
            horizon_s=5000.0,
        )
        workload = ReservationWorkload(tb, spec, rng=random.Random(3))
        result = workload.run()
        # Offered ~ 0.1*100*10 = 100 Mb/s over a 50 Mb/s link: about half
        # the volume can be carried in steady state.
        assert 0.25 < result.carried_fraction < 0.75
        # Brokers hold no active reservations long after the horizon.
        tb.sim.run(until=spec.horizon_s + 10_000.0)
        from repro.bb.reservations import ReservationState

        active = tb.brokers["A"].reservations.in_state(ReservationState.ACTIVE)
        assert active == ()

    def test_multi_pair_workload(self):
        tb = build_linear_testbed(["A", "B", "C"], hosts_per_domain=1)
        spec = make_spec(
            pairs=(("A", "C"), ("C", "A"), ("A", "B")),
            arrival_rate_per_s=0.02,
            rate_choices_mbps=(1.0,),
        )
        result = ReservationWorkload(tb, spec, rng=random.Random(4)).run()
        assert result.acceptance_ratio == 1.0
        assert len(tb.users) >= 2  # one load user per source domain

    def test_deterministic_given_seed(self):
        def run(seed):
            tb = build_linear_testbed(["A", "B"], hosts_per_domain=1)
            spec = make_spec(pairs=(("A", "B"),))
            return ReservationWorkload(tb, spec, rng=random.Random(seed)).run()

        a, b = run(7), run(7)
        assert (a.offered, a.accepted, a.offered_mbps_s) == (
            b.offered, b.accepted, b.offered_mbps_s
        )
