"""Tests for the survivability harness (repro.workloads.survivability)."""

import pytest

from repro.errors import SimulationError
from repro.obs.audit import reconcile
from repro.workloads.survivability import (
    SurvivabilitySpec,
    harness_defense_policy,
    honest_slos,
    run_survivability,
    run_survivability_pair,
)


class TestSpec:
    def test_unknown_persona_rejected(self):
        with pytest.raises(SimulationError, match="unknown persona"):
            SurvivabilitySpec(persona="ddos")

    def test_fraction_bounds(self):
        with pytest.raises(SimulationError, match="attack_fraction"):
            SurvivabilitySpec(persona="flood", attack_fraction=1.0)
        with pytest.raises(SimulationError, match="attack_fraction"):
            SurvivabilitySpec(persona="flood", attack_fraction=0.0)

    def test_victim_must_be_downstream(self):
        with pytest.raises(SimulationError):
            SurvivabilitySpec(persona="flood", victim="Z")
        with pytest.raises(SimulationError, match="downstream"):
            SurvivabilitySpec(persona="flood", victim="A")

    def test_default_fraction_comes_from_persona(self):
        spec = SurvivabilitySpec(persona="byzantine-broker")
        assert spec.fraction == 0.98
        explicit = SurvivabilitySpec(
            persona="byzantine-broker", attack_fraction=0.5
        )
        assert explicit.fraction == 0.5
        # attack rate = honest * f/(1-f): at f=0.5 the rates match.
        assert explicit.attack_rate_per_s == pytest.approx(
            explicit.honest_rate_per_s
        )

    def test_honest_slos_follow_the_deadline(self):
        spec = SurvivabilitySpec(persona="flood", honest_deadline_s=4.0)
        slos = {s.name: s for s in honest_slos(spec)}
        assert slos["honest-latency-p99"].threshold == 4.0
        assert slos["honest-denial-rate"].threshold == 0.10


class TestRuns:
    def test_deterministic_under_seed(self):
        spec = SurvivabilitySpec(
            persona="flood", seed=7, horizon_s=25.0
        )
        first = run_survivability(spec, defenses_on=True)
        second = run_survivability(spec, defenses_on=True)
        assert first.to_dict() == second.to_dict()

    def test_flood_pair_off_harms_on_retains(self):
        spec = SurvivabilitySpec(persona="flood", horizon_s=60.0)
        off, on = run_survivability_pair(spec)
        assert off.honest_offered == on.honest_offered > 0
        assert on.honest_admission_rate > off.honest_admission_rate
        assert on.honest_admission_rate >= 0.9
        assert on.slo_report is not None and on.slo_report.ok
        assert on.defense_rejections
        assert on.attacker["gate_rejected"] > 0
        # Defenses off: nothing was gate-rejected, everything was
        # processed the expensive way.
        assert off.attacker["gate_rejected"] == 0
        assert not off.defense_rejections

    def test_byzantine_replays_all_rejected_pre_verification(self):
        spec = SurvivabilitySpec(
            persona="byzantine-broker", horizon_s=20.0
        )
        on = run_survivability(spec, defenses_on=True)
        sent = on.attacker["replays_sent"]
        assert sent > 0
        assert on.attacker["replays_rejected_before_verification"] == sent

    def test_ledger_reconciles_clean(self):
        spec = SurvivabilitySpec(persona="flood", horizon_s=25.0)
        on = run_survivability(spec, defenses_on=True)
        assert on.ledger is not None and len(on.ledger) > 0
        assert reconcile(on.ledger).ok

    def test_report_dict_shape(self):
        spec = SurvivabilitySpec(persona="flood", horizon_s=20.0)
        report = run_survivability(spec, defenses_on=True)
        payload = report.to_dict()
        for key in ("persona", "seed", "attack_fraction", "defenses_on",
                    "honest_offered", "honest_admission_rate",
                    "honest_p99_latency_s", "breaker_opens",
                    "max_backlog_s", "attacker", "defense_rejections",
                    "slos"):
            assert key in payload
        assert payload["slos"], "SLO results must be in the payload"

    def test_harness_policy_domain_class_looser_than_user(self):
        policy = harness_defense_policy()
        assert policy.domain_peer_rate_per_s > policy.peer_rate_per_s
        assert policy.domain_peer_burst > policy.peer_burst


class TestTimeToDetect:
    """The monitored-incident fields (PR 9's telemetry tentpole)."""

    def test_unmonitored_run_has_no_detection_fields(self):
        spec = SurvivabilitySpec(persona="flood", seed=7, horizon_s=20.0)
        report = run_survivability(spec, defenses_on=True)
        # Onset is a fact about the workload, known with or without a
        # recorder; the alert-derived fields need the telemetry plane.
        assert report.attack_onset_s is not None
        assert report.first_critical_alert_s is None
        assert report.time_to_detect_s is None
        assert report.alert_transitions == 0

    def test_flood_with_defenses_off_detected_in_finite_time(self):
        from repro.obs.telemetry import FlightRecorder

        spec = SurvivabilitySpec(
            persona="flood", seed=2001, horizon_s=60.0
        )
        report = run_survivability(
            spec, defenses_on=False, recorder=FlightRecorder()
        )
        assert report.attack_onset_s is not None
        assert report.first_critical_alert_s is not None
        assert report.time_to_detect_s is not None
        assert 0.0 < report.time_to_detect_s < spec.horizon_s
        assert report.first_critical_alert_s == pytest.approx(
            report.attack_onset_s + report.time_to_detect_s
        )
        assert report.alert_transitions > 0
        # The fields survive into the serialized report.
        payload = report.to_dict()
        assert payload["time_to_detect_s"] == report.time_to_detect_s

    def test_monitored_run_streams_frames_into_recording(self, tmp_path):
        from repro.obs.telemetry import (
            FlightRecorder,
            Recording,
            RecordingWriter,
        )

        path = tmp_path / "attack.tsrec"
        spec = SurvivabilitySpec(persona="flood", seed=7, horizon_s=20.0)
        with RecordingWriter.open(path, meta={"persona": "flood"}) as writer:
            run_survivability(
                spec, defenses_on=True,
                recorder=FlightRecorder(writer=writer),
            )
        recording = Recording.load(path)
        assert recording.meta["persona"] == "flood"
        assert len(recording.frames) >= int(spec.horizon_s) - 1
        assert recording.meta.get("attack_onset_s") is not None
