"""Tests for the attack personas (repro.workloads.attackers)."""

import random
import zlib

import pytest

from repro.bb.defense import DefensePolicy
from repro.core.testbed import build_linear_testbed
from repro.errors import SimulationError
from repro.workloads.attackers import (
    ByzantineBrokerAttacker,
    FloodAttacker,
    PERSONAS,
    RevocationStormAttacker,
    TunnelSquatter,
    make_persona,
)


def _rng(tag: str) -> random.Random:
    return random.Random(zlib.crc32(tag.encode()))


def _run(persona_name: str, *, armed: bool, fires: int = 30,
         gap_s: float = 0.5, seed_tag: str = "t") -> dict[str, int]:
    testbed = build_linear_testbed(["A", "B", "C"])
    if armed:
        testbed.arm_defenses(DefensePolicy(
            peer_burst=4.0, peer_rate_per_s=0.5, per_user_quota=3,
        ))
    persona = make_persona(
        persona_name, testbed, victim="B", source="A",
        rng=_rng(seed_tag),
    )
    persona.prepare(0.0)
    for i in range(fires):
        persona.fire(i * gap_s)
    return persona.stats.to_dict()


class TestRegistry:
    def test_all_four_personas_registered(self):
        assert set(PERSONAS) == {
            "flood", "revocation-storm", "byzantine-broker",
            "tunnel-squatter",
        }
        assert PERSONAS["flood"] is FloodAttacker
        assert PERSONAS["revocation-storm"] is RevocationStormAttacker
        assert PERSONAS["byzantine-broker"] is ByzantineBrokerAttacker
        assert PERSONAS["tunnel-squatter"] is TunnelSquatter

    def test_unknown_persona_is_typed_error(self):
        testbed = build_linear_testbed(["A", "B"])
        with pytest.raises(SimulationError, match="unknown attack persona"):
            make_persona("ddos", testbed, victim="B", source="A",
                         rng=_rng("x"))

    def test_unknown_victim_is_typed_error(self):
        testbed = build_linear_testbed(["A", "B"])
        with pytest.raises(SimulationError, match="unknown victim"):
            FloodAttacker(testbed, victim="Z", source="A", rng=_rng("x"))

    def test_attack_fractions_are_valid(self):
        for cls in PERSONAS.values():
            assert 0.0 < cls.default_attack_fraction < 1.0


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(PERSONAS))
    def test_same_seed_same_stats(self, name):
        first = _run(name, armed=True, seed_tag="same")
        second = _run(name, armed=True, seed_tag="same")
        assert first == second

    def test_byzantine_payloads_differ_across_seeds(self):
        # The RNG actually shapes the attack (truncation points, junk
        # bytes), so different seeds must be able to diverge somewhere;
        # the cheap observable proof is that the same seed reproduces
        # byte-identical behaviour while the persona still consumed RNG.
        testbed = build_linear_testbed(["A", "B"])
        rng = _rng("payloads")
        state_before = rng.getstate()
        persona = ByzantineBrokerAttacker(
            testbed, victim="B", source="A", rng=rng)
        persona.prepare(0.0)
        for i in range(7):
            persona.fire(float(i))
        assert rng.getstate() != state_before


class TestFlood:
    def test_defenseless_flood_exhausts_capacity(self):
        stats = _run("flood", armed=False, fires=40, gap_s=1.0)
        assert stats["admitted"] >= 3
        # The adaptive ladder keeps asking until capacity denies even
        # 1 Mb/s crumbs.
        assert stats["denied"] > 0
        assert stats["gate_rejected"] == 0

    def test_quota_caps_live_grants(self):
        stats = _run("flood", armed=True, fires=40, gap_s=3.0)
        assert stats["admitted"] <= 3
        assert stats["gate_rejected"] > 0


class TestRevocationStorm:
    def test_storm_cycles_login_reserve_revoke(self):
        stats = _run("revocation-storm", armed=False, fires=20, gap_s=1.0)
        assert stats["fired"] == 20
        assert stats["admitted"] == 20
        assert stats["gate_rejected"] == 0

    def test_rate_limit_clamps_the_churn(self):
        stats = _run("revocation-storm", armed=True, fires=20, gap_s=0.2)
        assert stats["gate_rejected"] > stats["admitted"]


class TestByzantine:
    def test_replays_all_rejected_pre_verification_when_armed(self):
        testbed = build_linear_testbed(["A", "B"])
        testbed.arm_defenses(DefensePolicy(
            peer_burst=1000.0, peer_rate_per_s=1000.0,
        ))
        persona = ByzantineBrokerAttacker(
            testbed, victim="B", source="A", rng=_rng("byz"))
        persona.prepare(0.0)
        before = testbed.hop_by_hop.ingress_verifications
        for i in range(35):
            persona.fire(float(i))
        stats = persona.stats
        assert stats.replays_sent > 0
        assert (stats.replays_rejected_before_verification
                == stats.replays_sent)
        # The only verification spent was (at most) the replay seed.
        assert testbed.hop_by_hop.ingress_verifications <= before + 1

    def test_malformed_spray_never_accepted(self):
        stats = _run("byzantine-broker", armed=False, fires=21, gap_s=0.1)
        assert stats["admitted"] == 0
        assert stats["denied"] + stats["gate_rejected"] == 21


class TestSquatter:
    def test_squats_never_succeed(self):
        for armed in (False, True):
            stats = _run("tunnel-squatter", armed=armed, fires=15,
                         gap_s=0.5)
            assert stats["squats_succeeded"] == 0
        # Defenseless, every claim costs the victim processing.
        stats = _run("tunnel-squatter", armed=False, fires=15, gap_s=0.5)
        assert stats["squats_attempted"] == 15
