"""Tests for the Erlang-B analytic companion, including validation of the
measured workload sweep against theory."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.testbed import build_linear_testbed
from repro.errors import SimulationError
from repro.workloads.analysis import (
    erlang_b,
    offered_erlangs,
    predicted_acceptance,
)
from repro.workloads.generator import ReservationWorkload, WorkloadSpec


class TestErlangB:
    def test_known_values(self):
        # Classic reference points (traffic-engineering tables).
        assert erlang_b(1.0, 1) == pytest.approx(0.5)
        assert erlang_b(2.0, 2) == pytest.approx(0.4)
        assert erlang_b(10.0, 10) == pytest.approx(0.2146, abs=1e-3)
        assert erlang_b(5.0, 10) == pytest.approx(0.0184, abs=1e-3)

    def test_zero_load(self):
        assert erlang_b(0.0, 5) == 0.0

    def test_zero_servers_blocks_everything(self):
        assert erlang_b(3.0, 0) == 1.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            erlang_b(-1.0, 5)
        with pytest.raises(SimulationError):
            erlang_b(1.0, -1)
        with pytest.raises(SimulationError):
            predicted_acceptance(
                arrival_rate_per_s=1.0, mean_duration_s=1.0,
                mean_rate_mbps=0.0, bottleneck_mbps=10.0,
            )

    @given(
        st.floats(min_value=0.01, max_value=50.0),
        st.integers(min_value=1, max_value=60),
    )
    def test_monotonic_in_load_property(self, load, servers):
        """More offered load -> more blocking; more servers -> less."""
        assert erlang_b(load, servers) <= erlang_b(load * 1.5, servers) + 1e-12
        assert erlang_b(load, servers + 1) <= erlang_b(load, servers) + 1e-12

    def test_offered_erlangs(self):
        assert offered_erlangs(0.1, 300.0) == pytest.approx(30.0)


class TestTheoryVsMeasurement:
    def test_sweep_matches_erlang_prediction(self):
        """The measured acceptance ratio tracks the Erlang-B prediction
        within loose tolerance (heterogeneous rates and advance windows
        perturb the pure loss-system assumptions)."""
        bottleneck = 100.0
        mean_rate = 10.0
        mean_hold = 300.0
        for load_factor in (0.5, 2.0):
            arrival = load_factor * bottleneck / (mean_rate * mean_hold)
            tb = build_linear_testbed(
                ["A", "B"], hosts_per_domain=1,
                inter_capacity_mbps=bottleneck,
            )
            spec = WorkloadSpec(
                arrival_rate_per_s=arrival,
                mean_duration_s=mean_hold,
                rate_choices_mbps=(mean_rate,),
                pairs=(("A", "B"),),
                horizon_s=20_000.0,
            )
            result = ReservationWorkload(tb, spec, rng=random.Random(5)).run()
            predicted = predicted_acceptance(
                arrival_rate_per_s=arrival,
                mean_duration_s=mean_hold,
                mean_rate_mbps=mean_rate,
                bottleneck_mbps=bottleneck,
            )
            assert result.acceptance_ratio == pytest.approx(
                predicted, abs=0.12
            ), (load_factor, result.acceptance_ratio, predicted)
