"""Property suite: the decision-provenance ledger is complete.

Hypothesis drives random topologies and reservation batches through the
hop-by-hop protocol — serially and through the concurrent engine — and
checks the audit contract: every admitted reservation stitches into a
complete per-hop chain (one admission per path domain, in travel
order), the ledger-internal invariants reconcile clean, and the
provenance a cache-hit run records is structurally identical to the
fresh-verification run's (only the verdict ``source`` may differ).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.concurrent import ConcurrentSignaller, ReservationJob
from repro.core.testbed import build_linear_testbed
from repro.crypto import cache as verification_cache
from repro.obs import audit as obs_audit

RATES = (10.0, 40.0, 60.0, 100.0)

SETTINGS = settings(
    max_examples=200,
    deadline=None,  # thread scheduling makes per-example timing noisy
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def worlds(draw):
    """(domain names, job specs, concurrency) for one example."""
    n_domains = draw(st.integers(min_value=2, max_value=4))
    domains = [f"D{i}" for i in range(n_domains)]
    n_jobs = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    for _ in range(n_jobs):
        src = draw(st.integers(min_value=0, max_value=n_domains - 1))
        dst = draw(
            st.integers(min_value=0, max_value=n_domains - 1).filter(
                lambda d: d != src
            )
        )
        rate = draw(st.sampled_from(RATES))
        start = draw(st.sampled_from((0.0, 1800.0)))
        jobs.append((domains[src], domains[dst], rate, start))
    concurrency = draw(st.integers(min_value=1, max_value=4))
    return domains, jobs, concurrency


def build_world(domains, specs):
    """A testbed plus the ReservationJobs for *specs* (deterministic:
    same inputs produce byte-identical certificates and requests)."""
    tb = build_linear_testbed(list(domains))
    users = {d: tb.add_user(d, f"user-{d}") for d in domains}
    jobs = [
        ReservationJob(
            user=users[src],
            request=tb.make_request(
                source=src, destination=dst, bandwidth_mbps=rate,
                start=start, duration=3600.0,
            ),
        )
        for src, dst, rate, start in specs
    ]
    return tb, jobs


def assert_complete_chains(ledger, outcomes):
    """Every granted outcome stitches into a complete per-hop chain;
    the whole ledger reconciles with zero violations."""
    for outcome in outcomes:
        chain = obs_audit.stitch(ledger, outcome.correlation_id)
        if outcome.granted:
            assert chain.granted
            assert chain.complete_for(outcome.path), (
                f"incomplete chain for {outcome.correlation_id}: "
                f"hops {[h.domain for h in chain.hops]} vs path "
                f"{list(outcome.path)}"
            )
            for hop in chain.hops:
                assert hop.matched_rule, (
                    f"{hop.domain} admitted without a policy rule"
                )
        assert chain.outcome is not None
        assert chain.outcome.granted == outcome.granted
    violations = obs_audit.reconcile_ledger(ledger)
    assert not violations, [v.render() for v in violations]


@given(worlds())
@SETTINGS
def test_serial_chains_complete(world):
    """P1: a serial batch leaves one complete, stitchable chain per
    reservation, and the ledger invariants reconcile clean."""
    domains, specs, _ = world
    tb, jobs = build_world(domains, specs)
    with obs_audit.use_ledger() as ledger:
        outcomes = [
            tb.hop_by_hop.reserve(job.user, job.request) for job in jobs
        ]
    assert_complete_chains(ledger, outcomes)


@given(worlds())
@SETTINGS
def test_concurrent_chains_complete(world):
    """P2: interleaved workers never mix their chains — the contextvar
    pending-check buffer keeps each reservation's provenance intact."""
    domains, specs, concurrency = world
    tb, jobs = build_world(domains, specs)
    with obs_audit.use_ledger() as ledger:
        batch = ConcurrentSignaller(
            tb.hop_by_hop, concurrency=concurrency
        ).run(jobs)
    outcomes = [
        item.outcome for item in batch.scheduled if item.outcome is not None
    ]
    assert_complete_chains(ledger, outcomes)


def chain_shape(chain):
    """A chain's provenance with verdict sources erased: what must be
    identical between a fresh-verification run and a cache-hit run."""
    return [
        (
            record.kind.value,
            record.domain,
            record.granted,
            record.matched_rule,
            tuple(
                (check.kind, check.subject, check.verdict)
                for check in record.checks
                if check.kind != "retry"
            ),
        )
        for record in [*chain.hops, *chain.lifecycle]
    ]


@given(worlds())
@SETTINGS
def test_cached_equals_uncached_provenance(world):
    """P3: verification caches change only each check's ``source``
    (``cache:<kind>`` vs ``fresh``) — never which rules fired, which
    certificates were checked, or any verdict."""
    domains, specs, _ = world
    tb_fresh, jobs_fresh = build_world(domains, specs)
    tb_cached, jobs_cached = build_world(domains, specs)

    with obs_audit.use_ledger() as fresh_ledger:
        fresh = [
            tb_fresh.hop_by_hop.reserve(job.user, job.request)
            for job in jobs_fresh
        ]
    with obs_audit.use_ledger() as cached_ledger:
        with verification_cache.use_caches():
            cached = [
                tb_cached.hop_by_hop.reserve(job.user, job.request)
                for job in jobs_cached
            ]

    for fresh_outcome, cached_outcome in zip(fresh, cached):
        fresh_chain = obs_audit.stitch(
            fresh_ledger, fresh_outcome.correlation_id
        )
        cached_chain = obs_audit.stitch(
            cached_ledger, cached_outcome.correlation_id
        )
        assert chain_shape(fresh_chain) == chain_shape(cached_chain)
