"""Property suite: the verification cache is semantically invisible.

Caching a verification verdict must never change what verifies — only
how fast.  Hypothesis generates random envelopes, RAR hop counts,
delegation chains, revocation points and clock positions, and asserts
that the cached path (primed, so the second call is a **hit**) returns
byte-for-byte the verdict the uncached path computes — including every
failure: a revoked or expired certificate denies from cache exactly as
it denies without one.

The LRU primitive itself is model-checked against a plain dict.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bb.reservations import ReservationRequest
from repro.core.messages import make_bb_rar, make_user_rar
from repro.core.trust import verify_rar
from repro.crypto import cache as verification_cache
from repro.crypto.capability import (
    delegate,
    issue_capability,
    verify_delegation_chain,
)
from repro.crypto.cache import LRUCache, VerificationCaches
from repro.crypto.dn import DN
from repro.crypto.keys import get_scheme
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import CertificateAuthority
from repro.errors import DelegationError

SETTINGS = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Signature cache transparency
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    payload=st.binary(min_size=0, max_size=64),
    tamper=st.booleans(),
)
@SETTINGS
def test_signature_cache_transparent(seed, payload, tamper):
    """P6: cached signature verification equals direct verification for
    random payloads, including tampered ones — and the second call is
    answered from cache with the same verdict."""
    scheme = get_scheme("simulated")
    kp = scheme.generate(random.Random(seed))
    signature = scheme.sign(kp.private, payload)
    if tamper:
        signature = bytes([signature[0] ^ 0x01]) + signature[1:]
    expected = scheme.verify(kp.public, payload, signature)

    caches = VerificationCaches()
    verify = lambda: scheme.verify(kp.public, payload, signature)  # noqa: E731
    first = caches.verify_signature(
        "simulated", kp.public.key_id, payload, signature, verify
    )
    second = caches.verify_signature(
        "simulated", kp.public.key_id, payload, signature, verify
    )
    assert first == second == expected
    stats = caches.stats("signature")
    assert stats.hits == 1 and stats.misses == 1


# ---------------------------------------------------------------------------
# RAR (trust-chain) cache
# ---------------------------------------------------------------------------


def build_rar_world(hops, seed):
    rng = random.Random(seed)
    ca = CertificateAuthority(
        DN.make("Grid", "Root", "CA"), rng=rng, scheme="simulated"
    )
    user_dn = DN.make("Grid", "D0", "Alice")
    user_kp, user_cert = ca.issue_keypair(user_dn, rng=rng)
    bbs = []
    for i in range(hops):
        dn = DN.make("Grid", f"D{i}", f"BB-D{i}")
        kp, cert = ca.issue_keypair(dn, rng=rng)
        bbs.append((dn, kp, cert))
    request = ReservationRequest(
        source_host="h0.D0", destination_host=f"h0.D{hops - 1}",
        source_domain="D0", destination_domain=f"D{hops - 1}",
        rate_mbps=10.0, start=0.0, end=3600.0,
    )
    rar = make_user_rar(
        request=request, source_bb=bbs[0][0], user=user_dn,
        user_key=user_kp.private,
    )
    prev_cert = user_cert
    for i in range(len(bbs) - 1):
        dn, kp, cert = bbs[i]
        rar = make_bb_rar(
            inner=rar, introduced_cert=prev_cert, downstream=bbs[i + 1][0],
            bb=dn, bb_key=kp.private,
        )
        prev_cert = cert
    store = TrustStore(TrustPolicy(max_introduction_depth=32,
                                   require_ca_issued_peers=False))
    store.add_introduced_peer(bbs[-2][2])
    return rar, bbs[-1][0], bbs[-2][2], store, user_dn


@given(
    hops=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**20),
)
@SETTINGS
def test_rar_cache_transparent(hops, seed):
    """P7: a cache-hit ``verify_rar`` returns the verdict the uncached
    path computes (user, depth, path, introduced set)."""
    rar, verifier, peer_cert, store, user_dn = build_rar_world(hops, seed)
    uncached = verify_rar(
        rar, verifier=verifier, peer_certificate=peer_cert, truststore=store
    )
    with verification_cache.use_caches() as caches:
        primed = verify_rar(
            rar, verifier=verifier, peer_certificate=peer_cert,
            truststore=store,
        )
        hit = verify_rar(
            rar, verifier=verifier, peer_certificate=peer_cert,
            truststore=store,
        )
        assert caches.stats("rar").hits >= 1
    for got in (primed, hit):
        assert got.user == uncached.user == user_dn
        assert got.depth == uncached.depth
        assert got.path == uncached.path
        assert [c.fingerprint for c in got.introduced] == [
            c.fingerprint for c in uncached.introduced
        ]


# ---------------------------------------------------------------------------
# Delegation (capability) cache
# ---------------------------------------------------------------------------


def build_chain(length, seed, validity_s=3600.0):
    """A CAS-rooted delegation chain of *length* certificates."""
    rng = random.Random(seed)
    scheme = get_scheme("simulated")
    cas_dn = DN.make("Grid", "ESnet", "CAS")
    cas_kp = scheme.generate(rng)
    holder = issue_capability(
        issuer=cas_dn, issuer_signing_key=cas_kp.private,
        subject=DN.make("Grid", "D0", "Alice"),
        capabilities=["ESnet:member", "ESnet:admin"],
        serial=1, rng=rng, scheme="simulated",
        not_before=0.0, not_after=validity_s,
    )
    chain = [holder.certificate]
    from repro.crypto.capability import ProxyCredential

    for i in range(length - 1):
        delegate_kp = scheme.generate(rng)
        cert = delegate(
            holder,
            delegate_subject=DN.make("Grid", f"D{i + 1}", f"BB-D{i + 1}"),
            delegate_public_key=delegate_kp.public,
            drop_capabilities=["ESnet:admin"] if i == 0 else [],
        )
        chain.append(cert)
        holder = ProxyCredential(certificate=cert, private_key=delegate_kp.private)
    return chain, {cas_dn: cas_kp.public}


@given(
    length=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**20),
)
@SETTINGS
def test_delegation_cache_transparent(length, seed):
    """P8: a cache-hit delegation verification returns the verdict the
    uncached path computes (effective capabilities, restrictions,
    holders)."""
    chain, issuers = build_chain(length, seed)
    uncached = verify_delegation_chain(chain, trusted_issuers=issuers)
    with verification_cache.use_caches() as caches:
        primed = verify_delegation_chain(chain, trusted_issuers=issuers)
        hit = verify_delegation_chain(chain, trusted_issuers=issuers)
        assert caches.stats("delegation").hits >= 1
    for got in (primed, hit):
        assert got.capabilities == uncached.capabilities
        assert got.restrictions == uncached.restrictions
        assert got.holders == uncached.holders


@given(
    length=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**20),
    revoke_at=st.integers(min_value=0, max_value=3),
)
@SETTINGS
def test_revocation_never_admits_from_cache(length, seed, revoke_at):
    """P9: revoking any certificate of a chain AFTER its verdict was
    cached makes the next (cache-hit) verification deny, exactly like
    the uncached path — a hit is never a security downgrade."""
    chain, issuers = build_chain(length, seed)
    revoke_at = min(revoke_at, length - 1)
    revoked = set()
    checker = lambda cert: cert.fingerprint in revoked  # noqa: E731
    with verification_cache.use_caches():
        verify_delegation_chain(
            chain, trusted_issuers=issuers, revocation_checker=checker
        )
        revoked.add(chain[revoke_at].fingerprint)
        verification_cache.notify_revoked(chain[revoke_at].fingerprint)
        with pytest.raises(DelegationError, match="revoked"):
            verify_delegation_chain(
                chain, trusted_issuers=issuers, revocation_checker=checker
            )
    with pytest.raises(DelegationError, match="revoked"):
        verify_delegation_chain(
            chain, trusted_issuers=issuers, revocation_checker=checker
        )


@given(
    length=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**20),
    after_s=st.floats(min_value=1.0, max_value=10_000.0),
)
@SETTINGS
def test_expiry_never_admits_from_cache(length, seed, after_s):
    """P10: a verdict cached while the chain was valid is not served once
    the clock passes ``not_after`` — cached and uncached agree at every
    query time."""
    validity_s = 3600.0
    chain, issuers = build_chain(length, seed, validity_s=validity_s)
    at_time = validity_s + after_s  # strictly past expiry
    with pytest.raises(DelegationError):
        verify_delegation_chain(
            chain, trusted_issuers=issuers, at_time=at_time
        )
    with verification_cache.use_caches():
        verify_delegation_chain(chain, trusted_issuers=issuers, at_time=0.0)
        with pytest.raises(DelegationError):
            verify_delegation_chain(
                chain, trusted_issuers=issuers, at_time=at_time
            )


# ---------------------------------------------------------------------------
# LRU model check
# ---------------------------------------------------------------------------


@given(
    maxsize=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(
            st.sampled_from(("get", "put", "discard")),
            st.integers(min_value=0, max_value=12),
        ),
        max_size=200,
    ),
)
@SETTINGS
def test_lru_matches_model(maxsize, ops):
    """P11: LRUCache behaves like a recency-ordered dict bounded at
    ``maxsize``, and never exceeds the bound."""
    cache = LRUCache(maxsize)
    model: dict[int, int] = {}
    order: list[int] = []  # least-recently-used first
    evicted = 0
    for op, key in ops:
        if op == "put":
            if key in model:
                order.remove(key)
            model[key] = key * 7
            order.append(key)
            cache.put(key, key * 7)
            while len(model) > maxsize:
                oldest = order.pop(0)
                del model[oldest]
                evicted += 1
        elif op == "get":
            expected = model.get(key)
            assert cache.get(key) == expected
            if expected is not None:
                order.remove(key)
                order.append(key)
        else:
            model.pop(key, None)
            if key in order:
                order.remove(key)
            cache.discard(key)
        assert len(cache) == len(model) <= maxsize
    assert cache.evictions == evicted
    assert set(cache.keys()) == set(model)
