"""Property suite: the static lock-order graph agrees with reality.

Hypothesis generates small nested-lock programs — N lock attributes and
a list of ``with a: with b:`` operations — as *source code*.  Each
program is analyzed statically AND executed under the runtime lock
witness, and the two verdicts must coincide exactly:

* the witness observes an inversion **iff** the static graph has the
  corresponding cycle (soundness and completeness of REP120 on programs
  inside the analyzer's supported fragment);
* every observed acquisition order is an edge of the static graph, so
  :meth:`LockWitness.check_against` never reports a discrepancy.

Execution is deliberately single-threaded: both the observed graph and
the static one are order *relations*, so running the operations
sequentially exercises exactly the same mathematics with no scheduling
flakiness.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.concurrency import analyze_sources
from repro.analysis.concurrency.witness import LockWitness, current_witness

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MODULE = "repro.fake.generated"
PATH = "/fake/generated_lock_program.py"


@st.composite
def lock_programs(draw):
    """(n_locks, [(outer, inner), ...]) with outer != inner."""
    n = draw(st.integers(min_value=2, max_value=4))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=8,
        )
    )
    return n, pairs


def render(n, pairs):
    lines = ["import threading", "", "", "class Prog:", "    def __init__(self):"]
    for i in range(n):
        lines.append(f"        self.lock{i} = threading.Lock()")
    for k, (outer, inner) in enumerate(pairs):
        lines += [
            "",
            f"    def op{k}(self):",
            f"        with self.lock{outer}:",
            f"            with self.lock{inner}:",
            "                pass",
        ]
    return "\n".join(lines) + "\n"


def has_cycle(n, pairs):
    """Reference verdict: cycle in the pair digraph (3-colour DFS)."""
    adj = {i: set() for i in range(n)}
    for outer, inner in pairs:
        adj[outer].add(inner)
    state = dict.fromkeys(range(n), 0)  # 0 new, 1 in stack, 2 done

    def dfs(v):
        state[v] = 1
        for w in adj[v]:
            if state[w] == 1 or (state[w] == 0 and dfs(w)):
                return True
        state[v] = 2
        return False

    return any(state[v] == 0 and dfs(v) for v in range(n))


@SETTINGS
@given(lock_programs())
def test_witness_inversions_iff_static_cycles(program):
    n, pairs = program
    source = render(n, pairs)
    report = analyze_sources([(MODULE, PATH, source)])
    expected = has_cycle(n, pairs)

    # Static side: cycle iff the reference digraph has one, and every
    # cycle is also a REP120 finding.
    assert bool(report.graph.cycles()) == expected
    assert any(f.rule == "REP120" for f in report.findings) == expected

    # Runtime side: execute the same program under a fresh witness.
    active = current_witness()
    if active is not None:
        active.uninstall()
    try:
        witness = LockWitness()
        namespace = {}
        with witness:
            exec(compile(source, PATH, "exec"), namespace)
            prog = namespace["Prog"]()
            for k in range(len(pairs)):
                getattr(prog, f"op{k}")()
    finally:
        if active is not None:
            active.install()

    assert bool(witness.inversions()) == expected

    # The witness maps every lock back to a static node and finds no
    # order the static graph failed to model.
    mapping = witness.map_to_static(report.graph)
    assert len(set(mapping.values())) == len({i for p in pairs for i in p})
    assert witness.check_against(report.graph) == []


@SETTINGS
@given(lock_programs())
def test_observed_edges_match_static_edges_exactly(program):
    """On this fragment the static graph is not just an over-
    approximation: executed edges and static edges are the same set."""
    n, pairs = program
    source = render(n, pairs)
    report = analyze_sources([(MODULE, PATH, source)])

    active = current_witness()
    if active is not None:
        active.uninstall()
    try:
        witness = LockWitness()
        namespace = {}
        with witness:
            exec(compile(source, PATH, "exec"), namespace)
            prog = namespace["Prog"]()
            for k in range(len(pairs)):
                getattr(prog, f"op{k}")()
    finally:
        if active is not None:
            active.install()

    mapping = witness.map_to_static(report.graph)
    observed = {
        (mapping[src], mapping[dst])
        for (src, dst) in witness.observed_edges()
    }
    static = set(report.graph.edges())
    assert observed == {(f"{MODULE}.Prog.lock{o}", f"{MODULE}.Prog.lock{i}")
                       for o, i in pairs}
    assert observed == static
