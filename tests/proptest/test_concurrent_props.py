"""Property suite: concurrent signalling is serial-equivalent.

Hypothesis drives random topologies, random reservation batches and
random worker counts through :class:`repro.core.concurrent.ConcurrentSignaller`
and checks the contract the engine documents: grants/denials, capacity
ledgers and envelope chains are **identical** to a serial run of the
same jobs, and no interleaving can oversubscribe a link.

Two structurally identical testbeds (same names, same seed — all
randomness in testbed construction is seeded) host the serial and
concurrent runs, so the comparison covers the complete admission state,
not just the boolean outcomes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.concurrent import ConcurrentSignaller, ReservationJob, run_serial
from repro.core.testbed import build_linear_testbed
from repro.core.tracing import trace_request_path

#: Small but contended worlds: a 155 Mb/s inter-domain link and rates up
#: to 100 Mb/s force admission denials in most generated batches.
RATES = (10.0, 40.0, 60.0, 100.0)

SETTINGS = settings(
    max_examples=200,
    deadline=None,  # thread scheduling makes per-example timing noisy
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def worlds(draw):
    """(domain names, job specs, concurrency) for one example."""
    n_domains = draw(st.integers(min_value=2, max_value=4))
    domains = [f"D{i}" for i in range(n_domains)]
    n_jobs = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    for _ in range(n_jobs):
        src = draw(st.integers(min_value=0, max_value=n_domains - 1))
        dst = draw(
            st.integers(min_value=0, max_value=n_domains - 1).filter(
                lambda d: d != src
            )
        )
        rate = draw(st.sampled_from(RATES))
        start = draw(st.sampled_from((0.0, 1800.0)))
        jobs.append((domains[src], domains[dst], rate, start))
    concurrency = draw(st.integers(min_value=1, max_value=4))
    return domains, jobs, concurrency


def build_world(domains, specs):
    """A testbed plus the ReservationJobs for *specs* (deterministic:
    same inputs produce byte-identical certificates and requests)."""
    tb = build_linear_testbed(list(domains))
    users = {d: tb.add_user(d, f"user-{d}") for d in domains}
    jobs = [
        ReservationJob(
            user=users[src],
            request=tb.make_request(
                source=src, destination=dst, bandwidth_mbps=rate,
                start=start, duration=3600.0,
            ),
        )
        for src, dst, rate, start in specs
    ]
    return tb, jobs


def ledger(tb):
    """Every domain's admission bookings as a canonical comparable set."""
    state = {}
    for name, broker in tb.brokers.items():
        rows = []
        for resource in broker.admission.resources():
            for b in broker.admission.schedule(resource).bookings:
                rows.append((resource, b.start, b.end, b.rate_mbps))
        state[name] = sorted(rows)
    return state


@given(worlds())
@SETTINGS
def test_decisions_match_serial(world):
    """P1: the concurrent engine admits and denies exactly the
    reservations a serial loop would, in submission order."""
    domains, specs, concurrency = world
    tb_serial, jobs_serial = build_world(domains, specs)
    tb_conc, jobs_conc = build_world(domains, specs)

    serial = run_serial(tb_serial.hop_by_hop, jobs_serial)
    batch = ConcurrentSignaller(
        tb_conc.hop_by_hop, concurrency=concurrency
    ).run(jobs_conc)

    assert [s.granted for s in batch.scheduled] == [
        s.granted for s in serial.scheduled
    ]
    for mine, theirs in zip(batch.scheduled, serial.scheduled):
        if mine.outcome is not None and theirs.outcome is not None:
            assert mine.outcome.denial_domain == theirs.outcome.denial_domain
            assert mine.outcome.path == theirs.outcome.path


@given(worlds())
@SETTINGS
def test_ledgers_match_serial(world):
    """P2: after the batch, every domain's capacity ledger (the booked
    intervals and rates) is identical to the serial run's."""
    domains, specs, concurrency = world
    tb_serial, jobs_serial = build_world(domains, specs)
    tb_conc, jobs_conc = build_world(domains, specs)

    run_serial(tb_serial.hop_by_hop, jobs_serial)
    ConcurrentSignaller(
        tb_conc.hop_by_hop, concurrency=concurrency
    ).run(jobs_conc)

    assert ledger(tb_conc) == ledger(tb_serial)


@given(worlds())
@SETTINGS
def test_no_oversubscription(world):
    """P3: no interleaving books past a link's capacity — the peak load
    of every schedule stays within its configured Mb/s."""
    domains, specs, concurrency = world
    tb, jobs = build_world(domains, specs)
    ConcurrentSignaller(tb.hop_by_hop, concurrency=concurrency).run(jobs)
    for broker in tb.brokers.values():
        for resource in broker.admission.resources():
            schedule = broker.admission.schedule(resource)
            peak = schedule.peak_load(0.0, 24 * 3600.0)
            assert peak <= schedule.capacity_mbps + 1e-9, (
                f"{resource} oversubscribed: {peak} > {schedule.capacity_mbps}"
            )


@given(worlds())
@SETTINGS
def test_handles_complete_and_unique(world):
    """P4: every grant carries one live reservation handle per domain on
    its path, and no handle is shared between reservations."""
    domains, specs, concurrency = world
    tb, jobs = build_world(domains, specs)
    batch = ConcurrentSignaller(
        tb.hop_by_hop, concurrency=concurrency
    ).run(jobs)
    seen = set()
    for item in batch.scheduled:
        if not item.granted or item.outcome is None:
            continue
        outcome = item.outcome
        assert set(outcome.handles) == set(outcome.path)
        for domain, handle in outcome.handles.items():
            assert (domain, handle) not in seen
            seen.add((domain, handle))
            assert handle in tb.brokers[domain].reservations


@given(worlds())
@SETTINGS
def test_envelope_chains_consistent(world):
    """P5: the nested-signature envelope each destination verified names
    the traversed path in order (user first, then each BB), regardless
    of which worker carried the request."""
    domains, specs, concurrency = world
    tb, jobs = build_world(domains, specs)
    batch = ConcurrentSignaller(
        tb.hop_by_hop, concurrency=concurrency
    ).run(jobs)
    for item in batch.scheduled:
        if not item.granted or item.outcome is None:
            continue
        outcome = item.outcome
        assert outcome.final_rar is not None
        trace = trace_request_path(outcome.final_rar)
        assert trace.consistent
        assert trace.signers[0] == item.job.user.dn
        bb_signers = tuple(str(dn) for dn in trace.signers[1:])
        expected = tuple(str(tb.brokers[d].dn) for d in outcome.path[:-1])
        assert bb_signers == expected
