"""Property suite: a ``.tsrec`` replay is the live run's twin.

Hypothesis generates random fleet histories — admission grants and
denials, backlog and utilization gauges, breaker states — samples them
live through the flight recorder into an in-memory recording, then
replays the recording and asserts the offline pass reproduces the live
pass **exactly**: identical health verdicts for every domain at every
frame, and an identical alert-transition stream.  This is the
determinism contract REP113 (no clock reads in telemetry code) exists
to protect.
"""

import io

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    AlertEngine,
    FlightRecorder,
    Recording,
    RecordingWriter,
    default_rules,
    evaluate_fleet,
)

DOMAINS = ("A", "B", "C")

step_strategy = st.fixed_dictionaries({
    domain: st.fixed_dictionaries({
        "granted": st.integers(min_value=0, max_value=3),
        "denied": st.integers(min_value=0, max_value=3),
        "backlog": st.floats(min_value=0.0, max_value=4.0,
                             allow_nan=False, allow_infinity=False),
        "utilization": st.floats(min_value=0.0, max_value=1.2,
                                 allow_nan=False, allow_infinity=False),
    })
    for domain in DOMAINS
})

history_strategy = st.lists(step_strategy, min_size=2, max_size=12)
breaker_strategy = st.lists(
    st.sampled_from([0.0, 1.0, 2.0]), min_size=2, max_size=12
)

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _observe(registry, engine, store, t):
    """One frame's worth of live observations, as plain data."""
    fleet = evaluate_fleet(store, DOMAINS, now=t)
    transitions = engine.step(store, t)
    return (
        {d: v.to_dict() for d, v in fleet.items()},
        [tr.to_dict() for tr in transitions],
    )


@given(history=history_strategy, breakers=breaker_strategy)
@SETTINGS
def test_replay_reproduces_live_verdicts_and_alerts(history, breakers):
    registry = MetricsRegistry()
    admissions = registry.counter("admissions_total")
    backlog = registry.gauge("work_queue_backlog_s")
    utilization = registry.gauge("domain_utilization")
    breaker = registry.gauge("breaker_state")

    stream = io.StringIO()
    writer = RecordingWriter(stream, meta={"campaign": "prop"})
    recorder = FlightRecorder(writer=writer)
    live_engine = AlertEngine(default_rules())
    live: list = []

    for index, step in enumerate(history):
        t = float(index + 1)
        for domain, load in step.items():
            for _ in range(load["granted"]):
                admissions.inc(domain=domain, granted="true")
            for _ in range(load["denied"]):
                admissions.inc(domain=domain, granted="false")
            backlog.set(load["backlog"], domain=domain)
            utilization.set(load["utilization"], domain=domain)
        breaker.set(breakers[index % len(breakers)], link="A|B")
        recorder.sample(t, registry=registry)
        live.append(_observe(registry, live_engine, recorder.store, t))
    writer.close()

    recording = Recording.parse(stream.getvalue().splitlines())
    assert len(recording.frames) == len(history)

    replay_engine = AlertEngine(default_rules())
    replayed = [
        _observe(registry, replay_engine, store, t)
        for t, store in recording.replay()
    ]

    assert replayed == live
