"""Tests for the RSVP/IntServ per-flow baseline."""

import pytest

from repro.baselines.rsvp import RSVPSimulator
from repro.errors import CapacityExceededError, SignallingError
from repro.net.topology import linear_domain_chain


@pytest.fixture()
def sim():
    topo = linear_domain_chain(
        ["A", "B", "C"], hosts_per_domain=2, inter_capacity_mbps=100.0
    )
    return RSVPSimulator(topo)


class TestPathResv:
    def test_path_installs_state_in_every_router(self, sim):
        route = sim.path("f1", "h0.A", "h0.C", 10.0)
        routers = [n for n in route if sim.topology.node(n).is_router]
        for r in routers:
            assert "f1" in sim.routers[r].path
        # 7 routers on the A-B-C chain route.
        assert len(routers) == 7

    def test_resv_installs_reservation_state(self, sim):
        sim.reserve("f1", "h0.A", "h0.C", 10.0)
        assert sim.total_state() == 14  # path + resv in 7 routers
        assert sim.max_router_state() == 2

    def test_duplicate_path_rejected(self, sim):
        sim.path("f1", "h0.A", "h0.C", 10.0)
        with pytest.raises(SignallingError):
            sim.path("f1", "h0.A", "h0.C", 10.0)

    def test_resv_without_path_rejected(self, sim):
        with pytest.raises(SignallingError):
            sim.resv("ghost")

    def test_double_resv_rejected(self, sim):
        sim.reserve("f1", "h0.A", "h0.C", 10.0)
        with pytest.raises(SignallingError):
            sim.resv("f1")

    def test_admission_control(self, sim):
        sim.reserve("f1", "h0.A", "h0.C", 60.0)
        with pytest.raises(CapacityExceededError):
            sim.reserve("f2", "h1.A", "h1.C", 60.0)
        # Failure leaves no residual state or load.
        assert sim.link_load("edge.A.right", "edge.B.left") == 60.0
        assert not any("f2" in s.resv for s in sim.routers.values())

    def test_per_flow_state_grows_linearly(self, sim):
        for i in range(10):
            sim.reserve(f"f{i}", "h0.A", "h0.C", 1.0)
        assert sim.max_router_state() == 20  # 10 flows x (path + resv)

    def test_invalid_rate(self, sim):
        with pytest.raises(SignallingError):
            sim.path("f1", "h0.A", "h0.C", 0.0)


class TestSoftState:
    def test_refresh_keeps_state_alive(self, sim):
        sim.reserve("f1", "h0.A", "h0.C", 10.0)
        sim.advance(300.0, refresh=True)
        assert sim.total_state() == 14

    def test_unrefreshed_state_expires(self, sim):
        sim.reserve("f1", "h0.A", "h0.C", 10.0)
        sim.advance(100.0, refresh=False)  # beyond the 90 s lifetime
        assert sim.total_state() == 0
        assert sim.link_load("edge.A.right", "edge.B.left") == 0.0

    def test_refresh_messages_counted(self, sim):
        sim.reserve("f1", "h0.A", "h0.C", 10.0)
        before = sim.messages
        sim.advance(60.0, refresh=True)  # two 30 s refresh rounds
        # 7 routers x 2 (path+resv) x 2 rounds.
        assert sim.messages - before == 28

    def test_teardown(self, sim):
        sim.reserve("f1", "h0.A", "h0.C", 10.0)
        sim.teardown("f1")
        assert sim.total_state() == 0
        assert sim.link_load("edge.A.right", "edge.B.left") == 0.0
        with pytest.raises(SignallingError):
            sim.teardown("f1")


class TestScalingComparison:
    def test_rsvp_state_scales_with_flows_bb_does_not(self):
        """The §2 critique, measured: RSVP keeps per-flow state in every
        router; the BB/DiffServ approach keeps per-reservation state only
        in the brokers (constant router state)."""
        from repro.core.testbed import build_linear_testbed

        topo = linear_domain_chain(["A", "B", "C"], inter_capacity_mbps=1000.0)
        rsvp = RSVPSimulator(topo)
        for i in range(50):
            rsvp.reserve(f"f{i}", "h0.A", "h0.C", 1.0)
        assert rsvp.max_router_state() == 100

        testbed = build_linear_testbed(["A", "B", "C"])
        alice = testbed.add_user("A", "Alice")
        for _ in range(50):
            assert testbed.reserve(
                alice, source="A", destination="C", bandwidth_mbps=1.0
            ).granted
        # Router-level state: one aggregate policer per ingress, regardless
        # of flow count (nothing installed until claim; even claimed flows
        # add only source-edge classifiers).
        assert len(testbed.network._aggregate_policers) == 0
        # Broker state exists, but it lives off the fast path.
        assert len(testbed.brokers["B"].reservations.all()) == 50
