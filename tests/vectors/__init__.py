"""Golden wire-vector corpus (``*.bin``) plus its deterministic builder.

The binaries are committed; ``python tests/vectors/build_vectors.py``
regenerates them bit-for-bit (seeded RNG, simulated signature scheme).
``tests/differential/test_golden_vectors.py`` asserts that both codecs
parse every vector identically and re-encode it byte-for-byte — any
accidental wire-format change fails against this corpus.
"""
