"""Deterministic builder for the golden wire-vector corpus.

Run ``python tests/vectors/build_vectors.py`` (with ``src`` on
``PYTHONPATH``) to regenerate every ``tests/vectors/*.bin``
bit-for-bit.  Everything is seeded and uses the simulated signature
scheme (deterministic keygen and signatures), so the corpus never
depends on the machine that built it.

The regression tests do not merely read the files — they rebuild the
objects through this module and assert the fresh encoding still equals
the committed bytes, so an encoder change cannot slip through by
regenerating the corpus without noticing.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.bb.reservations import ReservationRequest
from repro.core.codec import to_wire
from repro.core.messages import (
    make_approval,
    make_bb_rar,
    make_denial,
    make_user_rar,
)
from repro.crypto.dn import DN
from repro.crypto.x509 import CertificateAuthority
from repro.net.packet import DSCP

VECTOR_DIR = Path(__file__).resolve().parent

SEED = 2001
HOPS = 3


def _yard():
    """One CA, one user, HOPS+1 BB identities — fully seeded."""
    ca = CertificateAuthority(
        DN.make("Grid", "V", "CA-V"),
        rng=random.Random(SEED),
        scheme="simulated",
    )
    user_keys, user_cert = ca.issue_keypair(DN.make("Grid", "V", "Vera"))
    bbs = [
        ca.issue_keypair(DN.make("Grid", f"D{i}", f"BB-{i}"))
        for i in range(HOPS + 1)
    ]
    return user_keys, user_cert, bbs


def _request() -> ReservationRequest:
    return ReservationRequest(
        source_host="h0.D0",
        destination_host=f"h0.D{HOPS}",
        source_domain="D0",
        destination_domain=f"D{HOPS}",
        rate_mbps=25.0,
        start=0.0,
        end=3600.0,
    )


def _chain(append: bool):
    user_keys, user_cert, bbs = _yard()
    rar = make_user_rar(
        request=_request(),
        source_bb=bbs[0][1].subject,
        user=user_cert.subject,
        user_key=user_keys.private,
        deadline=30.0,
        traceparent="00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
    )
    previous = user_cert
    for hop in range(HOPS):
        keys, cert = bbs[hop]
        rar = make_bb_rar(
            inner=rar,
            introduced_cert=previous,
            downstream=bbs[hop + 1][1].subject,
            bb=cert.subject,
            bb_key=keys.private,
            append=append,
        )
        previous = cert
    return rar


def _approvals():
    _, _, bbs = _yard()
    approval = None
    for index, (keys, cert) in enumerate(reversed(bbs)):
        approval = make_approval(
            handle=f"RES-D{HOPS - index}-000001",
            domain=f"D{HOPS - index}",
            inner=approval,
            bb=cert.subject,
            bb_key=keys.private,
        )
    return approval


def _denial():
    _, _, bbs = _yard()
    keys, cert = bbs[1]
    return make_denial(
        domain="D1",
        reason="policy denied: Return DENY",
        bb=cert.subject,
        bb_key=keys.private,
    )


def _scalars():
    return [
        None,
        True,
        False,
        0,
        -1,
        2 ** 80,
        -(2 ** 80),
        0.0,
        -1.5,
        float("inf"),
        float("-inf"),
        "",
        "policy",
        "Grüße-网络-QoS",
        b"",
        b"\x00\xff" * 8,
        DSCP.EF,
        DSCP.AF41,
        {"nested": [1, [2, [3, {"deep": b"bytes"}]]]},
    ]


#: name -> zero-argument object builder.  The wire bytes of each object
#: are the committed ``<name>.bin``.
VECTORS = {
    "scalars": _scalars,
    "request": _request,
    "rar_user": lambda: _chain(append=True).get("inner_rar"),
    "rar_nested_3hop": lambda: _chain(append=False),
    "rar_append_3hop": lambda: _chain(append=True),
    "approval_chain": _approvals,
    "denial": _denial,
}


def build_all() -> dict[str, bytes]:
    """Fresh wire bytes for every vector, by name."""
    out = {}
    for name, builder in VECTORS.items():
        value = builder()
        # rar_user digs the innermost user layer out of the append chain
        # (walking one link) so the corpus covers a chain *member* too.
        while name == "rar_user" and value.get("inner_rar") is not None:
            value = value.get("inner_rar")
        out[name] = to_wire(value)
    return out


def main(argv: list[str] | None = None) -> int:
    """Regenerate the corpus, or with ``--check`` verify the committed
    files match a fresh deterministic rebuild (exit 1 on any drift,
    missing vector, or stray ``.bin``)."""
    import sys

    args = sys.argv[1:] if argv is None else argv
    fresh = build_all()
    if "--check" in args:
        committed = {p.stem: p.read_bytes() for p in VECTOR_DIR.glob("*.bin")}
        drift = sorted(
            set(fresh) ^ set(committed)
        ) + sorted(
            name for name in set(fresh) & set(committed)
            if fresh[name] != committed[name]
        )
        for name in drift:
            print(f"vector out of sync: {name}")
        if drift:
            print("regenerate with: PYTHONPATH=src python "
                  "tests/vectors/build_vectors.py")
            return 1
        print(f"{len(fresh)} vectors in sync")
        return 0
    for name, wire in fresh.items():
        path = VECTOR_DIR / f"{name}.bin"
        path.write_bytes(wire)
        print(f"wrote {path.name}: {len(wire)} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
