"""The concurrency pass on small synthetic programs.

Each fixture isolates one behaviour the analyzer promises:
a real A->B / B->A deadlock (REP120), a re-entrant RLock chain that must
NOT be a false positive, a plain-Lock self-deadlock, an unguarded write
to inferred guarded state (REP121), a noqa'd intentional lock-free read,
an acquisition reached only through the call graph, and constructor
lock-sharing folded by the alias union-find.
"""

import textwrap

from repro.analysis.concurrency import analyze_sources
from repro.analysis.concurrency.guarded import Baseline


def _analyze(source, *, module="repro.fake.prog", baseline=None, **kwargs):
    src = textwrap.dedent(source)
    return analyze_sources(
        [(module, f"/fake/{module.rsplit('.', 1)[-1]}.py", src)],
        baseline=baseline, **kwargs,
    )


DEADLOCK = """
    import threading

    class A:
        def __init__(self):
            self._lock = threading.Lock()

    class B:
        def __init__(self):
            self._lock = threading.Lock()

    class System:
        def __init__(self):
            self.a = A()
            self.b = B()

        def forward(self):
            with self.a._lock:
                with self.b._lock:
                    pass

        def backward(self):
            with self.b._lock:
                with self.a._lock:
                    pass
"""


class TestLockOrderCycles:
    def test_opposite_nesting_is_a_cycle(self):
        report = _analyze(DEADLOCK)
        cycles = report.graph.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {
            "repro.fake.prog.A._lock", "repro.fake.prog.B._lock",
        }
        assert [f.rule for f in report.findings] == ["REP120"]
        assert "potential deadlock" in report.findings[0].message
        # Both directions are reported as witnesses of the one cycle.
        assert "forward" in report.findings[0].message
        assert "backward" in report.findings[0].message

    def test_one_direction_only_is_clean(self):
        one_way = DEADLOCK[: DEADLOCK.index("    def backward")]
        report = _analyze(one_way)
        assert report.graph.cycles() == []
        assert report.clean

    def test_rlock_reentry_is_not_a_cycle(self):
        report = _analyze("""
            import threading

            class R:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """)
        assert report.clean
        assert report.graph.cycles() == []
        # The self-acquisition is recorded as a legal re-entry instead.
        assert "repro.fake.prog.R._lock" in report.graph.reentries

    def test_plain_lock_reentry_is_self_deadlock(self):
        report = _analyze("""
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """)
        assert [f.rule for f in report.findings] == ["REP120"]
        assert "self-deadlock" in report.findings[0].message
        assert report.graph.cycles() == [("repro.fake.prog.S._lock",)]

    def test_call_graph_indirect_acquisition(self):
        report = _analyze("""
            import threading

            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass

            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.inner = Inner()

                def op(self):
                    with self._lock:
                        self.helper()

                def helper(self):
                    self.inner.poke()
        """)
        assert report.graph.has_edge(
            "repro.fake.prog.Outer._lock", "repro.fake.prog.Inner._lock"
        )
        witnesses = report.graph.edges()[
            ("repro.fake.prog.Outer._lock", "repro.fake.prog.Inner._lock")
        ]
        # The edge's witness names the call chain through the helper.
        assert any("helper" in " ".join(w.chain) for w in witnesses)
        assert report.graph.cycles() == []

    def test_depth_bound_cuts_long_chains(self):
        hops = "\n".join(
            f"""
                def hop{i}(self):
                    self.hop{i + 1}()"""
            for i in range(12)
        )
        report = _analyze(f"""
            import threading

            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass

            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.inner = Inner()

                def op(self):
                    with self._lock:
                        self.hop0()
            {hops}

                def hop12(self):
                    self.inner.poke()
        """, max_depth=4)
        assert not report.graph.has_edge(
            "repro.fake.prog.Outer._lock", "repro.fake.prog.Inner._lock"
        )

    def test_constructor_shared_lock_is_unified(self):
        report = _analyze("""
            import threading

            class Shared:
                def __init__(self, lock: threading.RLock):
                    self._lock = lock

                def touch(self):
                    with self._lock:
                        pass

            class Owner:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.shared = Shared(self._lock)

                def op(self):
                    with self._lock:
                        self.shared.touch()
        """)
        canon = report.graph.aliases.find
        assert (canon("repro.fake.prog.Shared._lock")
                == canon("repro.fake.prog.Owner._lock"))
        # One runtime lock: re-entry, not an ordering edge, not a cycle.
        assert report.clean
        assert not report.graph.has_edge(
            "repro.fake.prog.Owner._lock", "repro.fake.prog.Shared._lock"
        )
        assert "repro.fake.prog.Owner._lock" in report.graph.reentries


GUARDED = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def bump(self):
            with self._lock:
                self.count += 1

        def unbump(self):
            with self._lock:
                self.count -= 1

        def sneak(self):
            self.count = 5
"""


class TestGuardedState:
    def test_unguarded_write_is_flagged(self):
        report = _analyze(GUARDED)
        assert [f.rule for f in report.findings] == ["REP121"]
        finding = report.findings[0]
        assert "Counter.count" in finding.message
        assert "written" in finding.message
        assert report.rep121_fingerprints == [
            "repro.fake.prog.Counter.count:"
            "repro.fake.prog.Counter.sneak:rebind"
        ]

    def test_noqa_suppresses_lock_free_read(self):
        report = _analyze(
            GUARDED
            + "\n        def rebump(self):\n"
            + "            with self._lock:\n"
            + "                self.count += 1\n"
            + "\n        def peek(self):\n"
            + "            return self.count  "
            + "# repro: noqa[REP121] monitoring read\n"
        )
        # The write is still flagged; the annotated read is not.
        assert [f.rule for f in report.findings] == ["REP121"]
        assert "written" in report.findings[0].message
        assert report.suppressed == 1

    def test_baseline_filters_known_findings(self):
        baseline = Baseline({
            "REP121": [
                "repro.fake.prog.Counter.count:"
                "repro.fake.prog.Counter.sneak:rebind"
            ],
        })
        report = _analyze(GUARDED, baseline=baseline)
        assert report.clean
        assert report.baselined == 1
        # The fingerprint is still reported for --write-baseline.
        assert report.rep121_fingerprints

    def test_init_accesses_are_exempt(self):
        report = _analyze("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = 0
                    self.state = 1

                def a(self):
                    with self._lock:
                        self.state += 1

                def b(self):
                    with self._lock:
                        self.state += 1
        """)
        assert report.clean

    def test_read_only_attribute_is_not_guarded_state(self):
        report = _analyze("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.config = "x"

                def a(self):
                    with self._lock:
                        print(self.config)

                def b(self):
                    with self._lock:
                        print(self.config)

                def lockfree(self):
                    return self.config
        """)
        # Never written after __init__: cannot race, no finding.
        assert report.clean

    def test_private_method_inherits_callers_lock(self):
        report = _analyze("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = 0

                def a(self):
                    with self._lock:
                        self._sink()

                def b(self):
                    with self._lock:
                        self._sink()

                def _sink(self):
                    self.state += 1
        """)
        # _sink is only ever called under the lock: its access counts as
        # guarded, so there is nothing to report.
        assert report.clean

    def test_baseline_can_accept_cycles(self):
        report = _analyze(DEADLOCK)
        key = report.cycle_keys[0]
        baselined = _analyze(DEADLOCK, baseline=Baseline({"REP120": [key]}))
        assert baselined.clean
        assert baselined.baselined == 1


class TestRuleSelection:
    def test_rules_filter(self):
        both = _analyze(DEADLOCK + GUARDED.replace("class Counter",
                                                   "class Counter"))
        assert {f.rule for f in both.findings} == {"REP120", "REP121"}
        only_cycles = _analyze(DEADLOCK + GUARDED, rules=("REP120",))
        assert {f.rule for f in only_cycles.findings} == {"REP120"}
        only_guarded = _analyze(DEADLOCK + GUARDED, rules=("REP121",))
        assert {f.rule for f in only_guarded.findings} == {"REP121"}
