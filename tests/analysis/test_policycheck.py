"""The policy static verifier: clean on the paper's policies, loud on
contradictory / unreachable / non-exhaustive / always-deny trees."""

import json
from pathlib import Path

import pytest

from repro.analysis.policycheck import (
    policy_findings_to_json,
    verify_policy_source,
)
from repro.bb.policyserver import PolicyServer
from repro.errors import PolicySyntaxError
from repro.policy.engine import PolicyEngine
from repro.policy.language import parse_policy

POLICY_DIR = Path(__file__).resolve().parents[2] / "examples" / "policies"


def P(*lines):
    """Join policy lines (the syntax is indentation-significant)."""
    return "\n".join(lines) + "\n"


def kinds(findings):
    return [f.kind for f in findings]


class TestPaperPoliciesAreClean:
    """The verifier must not cry wolf on the policies from the paper."""

    @pytest.mark.parametrize(
        "name",
        ["figure1", "figure6_a", "figure6_b", "figure6_c"],
    )
    def test_figure_policy_has_no_findings(self, name):
        source = (POLICY_DIR / f"{name}.policy").read_text()
        assert verify_policy_source(source, name=name) == []


class TestContradiction:
    def test_interval_contradiction_across_nesting(self):
        findings = verify_policy_source(P(
            "If BW > 1Gb/s",
            "    If BW <= 10Mb/s",
            "        Return GRANT",
            "Return DENY",
        ))
        assert "contradiction" in kinds(findings)
        assert "BW" in findings[0].message

    def test_self_contradictory_conjunction(self):
        findings = verify_policy_source(P(
            "If BW > 10Mb/s and BW < 5Mb/s",
            "    Return GRANT",
            "Return DENY",
        ))
        assert "contradiction" in kinds(findings)

    def test_string_equality_contradiction(self):
        findings = verify_policy_source(P(
            "If User = Mary",
            "    If User != Mary",
            "        Return GRANT",
            "Return DENY",
        ))
        assert "contradiction" in kinds(findings)

    def test_group_membership_is_not_exclusive(self):
        # Group is set-valued: membership in one group never precludes
        # membership in another, so this must NOT be a contradiction.
        findings = verify_policy_source(P(
            "If Group = Atlas",
            "    If Group = Physics",
            "        Return GRANT",
            "Return DENY",
        ))
        assert findings == []

    def test_group_membership_denied_then_required(self):
        findings = verify_policy_source(P(
            "If Group != Atlas",
            "    If Group = Atlas",
            "        Return GRANT",
            "Return DENY",
        ))
        assert "contradiction" in kinds(findings)

    def test_or_with_single_viable_arm_refines(self):
        # Under BW <= 5Mb/s the first disjunct is impossible, so the Or
        # pins User = Alice — making the inner User != Alice dead.
        findings = verify_policy_source(P(
            "If BW <= 5Mb/s",
            "    If BW > 10Mb/s or User = Alice",
            "        If User != Alice",
            "            Return GRANT",
            "Return DENY",
        ))
        assert "contradiction" in kinds(findings)


class TestUnreachable:
    def test_statement_after_unconditional_return(self):
        findings = verify_policy_source(P(
            "Return DENY",
            "If BW < 10Mb/s",
            "    Return GRANT",
        ))
        assert "unreachable" in kinds(findings)

    def test_else_arm_dead_when_condition_always_true(self):
        findings = verify_policy_source(P(
            "If BW > 10Mb/s",
            "    If BW > 5Mb/s",
            "        Return GRANT",
            "    Else Return DENY",
            "Return DENY",
        ))
        assert "unreachable" in kinds(findings)
        assert "Else arm is dead" in findings[0].message


class TestNonExhaustive:
    def test_missing_final_return(self):
        findings = verify_policy_source(P(
            "If BW < 10Mb/s",
            "    Return GRANT",
        ))
        assert kinds(findings) == ["non-exhaustive"]

    def test_if_else_with_both_returns_is_exhaustive(self):
        findings = verify_policy_source(P(
            "If BW < 10Mb/s",
            "    Return GRANT",
            "Else Return DENY",
        ))
        assert findings == []


class TestAlwaysDeny:
    def test_subtree_with_only_deny_verdicts(self):
        findings = verify_policy_source(P(
            "If Time > 5pm",
            "    If BW > 100Mb/s",
            "        Return DENY",
            "    Return DENY",
            "Return DENY",
        ))
        assert kinds(findings).count("always-deny") >= 1

    def test_mixed_verdicts_not_flagged(self):
        findings = verify_policy_source(P(
            "If Time > 5pm",
            "    If BW > 100Mb/s",
            "        Return DENY",
            "    Else Return GRANT",
            "Return DENY",
        ))
        assert findings == []


class TestOutputAndErrors:
    def test_findings_serialize_to_json(self):
        findings = verify_policy_source(P(
            "If BW < 1Mb/s",
            "    Return GRANT",
        ))
        doc = json.loads(policy_findings_to_json(findings))
        assert doc["count"] == len(findings) == 1
        assert doc["findings"][0]["kind"] == "non-exhaustive"
        assert doc["findings"][0]["severity"] == "warning"

    def test_parse_failure_propagates(self):
        with pytest.raises(PolicySyntaxError):
            verify_policy_source("If BW <<< oops\n")


class TestPolicyServerIntegration:
    def test_loading_defective_policy_records_findings(self, caplog):
        engine = PolicyEngine(
            parse_policy(P(
                "If BW > 1Gb/s",
                "    If BW <= 10Mb/s",
                "        Return GRANT",
                "Return DENY",
            )),
            name="defective",
        )
        with caplog.at_level("WARNING", logger="repro.bb.policyserver"):
            server = PolicyServer("A", engine)
        assert kinds(server.policy_findings) == ["contradiction"]
        assert any("policy verifier" in r.message for r in caplog.records)

    def test_clean_policy_loads_silently(self):
        engine = PolicyEngine(
            parse_policy((POLICY_DIR / "figure1.policy").read_text()),
            name="figure1",
        )
        server = PolicyServer("LBNL", engine)
        assert server.policy_findings == []

    def test_empty_engine_not_checked(self):
        # The Akenti adapter wraps PolicyEngine([]); a pure-default engine
        # must not be reported as non-exhaustive.
        server = PolicyServer("A", PolicyEngine([], name="empty"))
        assert server.policy_findings == []
