"""The concurrency pass over the real ``repro`` package.

This is the acceptance gate the CI job enforces: the committed tree has
no unsuppressed lock-order cycles and no unbaselined guarded-state
violations, and the graph contains the load-bearing edges we know the
code has (so a silently broken extractor cannot pass by finding
nothing).
"""

import threading

import pytest

from repro.analysis.concurrency import analyze_paths
from repro.analysis.concurrency.guarded import default_baseline_path


@pytest.fixture(scope="module")
def report():
    return analyze_paths()


class TestRepoIsClean:
    def test_no_findings_with_committed_baseline(self, report):
        assert report.clean, "\n".join(
            f"{f.path}:{f.line} {f.rule} {f.message}"
            for f in report.findings
        )

    def test_no_lock_order_cycles(self, report):
        assert report.graph.cycles() == []

    def test_committed_baseline_is_empty(self):
        # The tree currently needs no exemptions; if one is ever added,
        # update this expectation alongside its justification in
        # docs/STATIC_ANALYSIS.md.
        path = default_baseline_path()
        assert path.exists()
        from repro.analysis.concurrency.guarded import Baseline

        baseline = Baseline.load(path)
        assert not baseline.rep120
        assert not baseline.rep121


class TestGraphSanity:
    """The extractor really sees the locking the code is known to do."""

    def test_discovers_the_major_locks(self, report):
        keys = {node.key for node in report.graph.nodes()}
        for expected in (
            "repro.bb.broker.BandwidthBroker._lock",
            "repro.bb.admission.AdmissionController._lock",
            "repro.bb.admission.CapacitySchedule._lock",
            "repro.bb.reservations.ReservationTable._lock",
            "repro.core.channel.SecureChannel._lock",
            "repro.core.channel.ChannelRegistry._lock",
            "repro.crypto.cache.LRUCache._lock",
            "repro.crypto.cache.VerificationCaches._lock",
            "repro.obs.metrics.MetricsRegistry._lock",
            "repro.faults.injector.FaultInjector._lock",
        ):
            assert expected in keys

    def test_broker_lock_orders_before_its_dependencies(self, report):
        broker = "repro.bb.broker.BandwidthBroker._lock"
        for inner in (
            "repro.bb.admission.AdmissionController._lock",
            "repro.bb.reservations.ReservationTable._lock",
            "repro.obs.metrics.MetricsRegistry._lock",
            "repro.faults.injector.FaultInjector._lock",
        ):
            assert report.graph.has_edge(broker, inner), inner

    def test_caches_order_before_their_cells(self, report):
        caches = "repro.crypto.cache.VerificationCaches._lock"
        assert report.graph.has_edge(
            caches, "repro.crypto.cache.LRUCache._lock"
        )

    def test_broker_reentry_is_modelled(self, report):
        # claim/refresh re-enter the broker RLock through public
        # methods; that must be a re-entry, never a self-edge.
        broker = "repro.bb.broker.BandwidthBroker._lock"
        assert not report.graph.has_edge(broker, broker)


class TestChannelLockingRegressions:
    """The fixes REP121 prompted in ``repro.core.channel``."""

    def _channel(self):
        from repro.core.channel import SecureChannel
        from repro.core.testbed import build_linear_testbed

        tb = build_linear_testbed(["A", "B"])
        a = tb.brokers["A"]
        b = tb.brokers["B"]
        return SecureChannel(a, b), a, b

    def test_counter_snapshot_is_consistent(self):
        channel, a, _ = self._channel()
        channel.transmit(a.dn, object())
        assert channel.counter_snapshot() == (1, 0, 0)
        channel.reset_counters()
        assert channel.counter_snapshot() == (0, 0, 0)
        assert channel.last_delay_s == 0.0

    def test_transmit_timed_returns_per_delivery_delay(self):
        channel, a, _ = self._channel()
        _, delay = channel.transmit_timed(a.dn, object())
        assert delay == 0.0

    def test_registry_totals_use_snapshots(self):
        from repro.core.channel import ChannelRegistry
        from repro.core.testbed import build_linear_testbed

        tb = build_linear_testbed(["A", "B"])
        a, b = tb.brokers["A"], tb.brokers["B"]
        registry = ChannelRegistry()
        channel = registry.connect(a, b)
        channel.transmit(a.dn, object())
        channel.transmit(b.dn, object())
        assert registry.total_messages() == 2
        registry.reset_counters()
        assert registry.total_messages() == 0
        assert channel.counter_snapshot() == (0, 0, 0)

    def test_concurrent_transmits_do_not_tear_counters(self):
        channel, a, b = self._channel()
        n, per_thread = 8, 50

        def send(sender):
            for _ in range(per_thread):
                channel.transmit(sender, object())

        threads = [
            threading.Thread(target=send, args=(a.dn if i % 2 else b.dn,))
            for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert channel.counter_snapshot()[0] == n * per_thread

    def test_injector_op_count_is_locked_read(self):
        from repro.faults.injector import FaultInjector, FaultPlan, TargetKind

        injector = FaultInjector(FaultPlan(()))
        injector.channel_transmit("A|B", object())
        assert injector.op_count(TargetKind.CHANNEL, "A|B") == 1
