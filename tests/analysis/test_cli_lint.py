"""Exit-code contracts of `repro lint` and `repro lint-policy`."""

import json

from repro.cli import main

CLEAN_POLICY = (
    "If BW < 10Mb/s\n"
    "    Return GRANT\n"
    "Return DENY\n"
)

CONTRADICTORY_POLICY = (
    "If BW > 1Gb/s\n"
    "    If BW <= 10Mb/s\n"
    "        Return GRANT\n"
    "Return DENY\n"
)


def _in_fake_package(tmp_path, source):
    """Rules scope by dotted module path, so test files must sit under a
    directory named ``repro`` to count as package code."""
    pkg = tmp_path / "repro" / "net"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / "scratch.py"
    target.write_text(source)
    return target


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, "def f(x: int) -> int:\n    return x\n"
        )
        rc = main(["lint", str(target)])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, "def f(xs=[]):\n    raise ValueError('x')\n"
        )
        rc = main(["lint", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP105" in out
        assert "REP103" in out

    def test_json_format(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, "def f(xs=[]):\n    pass\n")
        rc = main(["lint", "--format", "json", str(target)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "REP105"

    def test_rule_filter(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, "def f(xs=[]):\n    raise ValueError('x')\n"
        )
        rc = main(["lint", "--rule", "REP103", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP103" in out
        assert "REP105" not in out

    def test_unknown_rule_exits_two(self, capsys):
        rc = main(["lint", "--rule", "REP999"])
        assert rc == 2

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in ("REP101", "REP107", "REP108"):
            assert rule_id in out

    def test_whole_package_is_clean(self, capsys):
        # The merge gate: the shipped package itself lints clean.
        assert main(["lint"]) == 0


class TestLintPolicy:
    def test_clean_policy_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.policy"
        target.write_text(CLEAN_POLICY)
        rc = main(["lint-policy", str(target)])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_contradictory_policy_exits_one(self, tmp_path, capsys):
        target = tmp_path / "bad.policy"
        target.write_text(CONTRADICTORY_POLICY)
        rc = main(["lint-policy", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "contradiction" in out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.policy"
        target.write_text("If BW <<< oops\n")
        rc = main(["lint-policy", str(target)])
        assert rc == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        rc = main(["lint-policy", str(tmp_path / "nope.policy")])
        assert rc == 2

    def test_example_policies_are_clean(self, capsys):
        import glob

        files = sorted(glob.glob("examples/policies/*.policy"))
        assert files, "example policies missing"
        assert main(["lint-policy", *files]) == 0

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.policy"
        target.write_text(CONTRADICTORY_POLICY)
        rc = main(["lint-policy", "--format", "json", str(target)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["count"] == 1
        assert doc["findings"][0]["kind"] == "contradiction"


DEADLOCK_MODULE = (
    "import threading\n"
    "\n"
    "\n"
    "class A:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "\n"
    "\n"
    "class B:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "\n"
    "\n"
    "class System:\n"
    "    def __init__(self):\n"
    "        self.a = A()\n"
    "        self.b = B()\n"
    "\n"
    "    def forward(self):\n"
    "        with self.a._lock:\n"
    "            with self.b._lock:\n"
    "                pass\n"
    "\n"
    "    def backward(self):\n"
    "        with self.b._lock:\n"
    "            with self.a._lock:\n"
    "                pass\n"
)

UNGUARDED_MODULE = (
    "import threading\n"
    "\n"
    "\n"
    "class Counter:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.count = 0\n"
    "\n"
    "    def bump(self):\n"
    "        with self._lock:\n"
    "            self.count += 1\n"
    "\n"
    "    def unbump(self):\n"
    "        with self._lock:\n"
    "            self.count -= 1\n"
    "\n"
    "    def sneak(self):\n"
    "        self.count = 5\n"
)


class TestLintConcurrency:
    def test_deadlock_fixture_exits_one(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, DEADLOCK_MODULE)
        rc = main(["lint", "--concurrency", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP120" in out
        assert "potential deadlock" in out

    def test_unguarded_fixture_exits_one(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, UNGUARDED_MODULE)
        rc = main(["lint", "--concurrency", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP121" in out

    def test_select_narrows_concurrency_rules(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, DEADLOCK_MODULE + "\n\n" + UNGUARDED_MODULE
        )
        rc = main(["lint", "--concurrency", "--select", "REP121",
                   str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP121" in out
        assert "REP120" not in out

    def test_ignore_drops_concurrency_rule(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, UNGUARDED_MODULE)
        rc = main(["lint", "--concurrency", "--ignore", "REP121",
                   str(target)])
        assert rc == 0

    def test_json_format(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, DEADLOCK_MODULE)
        rc = main(["lint", "--concurrency", "--format", "json",
                   str(target)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "REP120"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, UNGUARDED_MODULE)
        baseline = tmp_path / "baseline.json"
        rc = main(["lint", "--concurrency", "--write-baseline",
                   "--baseline", str(baseline), str(target)])
        assert rc == 0
        assert baseline.exists()
        capsys.readouterr()
        rc = main(["lint", "--concurrency", "--baseline", str(baseline),
                   str(target)])
        assert rc == 0

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, UNGUARDED_MODULE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        rc = main(["lint", "--concurrency", "--baseline", str(baseline),
                   str(target)])
        assert rc == 2

    def test_baseline_flag_requires_concurrency(self, tmp_path, capsys):
        rc = main(["lint", "--write-baseline"])
        assert rc == 2

    def test_whole_package_is_concurrency_clean(self, capsys):
        # The merge gate: no unsuppressed cycles, no unbaselined
        # guarded-state violations in the shipped package.
        assert main(["lint", "--concurrency"]) == 0

    def test_catalog_lists_concurrency_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "REP120" in out
        assert "REP121" in out


class TestLintSelectIgnore:
    def test_ignore_drops_rule(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, "def f(xs=[]):\n    raise ValueError('x')\n"
        )
        rc = main(["lint", "--ignore", "REP103", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP105" in out
        assert "REP103" not in out

    def test_select_is_an_alias_of_rule(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, "def f(xs=[]):\n    raise ValueError('x')\n"
        )
        rc = main(["lint", "--select", "REP103", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP103" in out
        assert "REP105" not in out

    def test_unknown_ignore_exits_two(self, capsys):
        assert main(["lint", "--ignore", "REP999"]) == 2


class TestLockgraphCLI:
    def test_summary_mentions_broker_lock(self, capsys):
        rc = main(["lockgraph"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bb.broker.BandwidthBroker._lock" in out
        assert "0 cycle(s)" in out

    def test_dot_output(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, DEADLOCK_MODULE)
        rc = main(["lockgraph", "--dot", str(target)])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("digraph lockorder")
        assert "color=red" in out  # the cycle edges are highlighted

    def test_json_output(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, DEADLOCK_MODULE)
        rc = main(["lockgraph", "--json", str(target)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert len(doc["cycles"]) == 1
        assert any(e["witnesses"] for e in doc["edges"])
