"""Exit-code contracts of `repro lint` and `repro lint-policy`."""

import json

from repro.cli import main

CLEAN_POLICY = (
    "If BW < 10Mb/s\n"
    "    Return GRANT\n"
    "Return DENY\n"
)

CONTRADICTORY_POLICY = (
    "If BW > 1Gb/s\n"
    "    If BW <= 10Mb/s\n"
    "        Return GRANT\n"
    "Return DENY\n"
)


def _in_fake_package(tmp_path, source):
    """Rules scope by dotted module path, so test files must sit under a
    directory named ``repro`` to count as package code."""
    pkg = tmp_path / "repro" / "net"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / "scratch.py"
    target.write_text(source)
    return target


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, "def f(x: int) -> int:\n    return x\n"
        )
        rc = main(["lint", str(target)])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, "def f(xs=[]):\n    raise ValueError('x')\n"
        )
        rc = main(["lint", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP105" in out
        assert "REP103" in out

    def test_json_format(self, tmp_path, capsys):
        target = _in_fake_package(tmp_path, "def f(xs=[]):\n    pass\n")
        rc = main(["lint", "--format", "json", str(target)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "REP105"

    def test_rule_filter(self, tmp_path, capsys):
        target = _in_fake_package(
            tmp_path, "def f(xs=[]):\n    raise ValueError('x')\n"
        )
        rc = main(["lint", "--rule", "REP103", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP103" in out
        assert "REP105" not in out

    def test_unknown_rule_exits_two(self, capsys):
        rc = main(["lint", "--rule", "REP999"])
        assert rc == 2

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in ("REP101", "REP107", "REP108"):
            assert rule_id in out

    def test_whole_package_is_clean(self, capsys):
        # The merge gate: the shipped package itself lints clean.
        assert main(["lint"]) == 0


class TestLintPolicy:
    def test_clean_policy_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.policy"
        target.write_text(CLEAN_POLICY)
        rc = main(["lint-policy", str(target)])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_contradictory_policy_exits_one(self, tmp_path, capsys):
        target = tmp_path / "bad.policy"
        target.write_text(CONTRADICTORY_POLICY)
        rc = main(["lint-policy", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "contradiction" in out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.policy"
        target.write_text("If BW <<< oops\n")
        rc = main(["lint-policy", str(target)])
        assert rc == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        rc = main(["lint-policy", str(tmp_path / "nope.policy")])
        assert rc == 2

    def test_example_policies_are_clean(self, capsys):
        import glob

        files = sorted(glob.glob("examples/policies/*.policy"))
        assert files, "example policies missing"
        assert main(["lint-policy", *files]) == 0

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.policy"
        target.write_text(CONTRADICTORY_POLICY)
        rc = main(["lint-policy", "--format", "json", str(target)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["count"] == 1
        assert doc["findings"][0]["kind"] == "contradiction"
