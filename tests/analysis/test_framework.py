"""Tests for the lint framework: registry, noqa, output, scoping."""

import json

import pytest

from repro.analysis.framework import (
    Finding,
    Rule,
    Severity,
    check_source,
    findings_to_json,
    register,
    registered_rules,
    suppressed_lines,
)
from repro.errors import AnalysisError

# Importing the rules module populates the registry.
import repro.analysis.rules  # noqa: F401


class TestRegistry:
    def test_all_repo_rules_registered(self):
        ids = set(registered_rules())
        assert {
            "REP101", "REP102", "REP103", "REP104",
            "REP105", "REP106", "REP107", "REP108",
        } <= ids

    def test_register_rejects_bad_id(self):
        class Nameless(Rule):
            id = "LINT1"

        with pytest.raises(AnalysisError, match="REPnnn"):
            register(Nameless)

    def test_register_rejects_duplicate_id(self):
        class Clone(Rule):
            id = "REP101"
            title = "impostor"

        with pytest.raises(AnalysisError, match="duplicate"):
            register(Clone)


class TestScoping:
    def test_packages_none_applies_everywhere(self):
        class Everywhere(Rule):
            id = "REP900"

        assert Everywhere.applies_to("repro.net.link")
        assert Everywhere.applies_to("anything.at.all")

    def test_package_prefix_matches_whole_components(self):
        class Scoped(Rule):
            id = "REP901"
            packages = ("repro.net",)

        assert Scoped.applies_to("repro.net")
        assert Scoped.applies_to("repro.net.link")
        assert not Scoped.applies_to("repro.network")
        assert not Scoped.applies_to("repro.policy.engine")


class _AlwaysFlagCalls(Rule):
    """Test helper: flags every function call."""

    id = "REP999"
    title = "no calls at all"
    severity = Severity.WARNING

    def visit_Call(self, node):
        self.report(node, "call flagged")
        self.generic_visit(node)


class TestCheckSource:
    def test_findings_sorted_and_positioned(self):
        src = "b()\na()\n"
        findings = check_source(src, path="x.py", rules=[_AlwaysFlagCalls])
        assert [f.line for f in findings] == [1, 2]
        assert findings[0].rule == "REP999"
        assert findings[0].severity is Severity.WARNING
        assert "x.py:1:0: REP999 warning:" in findings[0].format()

    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            check_source("def f(:\n", path="broken.py")

    def test_out_of_scope_module_skipped(self):
        class Scoped(_AlwaysFlagCalls):
            id = "REP998"
            packages = ("repro.net",)

        assert check_source("f()\n", module="repro.policy.x", rules=[Scoped]) == []
        assert check_source("f()\n", module="repro.net.x", rules=[Scoped]) != []


class TestNoqa:
    def test_suppressed_lines_parses_specs(self):
        src = (
            "a()  # repro: noqa[REP999]\n"
            "b()  # repro: noqa[REP101, REP999] deliberate, see docs\n"
            "c()  # repro: noqa[*]\n"
            "d()\n"
        )
        sup = suppressed_lines(src)
        assert sup[1] == frozenset({"REP999"})
        assert sup[2] == frozenset({"REP101", "REP999"})
        assert sup[3] == frozenset({"*"})
        assert 4 not in sup

    def test_noqa_suppresses_matching_rule_only(self):
        src = (
            "a()  # repro: noqa[REP999] justified\n"
            "b()  # repro: noqa[REP101] wrong rule id\n"
        )
        findings = check_source(src, rules=[_AlwaysFlagCalls])
        assert [f.line for f in findings] == [2]

    def test_noqa_star_suppresses_everything(self):
        src = "a()  # repro: noqa[*] test scaffolding\n"
        assert check_source(src, rules=[_AlwaysFlagCalls]) == []


class TestJsonOutput:
    def test_round_trips_through_json(self):
        findings = [
            Finding("f.py", 3, 1, "REP103", Severity.ERROR, "boom"),
        ]
        doc = json.loads(findings_to_json(findings))
        assert doc["count"] == 1
        assert doc["findings"][0] == {
            "path": "f.py",
            "line": 3,
            "column": 1,
            "rule": "REP103",
            "severity": "error",
            "message": "boom",
        }
