"""Unit tests for the runtime lock witness."""

import threading

import pytest

from repro.analysis.concurrency import analyze_sources
from repro.analysis.concurrency import witness as wmod
from repro.analysis.concurrency.witness import (
    LockWitness,
    WitnessViolation,
    current_witness,
)


@pytest.fixture
def witness():
    """A fresh witness, parking any session-wide one (--lock-witness)."""
    active = current_witness()
    if active is not None:
        active.uninstall()
    w = LockWitness()
    yield w
    w.uninstall()
    if active is not None:
        active.install()


class TestRecording:
    def test_nested_acquisition_records_an_edge(self, witness):
        with witness:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
        edges = witness.observed_edges()
        assert len(edges) == 1
        ((src, dst),) = edges
        assert src.line < dst.line  # a created before b
        assert witness.inversions() == []

    def test_opposite_orders_are_an_inversion(self, witness):
        with witness:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(witness.observed_edges()) == 2
        assert len(witness.inversions()) == 1

    def test_same_site_instances_are_one_node(self, witness):
        def make():
            return threading.Lock()

        with witness:
            a, b = make(), make()
            with a:
                with b:
                    pass
                # Same creation site: not an ordering edge, and the
                # re-acquisition is two different instances, so no
                # violation either.
        assert witness.observed_edges() == {}

    def test_plain_lock_reacquire_raises_instead_of_deadlocking(
        self, witness
    ):
        with witness:
            a = threading.Lock()
            with a:
                with pytest.raises(WitnessViolation):
                    a.acquire()

    def test_rlock_reentry_is_silent(self, witness):
        with witness:
            r = threading.RLock()
            with r:
                with r:
                    pass
        assert witness.observed_edges() == {}
        assert witness.inversions() == []

    def test_cross_thread_orders_combine(self, witness):
        with witness:
            a = threading.Lock()
            b = threading.Lock()

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            t1 = threading.Thread(target=forward)
            t1.start()
            t1.join()
            t2 = threading.Thread(target=backward)
            t2.start()
            t2.join()
        assert len(witness.inversions()) == 1

    def test_stdlib_locks_are_not_wrapped(self, witness):
        with witness:
            created_before = witness.locks_created
            # Condition() creates an RLock inside threading.py.
            threading.Condition()
            # Only the Condition's own creation site (this file) counts.
            assert witness.locks_created <= created_before + 1

    def test_condition_wait_notify_under_witness(self, witness):
        with witness:
            cond = threading.Condition(threading.Lock())
            hits = []

            def waiter():
                with cond:
                    cond.wait(timeout=5)
                    hits.append(1)

            t = threading.Thread(target=waiter)
            t.start()
            # Spin until the waiter holds-and-releases into wait().
            import time
            for _ in range(500):
                with cond:
                    cond.notify()
                if hits:
                    break
                time.sleep(0.002)
            t.join(timeout=5)
        assert hits == [1]

    def test_install_is_exclusive(self, witness):
        with witness:
            with pytest.raises(Exception):
                LockWitness().install()
        assert current_witness() is None


class TestStaticCrossCheck:
    def _graph_for(self, source, path):
        return analyze_sources([("repro.fake.prog", path, source)]).graph

    def test_observed_subset_of_static_is_consistent(
        self, witness, tmp_path
    ):
        source = (
            "import threading\n"
            "\n"
            "class P:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.Lock()\n"
            "\n"
            "    def op(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
        )
        path = tmp_path / "prog.py"
        path.write_text(source)
        graph = self._graph_for(source, str(path))
        namespace = {}
        with witness:
            exec(compile(source, str(path), "exec"), namespace)
            p = namespace["P"]()
            p.op()
        assert witness.map_to_static(graph)  # sites joined by (path, line)
        assert witness.check_against(graph) == []

    def test_unmodelled_order_is_reported(self, witness, tmp_path):
        source = (
            "import threading\n"
            "\n"
            "class P:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.Lock()\n"
            "\n"
            "    def op(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
        )
        path = tmp_path / "prog.py"
        path.write_text(source)
        graph = self._graph_for(source, str(path))
        namespace = {}
        with witness:
            exec(compile(source, str(path), "exec"), namespace)
            p = namespace["P"]()
            # Acquire in the order the static graph does NOT contain.
            with p.b:
                with p.a:
                    pass
        problems = witness.check_against(graph)
        assert len(problems) == 1
        assert "missing from the static lock-order graph" in problems[0]

    def test_locks_outside_the_model_are_ignored(self, witness):
        graph = self._graph_for("x = 1\n", "/fake/empty.py")
        with witness:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
        # Edges between unmapped sites are not discrepancies...
        problems = witness.check_against(graph)
        assert problems == []

    def test_observed_inversion_beats_acyclic_static_graph(self, witness):
        graph = self._graph_for("x = 1\n", "/fake/empty.py")
        with witness:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        # ...but a real observed inversion is always reported, even for
        # locks the static pass never saw.
        problems = witness.check_against(graph)
        assert len(problems) == 1
        assert "acyclic" in problems[0]


def test_uninstall_restores_real_factories():
    before_lock, before_rlock = threading.Lock, threading.RLock
    active = current_witness()
    if active is not None:
        active.uninstall()
    try:
        w = LockWitness()
        w.install()
        w.uninstall()
        assert threading.Lock is wmod._REAL_LOCK
        assert threading.RLock is wmod._REAL_RLOCK
    finally:
        if active is not None:
            active.install()
        else:
            threading.Lock, threading.RLock = before_lock, before_rlock
