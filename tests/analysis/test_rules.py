"""Each repo-specific rule: fires on the violation, quiet on the idiom."""

import textwrap

from repro.analysis.framework import check_source
from repro.analysis.rules import (
    BareExceptionRule,
    GlobalRandomRule,
    MutableDefaultRule,
    ObsGuardRule,
    ProvenanceBypassRule,
    RawTimerRule,
    SaltedHashSeedRule,
    SecretExposureRule,
    StrictAnnotationsRule,
    TelemetryClockRule,
    UnboundedRetryRule,
    UncodedDenialRule,
    WallClockRule,
)


def lint(source, rule, module="repro.net.test"):
    return check_source(
        textwrap.dedent(source), module=module, rules=[rule]
    )


class TestWallClock:
    def test_flags_time_time(self):
        findings = lint(
            """
            import time
            def f():
                return time.time()
            """,
            WallClockRule,
        )
        assert len(findings) == 1
        assert "time.time()" in findings[0].message

    def test_resolves_from_import_alias(self):
        findings = lint(
            """
            from time import time as wall
            stamp = wall()
            """,
            WallClockRule,
        )
        assert len(findings) == 1

    def test_flags_datetime_now(self):
        findings = lint(
            """
            import datetime
            t = datetime.datetime.now()
            """,
            WallClockRule,
        )
        assert len(findings) == 1

    def test_monotonic_timers_allowed(self):
        # perf_counter cannot express a time of day; the obs layer uses it
        # to meter elapsed cost.
        findings = lint(
            """
            import time
            start = time.perf_counter()
            tick = time.monotonic()
            """,
            WallClockRule,
        )
        assert findings == []

    def test_scoped_to_simulation_packages(self):
        src = """
        import time
        t = time.time()
        """
        assert lint(src, WallClockRule, module="repro.analysis.x") == []
        assert lint(src, WallClockRule, module="repro.bb.x") != []


class TestGlobalRandom:
    def test_flags_module_level_calls(self):
        findings = lint(
            """
            import random
            x = random.random()
            y = random.choice([1, 2])
            """,
            GlobalRandomRule,
        )
        assert len(findings) == 2

    def test_injected_rng_is_fine(self):
        findings = lint(
            """
            import random
            def f(rng: random.Random) -> float:
                return rng.random()
            r = random.Random(42)
            """,
            GlobalRandomRule,
        )
        assert findings == []


class TestBareException:
    def test_flags_generic_raises(self):
        findings = lint(
            """
            def f():
                raise ValueError("bad")
            def g():
                raise Exception
            """,
            BareExceptionRule,
        )
        assert [f.line for f in findings] == [3, 5]

    def test_repro_errors_are_fine(self):
        findings = lint(
            """
            from repro.errors import PolicySyntaxError
            def f():
                raise PolicySyntaxError("bad token")
            """,
            BareExceptionRule,
        )
        assert findings == []

    def test_reraise_without_exc_is_fine(self):
        findings = lint(
            """
            def f():
                try:
                    g()
                except KeyError:
                    raise
            """,
            BareExceptionRule,
        )
        assert findings == []


class TestSecretExposure:
    def test_flags_secret_in_fstring(self):
        findings = lint(
            """
            msg = f"key is {private_key}"
            """,
            SecretExposureRule,
        )
        assert len(findings) == 1
        assert "private_key" in findings[0].message

    def test_flags_secret_attribute_in_log_call(self):
        findings = lint(
            """
            logger.info("loaded %s", self.signing_key)
            """,
            SecretExposureRule,
        )
        assert len(findings) == 1

    def test_attribute_chain_checks_rendered_leaf_only(self):
        # `private.scheme` renders a scheme name, not the key.
        findings = lint(
            """
            msg = f"scheme {private.scheme!r} unsupported"
            """,
            SecretExposureRule,
        )
        assert findings == []

    def test_leaf_attribute_still_caught(self):
        findings = lint(
            """
            logger.debug("%s", bundle.private_key)
            """,
            SecretExposureRule,
        )
        assert len(findings) == 1


class TestMutableDefault:
    def test_flags_literal_and_constructor_defaults(self):
        findings = lint(
            """
            def f(xs=[], mapping=dict()):
                pass
            """,
            MutableDefaultRule,
        )
        assert len(findings) == 2

    def test_none_and_tuple_defaults_are_fine(self):
        findings = lint(
            """
            def f(xs=None, pair=(), *, flags=frozenset()):
                pass
            """,
            MutableDefaultRule,
        )
        assert findings == []


class TestObsGuard:
    def test_flags_chained_accessor_use(self):
        findings = lint(
            """
            from repro.obs import metrics as obs_metrics
            obs_metrics.get_registry().counter("x", "y").inc()
            """,
            ObsGuardRule,
        )
        assert len(findings) == 1
        assert "one-None-check" in findings[0].message

    def test_guarded_use_is_fine(self):
        findings = lint(
            """
            from repro.obs import metrics as obs_metrics
            registry = obs_metrics.get_registry()
            if registry is not None:
                registry.counter("x", "y").inc()
            """,
            ObsGuardRule,
        )
        assert findings == []


class TestSaltedHashSeed:
    def test_flags_hash_in_random_constructor(self):
        findings = lint(
            """
            import random
            rng = random.Random(hash(name) & 0xFFFF)
            """,
            SaltedHashSeedRule,
        )
        assert len(findings) == 1
        assert "PYTHONHASHSEED" in findings[0].message

    def test_flags_hash_in_seed_call(self):
        findings = lint(
            """
            def f(rng, label):
                rng.seed(hash(label))
            """,
            SaltedHashSeedRule,
        )
        assert len(findings) == 1

    def test_crc32_seed_is_fine(self):
        findings = lint(
            """
            import random
            import zlib
            rng = random.Random(zlib.crc32(name.encode()))
            """,
            SaltedHashSeedRule,
        )
        assert findings == []


class TestStrictAnnotations:
    def test_flags_missing_annotations_in_strict_packages(self):
        findings = lint(
            """
            def f(x, y=1):
                return x + y
            """,
            StrictAnnotationsRule,
            module="repro.core.test",
        )
        assert len(findings) == 1
        assert "x, y, return" in findings[0].message

    def test_self_and_cls_exempt(self):
        findings = lint(
            """
            class C:
                def method(self, x: int) -> int:
                    return x
                @classmethod
                def make(cls) -> "C":
                    return cls()
            """,
            StrictAnnotationsRule,
            module="repro.policy.test",
        )
        assert findings == []

    def test_varargs_need_annotations_too(self):
        findings = lint(
            """
            def f(*args, **kwargs) -> None:
                pass
            """,
            StrictAnnotationsRule,
            module="repro.crypto.test",
        )
        assert len(findings) == 1
        assert "*args" in findings[0].message
        assert "**kwargs" in findings[0].message

    def test_not_enforced_outside_strict_packages(self):
        findings = lint(
            """
            def f(x):
                return x
            """,
            StrictAnnotationsRule,
            module="repro.net.test",
        )
        assert findings == []


class TestNoqaIntegration:
    def test_justified_suppression_silences_one_rule(self):
        findings = lint(
            """
            import time
            t = time.time()  # repro: noqa[REP101] boot banner only
            u = time.time()
            """,
            WallClockRule,
        )
        assert [f.line for f in findings] == [4]


class TestUnboundedRetry:
    def test_flags_while_true_around_transmit(self):
        findings = lint(
            """
            def send(channel, dn, message):
                while True:
                    try:
                        return channel.transmit(dn, message)
                    except Exception:
                        pass
            """,
            UnboundedRetryRule,
        )
        assert len(findings) == 1
        assert "unbounded retry" in findings[0].message
        assert "transmit" in findings[0].message
        assert "RetryPolicy" in findings[0].message

    def test_flags_while_true_around_admit(self):
        findings = lint(
            """
            def push(bb, request):
                while 1:
                    bb.admit(request)
            """,
            UnboundedRetryRule,
        )
        assert len(findings) == 1

    def test_attempt_counter_counts_as_a_bound(self):
        findings = lint(
            """
            def send(channel, dn, message, policy):
                attempt = 0
                while True:
                    attempt += 1
                    if attempt > policy.max_attempts:
                        raise RuntimeError("gave up")
                    try:
                        return channel.transmit(dn, message)
                    except Exception:
                        continue
            """,
            UnboundedRetryRule,
        )
        assert findings == []

    def test_deadline_check_counts_as_a_bound(self):
        findings = lint(
            """
            def send(channel, dn, message, deadline, clock):
                while True:
                    deadline.check(clock(), what="send")
                    try:
                        return channel.transmit(dn, message)
                    except Exception:
                        continue
            """,
            UnboundedRetryRule,
        )
        assert findings == []

    def test_non_retryable_loops_are_fine(self):
        findings = lint(
            """
            def pump(queue):
                while True:
                    item = queue.pop()
                    if item is None:
                        break
            """,
            UnboundedRetryRule,
        )
        assert findings == []

    def test_bounded_for_loop_is_fine(self):
        findings = lint(
            """
            def send(channel, dn, message, n):
                for _ in range(n):
                    try:
                        return channel.transmit(dn, message)
                    except Exception:
                        continue
            """,
            UnboundedRetryRule,
        )
        assert findings == []

    def test_conditional_while_is_fine(self):
        findings = lint(
            """
            def send(channel, dn, message, healthy):
                while healthy():
                    channel.transmit(dn, message)
            """,
            UnboundedRetryRule,
        )
        assert findings == []

    def test_noqa_suppression(self):
        findings = lint(
            """
            def send(channel, dn, message):
                while True:  # repro: noqa[REP109] bounded by the caller
                    channel.transmit(dn, message)
            """,
            UnboundedRetryRule,
        )
        assert findings == []


class TestRawTimer:
    def test_flags_perf_counter_outside_obs(self):
        findings = lint(
            """
            import time
            def f():
                t0 = time.perf_counter()
                return time.perf_counter() - t0
            """,
            RawTimerRule,
            module="repro.core.hopbyhop",
        )
        assert len(findings) == 2
        assert findings[0].rule == "REP110"
        assert "Histogram.time()" in findings[0].message

    def test_resolves_from_import(self):
        findings = lint(
            """
            from time import monotonic
            def f():
                return monotonic()
            """,
            RawTimerRule,
            module="repro.bb.broker",
        )
        assert len(findings) == 1

    def test_obs_package_is_exempt(self):
        source = """
        import time
        def phase_clock():
            return time.perf_counter()
        """
        assert lint(source, RawTimerRule, module="repro.obs.spans") == []
        assert lint(source, RawTimerRule, module="repro.obs.perf.bench") == []
        # The same code outside repro.obs trips the rule.
        assert len(lint(source, RawTimerRule, module="repro.core.x")) == 1

    def test_noqa_escape(self):
        findings = lint(
            """
            import time
            def f():
                return time.perf_counter()  # repro: noqa[REP110] calibration
            """,
            RawTimerRule,
            module="repro.core.hopbyhop",
        )
        assert findings == []

    def test_obs_helpers_are_the_idiom(self):
        findings = lint(
            """
            from repro.obs import spans as obs_spans
            def f(hist):
                t0 = obs_spans.phase_clock()
                with hist.time(op="x"):
                    pass
                return t0
            """,
            RawTimerRule,
            module="repro.core.hopbyhop",
        )
        assert findings == []


class TestProvenanceBypass:
    def test_flags_unrecorded_admit_outcome(self):
        findings = lint(
            """
            def admit(self, resv):
                return AdmitOutcome(True, resv)
            """,
            ProvenanceBypassRule,
            module="repro.bb.broker",
        )
        assert len(findings) == 1
        assert "AdmitOutcome" in findings[0].message
        assert "repro audit --reconcile" in findings[0].message

    def test_flags_unrecorded_make_denial(self):
        findings = lint(
            """
            from repro.core.messages import make_denial
            def deny(domain, reason, bb):
                return make_denial(
                    domain=domain, reason=reason,
                    bb=bb.dn, bb_key=bb.keypair.private,
                )
            """,
            ProvenanceBypassRule,
            module="repro.core.hopbyhop",
        )
        assert len(findings) == 1
        assert "make_denial" in findings[0].message

    def test_broker_audit_call_satisfies_the_rule(self):
        findings = lint(
            """
            def admit(self, resv):
                self._audit("admit", resv, granted=True)
                return AdmitOutcome(True, resv)
            """,
            ProvenanceBypassRule,
            module="repro.bb.broker",
        )
        assert findings == []

    def test_record_decision_satisfies_the_rule(self):
        findings = lint(
            """
            from repro.obs.audit import ledger as obs_audit
            def deny(domain, reason, bb):
                obs_audit.record_decision(
                    obs_audit.RecordKind.DENY, domain=domain, reason=reason,
                )
                return make_denial(domain=domain, reason=reason)
            """,
            ProvenanceBypassRule,
            module="repro.core.hopbyhop",
        )
        assert findings == []

    def test_out_of_scope_modules_exempt(self):
        source = """
            def helper():
                return make_denial(domain="A", reason="test fixture")
        """
        assert lint(
            source, ProvenanceBypassRule, module="repro.core.testbed"
        ) == []
        assert lint(
            source, ProvenanceBypassRule, module="repro.core.hopbyhop"
        ) != []

    def test_noqa_escape(self):
        findings = lint(
            """
            def synthesize(domain, reason):
                return make_denial(domain=domain, reason=reason)  # repro: noqa[REP111] probe
            """,
            ProvenanceBypassRule,
            module="repro.core.hopbyhop",
        )
        assert findings == []

    def test_shipping_code_is_clean(self):
        import pathlib

        import repro.bb.broker
        import repro.core.hopbyhop

        for mod in (repro.bb.broker, repro.core.hopbyhop):
            source = pathlib.Path(mod.__file__).read_text()
            assert check_source(
                source, module=mod.__name__, rules=[ProvenanceBypassRule]
            ) == []


class TestUncodedDenial:
    def test_flags_denial_without_reason_code(self):
        findings = lint(
            """
            def deny(domain, reason, bb):
                return make_denial(
                    domain=domain, reason=reason,
                    bb=bb.dn, bb_key=bb.keypair.private,
                )
            """,
            UncodedDenialRule,
            module="repro.core.hopbyhop",
        )
        assert len(findings) == 1
        assert "ReasonCode" in findings[0].message

    def test_flags_false_admit_outcome_without_code(self):
        findings = lint(
            """
            def admit(self, resv, exc):
                return AdmitOutcome(False, resv, reason=str(exc))
            """,
            UncodedDenialRule,
            module="repro.bb.broker",
        )
        assert len(findings) == 1

    def test_flags_rejected_ingress_report_without_code(self):
        findings = lint(
            """
            def reject(exc):
                return IngressReport(accepted=False, work_units=0.02)
            """,
            UncodedDenialRule,
            module="repro.core.hopbyhop",
        )
        assert len(findings) == 1

    def test_granted_outcomes_are_not_denials(self):
        findings = lint(
            """
            def admit(self, resv):
                return AdmitOutcome(True, resv)
            """,
            UncodedDenialRule,
            module="repro.bb.broker",
        )
        assert findings == []

    def test_reason_code_keyword_satisfies_the_rule(self):
        findings = lint(
            """
            def admit(self, resv, exc):
                self._audit("admit", resv, granted=False, reason=str(exc),
                            reason_code=ReasonCode.QUOTA_EXCEEDED)
                return AdmitOutcome(False, resv, reason=str(exc))
            """,
            UncodedDenialRule,
            module="repro.bb.broker",
        )
        assert findings == []

    def test_reason_code_for_satisfies_the_rule(self):
        findings = lint(
            """
            from repro.obs.events import reason_code_for
            def reject(exc):
                code = reason_code_for(exc)
                return IngressReport(
                    accepted=False, work_units=0.02,
                    reason=str(exc), reason_code=code.value,
                )
            """,
            UncodedDenialRule,
            module="repro.core.hopbyhop",
        )
        assert findings == []

    def test_out_of_scope_modules_exempt(self):
        source = """
            def helper():
                return make_denial(domain="A", reason="test fixture")
        """
        assert lint(
            source, UncodedDenialRule, module="repro.core.testbed"
        ) == []
        assert lint(
            source, UncodedDenialRule, module="repro.bb.broker"
        ) != []

    def test_noqa_escape(self):
        findings = lint(
            """
            def synthesize(domain, reason):
                return make_denial(domain=domain, reason=reason)  # repro: noqa[REP112] probe
            """,
            UncodedDenialRule,
            module="repro.core.hopbyhop",
        )
        assert findings == []

    def test_shipping_code_is_clean(self):
        import pathlib

        import repro.bb.broker
        import repro.bb.defense
        import repro.core.hopbyhop

        for mod in (repro.bb.broker, repro.bb.defense, repro.core.hopbyhop):
            source = pathlib.Path(mod.__file__).read_text()
            assert check_source(
                source, module=mod.__name__, rules=[UncodedDenialRule]
            ) == []


class TestTelemetryClock:
    """REP113: the telemetry plane must take time from the caller."""

    SOURCE = """
    import time
    def sample():
        return time.time()
    """

    def test_flags_wall_clock_inside_telemetry(self):
        findings = lint(
            self.SOURCE,
            TelemetryClockRule,
            module="repro.obs.telemetry.recorder",
        )
        assert len(findings) == 1
        assert findings[0].rule == "REP113"
        assert "repro.obs.telemetry" in findings[0].message

    def test_flags_raw_timers_too(self):
        findings = lint(
            """
            from time import perf_counter
            def sample():
                return perf_counter()
            """,
            TelemetryClockRule,
            module="repro.obs.telemetry.health",
        )
        assert len(findings) == 1

    def test_quiet_outside_the_telemetry_package(self):
        # REP110 exempts repro.obs generally; REP113 narrows the ban
        # back onto the telemetry plane only.
        for module in ("repro.obs.perf.bench", "repro.core.hopbyhop"):
            assert lint(self.SOURCE, TelemetryClockRule,
                        module=module) == []

    def test_shipping_telemetry_code_is_clean(self):
        import pathlib

        import repro.obs.telemetry.alerts
        import repro.obs.telemetry.dashboard
        import repro.obs.telemetry.health
        import repro.obs.telemetry.recorder
        import repro.obs.telemetry.series

        for mod in (
            repro.obs.telemetry.series,
            repro.obs.telemetry.recorder,
            repro.obs.telemetry.health,
            repro.obs.telemetry.alerts,
            repro.obs.telemetry.dashboard,
        ):
            source = pathlib.Path(mod.__file__).read_text()
            assert check_source(
                source, module=mod.__name__, rules=[TelemetryClockRule]
            ) == []
