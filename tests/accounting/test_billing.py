"""Tests for transitive billing (paper §6.4 accounting model)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.accounting.billing import TransitiveBilling
from repro.core.testbed import build_linear_testbed
from repro.errors import AccountingError


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def granted(testbed):
    alice = testbed.add_user("A", "Alice")
    outcome = testbed.reserve(
        alice, source="A", destination="C", bandwidth_mbps=10.0, duration=3600.0
    )
    assert outcome.granted
    return alice, outcome


class TestBilling:
    def test_invoice_cascade_structure(self, testbed, granted):
        alice, outcome = granted
        billing = TransitiveBilling(testbed.brokers)
        run = billing.bill(outcome)
        # C bills B, B bills A, A bills Alice.
        assert run.invoice_between("C", "B")
        assert run.invoice_between("B", "A")
        user_invoice = run.invoice_to_user()
        assert user_invoice.issuer == "A"
        assert run.usage_mbps_hours == pytest.approx(10.0)

    def test_pass_through_accumulates(self, testbed, granted):
        _, outcome = granted
        billing = TransitiveBilling(testbed.brokers)
        run = billing.bill(outcome)
        c_to_b = run.invoice_between("C", "B")
        b_to_a = run.invoice_between("B", "A")
        user = run.invoice_to_user()
        assert c_to_b.passed_through == 0.0
        assert b_to_a.passed_through == pytest.approx(c_to_b.amount)
        assert user.passed_through == pytest.approx(b_to_a.amount)

    def test_user_pays_sum_of_own_charges(self, testbed, granted):
        _, outcome = granted
        billing = TransitiveBilling(testbed.brokers)
        run = billing.bill(outcome)
        total_own = sum(i.own_charge for i in run.invoices)
        assert run.invoice_to_user().amount == pytest.approx(total_own)

    def test_conservation(self, testbed, granted):
        _, outcome = granted
        billing = TransitiveBilling(testbed.brokers)
        run = billing.bill(outcome)
        assert TransitiveBilling.conservation_holds(run)
        # Transit domain B nets exactly its own tariff.
        b_own = run.invoice_between("B", "A").own_charge
        assert TransitiveBilling.net_position(run, "B") == pytest.approx(b_own)
        # The user nets a pure payment.
        assert TransitiveBilling.net_position(
            run, str(run.user)
        ) == pytest.approx(-run.invoice_to_user().amount)

    def test_explicit_usage(self, testbed, granted):
        _, outcome = granted
        billing = TransitiveBilling(testbed.brokers)
        run = billing.bill(outcome, usage_mbps_hours=2.5)
        assert run.usage_mbps_hours == 2.5

    def test_custom_tariffs(self, testbed, granted):
        _, outcome = granted
        for sla in testbed.brokers["C"].slas_in.values():
            sla.price_per_mbps_hour = 5.0
        billing = TransitiveBilling(testbed.brokers, user_tariff_per_mbps_hour=1.0)
        run = billing.bill(outcome, usage_mbps_hours=1.0)
        assert run.invoice_between("C", "B").own_charge == pytest.approx(5.0)
        assert run.invoice_to_user().own_charge == pytest.approx(1.0)

    def test_denied_reservation_not_billable(self, testbed):
        alice = testbed.add_user("A", "Alice")
        testbed.set_policy("B", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        billing = TransitiveBilling(testbed.brokers)
        with pytest.raises(AccountingError):
            billing.bill(outcome)

    def test_single_domain_reservation_bills_user_only(self, testbed):
        alice = testbed.add_user("A", "Alice")
        outcome = testbed.reserve(
            alice, source="A", destination="A", bandwidth_mbps=5.0
        )
        billing = TransitiveBilling(testbed.brokers)
        run = billing.bill(outcome)
        assert len(run.invoices) == 1
        assert run.invoices[0].payer == str(alice.dn)

    def test_ledger_accumulates(self, testbed, granted):
        _, outcome = granted
        billing = TransitiveBilling(testbed.brokers)
        billing.bill(outcome)
        billing.bill(outcome, usage_mbps_hours=1.0)
        assert len(billing.ledger) == 2


@given(
    usage=st.floats(min_value=0.01, max_value=1e4),
    tariff=st.floats(min_value=0.0, max_value=100.0),
)
def test_conservation_property(usage, tariff):
    """Conservation holds for arbitrary usage volumes and tariffs."""
    testbed = build_linear_testbed(["A", "B", "C"])
    alice = testbed.add_user("A", "Alice")
    outcome = testbed.reserve(
        alice, source="A", destination="C", bandwidth_mbps=10.0
    )
    for broker in testbed.brokers.values():
        for sla in broker.slas_in.values():
            sla.price_per_mbps_hour = tariff
    billing = TransitiveBilling(testbed.brokers, user_tariff_per_mbps_hour=tariff)
    run = billing.bill(outcome, usage_mbps_hours=usage)
    assert TransitiveBilling.conservation_holds(run, tol=1e-6 * max(1.0, usage * tariff))
