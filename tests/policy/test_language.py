"""Tests for the policy-file language parser, including the paper's
verbatim Figure 1 and Figure 6 policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.dn import DN
from repro.errors import PolicySyntaxError
from repro.policy.engine import Decision, RequestContext
from repro.policy.language import compile_policy, parse_policy

ALICE = DN.make("Grid", "DomainA", "Alice")
BOB = DN.make("Grid", "DomainA", "Bob")


def ctx(user=ALICE, **kwargs):
    return RequestContext(user=user, **kwargs)


# -- the paper's policy files --------------------------------------------------

POLICY_FILE_A_FIG1 = """
If User = Alice
    If Reservation_Type = Network
        Return GRANT
If User = Bob
    Return DENY
Return DENY
"""

POLICY_FILE_B_FIG1 = """
If Reservation_Type = Network
    If Accredited_Physicist(requestor)
        Return GRANT
    Else Return DENY
Return DENY
"""

POLICY_FILE_A_FIG6 = """
If User = Alice
    If Time > 8am and Time < 5pm
        If BW <= 10Mb/s
            Return GRANT
        Else Return DENY
    Else if BW <= Avail_BW
        Return GRANT
    Else Return DENY
Return DENY
"""

POLICY_FILE_B_FIG6 = """
If Group = Atlas
    If BW <= 10Mb/s
        Return GRANT
If Issued_by(Capability) = ESnet
    If BW <= 10Mb/s
        Return GRANT
Return DENY
"""

POLICY_FILE_C_FIG6 = """
If BW >= 5Mb/s
    If Issued_by(Capability) = ESnet and HasValidCPUResv(RAR)
        Return GRANT
    Else Return DENY
Return GRANT
"""


class TestFigure1:
    def test_domain_a(self):
        engine = compile_policy(POLICY_FILE_A_FIG1)
        assert engine.evaluate(ctx(user=ALICE, reservation_type="Network")).granted
        assert not engine.evaluate(ctx(user=BOB, reservation_type="Network")).granted
        charlie = DN.make("Grid", "DomainC", "Charlie")
        assert not engine.evaluate(ctx(user=charlie, reservation_type="Network")).granted

    def test_domain_a_non_network(self):
        engine = compile_policy(POLICY_FILE_A_FIG1)
        assert not engine.evaluate(ctx(user=ALICE, reservation_type="CPU")).granted

    def test_domain_b_physicist_predicate(self):
        engine = compile_policy(POLICY_FILE_B_FIG1)
        physicists = {ALICE}
        predicates = {
            "Accredited_Physicist": lambda c: c.user in physicists
        }
        granted = engine.evaluate(
            ctx(user=ALICE, reservation_type="Network", predicates=predicates)
        )
        denied = engine.evaluate(
            ctx(user=BOB, reservation_type="Network", predicates=predicates)
        )
        assert granted.granted
        assert not denied.granted


class TestFigure6PolicyA:
    """BB-A: Alice unrestricted off-hours, capped at 10 Mb/s 8am-5pm."""

    def engine(self):
        return compile_policy(POLICY_FILE_A_FIG6, name="BB-A")

    def test_business_hours_within_cap(self):
        d = self.engine().evaluate(ctx(bandwidth_mbps=10.0, time_of_day_h=12.0))
        assert d.granted

    def test_business_hours_over_cap(self):
        d = self.engine().evaluate(ctx(bandwidth_mbps=20.0, time_of_day_h=12.0))
        assert not d.granted

    def test_evening_up_to_available(self):
        d = self.engine().evaluate(
            ctx(bandwidth_mbps=200.0, time_of_day_h=20.0,
                available_bandwidth_mbps=622.0)
        )
        assert d.granted

    def test_evening_over_available(self):
        d = self.engine().evaluate(
            ctx(bandwidth_mbps=700.0, time_of_day_h=20.0,
                available_bandwidth_mbps=622.0)
        )
        assert not d.granted

    def test_boundary_8am_is_not_business(self):
        # "Time > 8am" is strict: at exactly 8am the off-hours branch applies.
        d = self.engine().evaluate(
            ctx(bandwidth_mbps=100.0, time_of_day_h=8.0,
                available_bandwidth_mbps=622.0)
        )
        assert d.granted

    def test_other_user_denied(self):
        d = self.engine().evaluate(ctx(user=BOB, bandwidth_mbps=1.0))
        assert not d.granted


class TestFigure6PolicyB:
    """BB-B: 10 Mb/s for ATLAS members or ESnet capability holders."""

    def engine(self):
        return compile_policy(POLICY_FILE_B_FIG6, name="BB-B")

    def test_atlas_member(self):
        d = self.engine().evaluate(
            ctx(groups=frozenset({"Atlas"}), bandwidth_mbps=10.0)
        )
        assert d.granted

    def test_atlas_member_over_cap(self):
        d = self.engine().evaluate(
            ctx(groups=frozenset({"Atlas"}), bandwidth_mbps=11.0)
        )
        assert not d.granted

    def test_esnet_capability(self):
        d = self.engine().evaluate(
            ctx(capability_issuers=frozenset({"ESnet"}), bandwidth_mbps=10.0)
        )
        assert d.granted

    def test_atlas_over_cap_falls_through_to_esnet(self):
        # Member of Atlas AND holder of ESnet capability, 10 Mb/s: the Atlas
        # branch grants; over 10 both branches fail.
        d = self.engine().evaluate(
            ctx(
                groups=frozenset({"Atlas"}),
                capability_issuers=frozenset({"ESnet"}),
                bandwidth_mbps=12.0,
            )
        )
        assert not d.granted

    def test_nobody(self):
        assert not self.engine().evaluate(ctx(bandwidth_mbps=1.0)).granted


class TestFigure6PolicyC:
    """BB-C: >= 5 Mb/s only with ESnet capability AND a valid CPU
    reservation; below 5 Mb/s anyone."""

    def engine(self):
        return compile_policy(POLICY_FILE_C_FIG6, name="BB-C")

    def test_big_request_with_both(self):
        d = self.engine().evaluate(
            ctx(
                bandwidth_mbps=10.0,
                capability_issuers=frozenset({"ESnet"}),
                linked_reservations=(("cpu", "RES-111"),),
            )
        )
        assert d.granted

    def test_big_request_without_cpu_resv(self):
        d = self.engine().evaluate(
            ctx(bandwidth_mbps=10.0, capability_issuers=frozenset({"ESnet"}))
        )
        assert not d.granted

    def test_big_request_without_capability(self):
        d = self.engine().evaluate(
            ctx(bandwidth_mbps=10.0, linked_reservations=(("cpu", "RES-111"),))
        )
        assert not d.granted

    def test_big_request_with_invalid_cpu_resv(self):
        d = self.engine().evaluate(
            ctx(
                bandwidth_mbps=10.0,
                capability_issuers=frozenset({"ESnet"}),
                linked_reservations=(("cpu", "RES-111"),),
                linked_validator=lambda kind, handle: False,
            )
        )
        assert not d.granted

    def test_small_request_granted(self):
        assert self.engine().evaluate(ctx(bandwidth_mbps=4.9)).granted


class TestLiteralsAndOperators:
    def test_bandwidth_units(self):
        engine = compile_policy("If BW <= 1Gb/s\n    Return GRANT\nReturn DENY")
        assert engine.evaluate(ctx(bandwidth_mbps=999.0)).granted
        assert not engine.evaluate(ctx(bandwidth_mbps=1001.0)).granted

    def test_bytes_per_second_units(self):
        # 5MB/s = 40 Mb/s.
        engine = compile_policy("If BW <= 5MB/s\n    Return GRANT\nReturn DENY")
        assert engine.evaluate(ctx(bandwidth_mbps=40.0)).granted
        assert not engine.evaluate(ctx(bandwidth_mbps=41.0)).granted

    def test_kb_units(self):
        engine = compile_policy("If BW >= 500Kb/s\n    Return GRANT\nReturn DENY")
        assert engine.evaluate(ctx(bandwidth_mbps=0.5)).granted
        assert not engine.evaluate(ctx(bandwidth_mbps=0.4)).granted

    def test_clock_times(self):
        engine = compile_policy(
            "If Time >= 8:30am and Time < 5pm\n    Return GRANT\nReturn DENY"
        )
        assert engine.evaluate(ctx(time_of_day_h=8.5)).granted
        assert not engine.evaluate(ctx(time_of_day_h=8.0)).granted
        assert not engine.evaluate(ctx(time_of_day_h=17.0)).granted

    def test_midnight_noon(self):
        engine = compile_policy("If Time < 12pm\n    Return GRANT\nReturn DENY")
        assert engine.evaluate(ctx(time_of_day_h=0.0)).granted  # 12am == 0
        assert not engine.evaluate(ctx(time_of_day_h=12.0)).granted

    def test_quoted_strings(self):
        engine = compile_policy(
            'If Group = "ATLAS experiment"\n    Return GRANT\nReturn DENY'
        )
        assert engine.evaluate(ctx(groups=frozenset({"ATLAS experiment"}))).granted

    def test_or_operator(self):
        engine = compile_policy(
            "If User = Alice or User = Bob\n    Return GRANT\nReturn DENY"
        )
        assert engine.evaluate(ctx(user=ALICE)).granted
        assert engine.evaluate(ctx(user=BOB)).granted
        assert not engine.evaluate(ctx(user=DN.make("G", "D", "Eve"))).granted

    def test_not_operator(self):
        engine = compile_policy("If not User = Bob\n    Return GRANT\nReturn DENY")
        assert engine.evaluate(ctx(user=ALICE)).granted
        assert not engine.evaluate(ctx(user=BOB)).granted

    def test_parentheses(self):
        engine = compile_policy(
            "If (User = Alice or User = Bob) and BW <= 10Mb/s\n"
            "    Return GRANT\nReturn DENY"
        )
        assert engine.evaluate(ctx(user=BOB, bandwidth_mbps=5.0)).granted
        assert not engine.evaluate(ctx(user=BOB, bandwidth_mbps=15.0)).granted

    def test_inline_return(self):
        engine = compile_policy("If User = Alice Return GRANT\nReturn DENY")
        assert engine.evaluate(ctx(user=ALICE)).granted
        assert not engine.evaluate(ctx(user=BOB)).granted

    def test_comments_and_blank_lines(self):
        engine = compile_policy(
            "# domain A policy\n\nIf User = Alice  # the boss\n"
            "    Return GRANT\nReturn DENY"
        )
        assert engine.evaluate(ctx(user=ALICE)).granted

    def test_case_insensitive_keywords(self):
        engine = compile_policy("if User = Alice\n    return GRANT\nRETURN DENY")
        assert engine.evaluate(ctx(user=ALICE)).granted


class TestSyntaxErrors:
    def test_empty(self):
        with pytest.raises(PolicySyntaxError):
            parse_policy("")

    def test_bad_return(self):
        with pytest.raises(PolicySyntaxError, match="GRANT or DENY"):
            parse_policy("Return MAYBE")

    def test_if_without_block(self):
        with pytest.raises(PolicySyntaxError, match="indented block"):
            parse_policy("If User = Alice\nReturn DENY")

    def test_unknown_statement(self):
        with pytest.raises(PolicySyntaxError):
            parse_policy("While User = Alice\n    Return GRANT")

    def test_dangling_else(self):
        with pytest.raises(PolicySyntaxError):
            parse_policy("Else Return DENY")

    def test_bad_condition(self):
        with pytest.raises(PolicySyntaxError):
            parse_policy("If User =\n    Return GRANT")

    def test_bare_variable_condition(self):
        with pytest.raises(PolicySyntaxError, match="not a condition"):
            parse_policy("If User\n    Return GRANT")

    def test_trailing_tokens(self):
        with pytest.raises(PolicySyntaxError, match="trailing"):
            parse_policy("If User = Alice Bob\n    Return GRANT")

    def test_bad_character(self):
        with pytest.raises(PolicySyntaxError):
            parse_policy("If User = @lice\n    Return GRANT")

    def test_bad_indent_jump(self):
        with pytest.raises(PolicySyntaxError):
            parse_policy(
                "If User = Alice\n    Return GRANT\n        Return DENY"
            )

    def test_else_with_non_return_inline(self):
        with pytest.raises(PolicySyntaxError, match="inline Return"):
            parse_policy(
                "If User = Alice\n    Return GRANT\nElse While x\nReturn DENY"
            )

    def test_line_number_in_error(self):
        with pytest.raises(PolicySyntaxError, match="line 2"):
            parse_policy("Return DENY\nbogus line here")

    def test_invalid_time(self):
        with pytest.raises(PolicySyntaxError):
            parse_policy("If Time > 13pm\n    Return GRANT")


@given(st.floats(min_value=0.0, max_value=1000.0))
def test_threshold_property(bw):
    """Property: the parsed 10Mb/s threshold behaves exactly like <= 10.0."""
    engine = compile_policy("If BW <= 10Mb/s\n    Return GRANT\nReturn DENY")
    decision = engine.evaluate(RequestContext(bandwidth_mbps=bw))
    assert decision.granted == (bw <= 10.0)


class TestAttributeAccessor:
    def test_attribute_present(self):
        engine = compile_policy(
            "If Attribute(te_class) = gold\n    Return GRANT\nReturn DENY"
        )
        granted = engine.evaluate(ctx(attributes=(("te_class", "gold"),)))
        assert granted.granted

    def test_attribute_absent_is_none(self):
        engine = compile_policy(
            "If Attribute(te_class) = gold\n    Return GRANT\nReturn DENY"
        )
        assert not engine.evaluate(ctx()).granted

    def test_attribute_numeric_comparison(self):
        engine = compile_policy(
            "If Attribute(priority) >= 5\n    Return GRANT\nReturn DENY"
        )
        assert engine.evaluate(ctx(attributes=(("priority", 7.0),))).granted
        assert not engine.evaluate(ctx(attributes=(("priority", 3.0),))).granted

    def test_attribute_bare_condition_truthiness(self):
        engine = compile_policy(
            "If Attribute(vip)\n    Return GRANT\nReturn DENY"
        )
        assert engine.evaluate(ctx(attributes=(("vip", True),))).granted
        assert not engine.evaluate(ctx(attributes=(("vip", False),))).granted
        assert not engine.evaluate(ctx()).granted


@given(st.integers(min_value=1, max_value=12))
def test_indent_width_insensitive_property(width):
    """Any consistent indent width parses to the same decision function."""
    pad = " " * width
    source = (
        "If User = Alice\n"
        f"{pad}If BW <= 10Mb/s\n"
        f"{pad}{pad}Return GRANT\n"
        f"{pad}Else Return DENY\n"
        "Return DENY"
    )
    engine = compile_policy(source)
    assert engine.evaluate(ctx(user=ALICE, bandwidth_mbps=5.0)).granted
    assert not engine.evaluate(ctx(user=ALICE, bandwidth_mbps=15.0)).granted
    assert not engine.evaluate(ctx(user=BOB, bandwidth_mbps=5.0)).granted


def test_tab_indentation_equivalent():
    tabbed = (
        "If User = Alice\n\tIf BW <= 10Mb/s\n\t\tReturn GRANT\nReturn DENY"
    )
    engine = compile_policy(tabbed)
    assert engine.evaluate(ctx(user=ALICE, bandwidth_mbps=5.0)).granted
