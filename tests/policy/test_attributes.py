"""Tests for signed assertions."""

import pytest

from repro.crypto.dn import DN
from repro.crypto.keys import SimulatedScheme
from repro.errors import PolicyError
from repro.policy.attributes import make_assertion

ISSUER = DN.make("Grid", "ESnet", "GroupServer")
ALICE = DN.make("Grid", "DomainA", "Alice")

SCHEME = SimulatedScheme()


@pytest.fixture()
def keys(rng):
    return SCHEME.generate(rng)


class TestSignedAssertion:
    def test_roundtrip(self, keys):
        a = make_assertion(
            issuer=ISSUER,
            issuer_key=keys.private,
            subject=ALICE,
            attributes={"group": "physicists"},
        )
        assert a.verify(keys.public)
        assert a.get("group") == "physicists"
        assert a.get("missing") is None
        assert a.get("missing", 1) == 1

    def test_tamper_detected(self, keys):
        a = make_assertion(
            issuer=ISSUER,
            issuer_key=keys.private,
            subject=ALICE,
            attributes={"group": "physicists"},
        )
        forged = a.with_tampered_attribute("group", "administrators")
        assert not forged.verify(keys.public)

    def test_wrong_key_rejected(self, keys, rng):
        other = SCHEME.generate(rng)
        a = make_assertion(
            issuer=ISSUER,
            issuer_key=keys.private,
            subject=ALICE,
            attributes={"x": 1},
        )
        assert not a.verify(other.public)

    def test_validity_window(self, keys):
        a = make_assertion(
            issuer=ISSUER,
            issuer_key=keys.private,
            subject=ALICE,
            attributes={"x": 1},
            valid_from=10.0,
            valid_until=20.0,
        )
        assert not a.verify(keys.public, at_time=5.0)
        assert a.verify(keys.public, at_time=15.0)
        assert not a.verify(keys.public, at_time=25.0)

    def test_infinite_validity_encodable(self, keys):
        a = make_assertion(
            issuer=ISSUER,
            issuer_key=keys.private,
            subject=ALICE,
            attributes={"x": 1},
        )
        assert a.verify(keys.public, at_time=1e12)
        # to_cbe must not raise on the infinite bound.
        from repro.crypto import canonical

        canonical.encode(a.to_cbe())

    def test_empty_attributes_rejected(self, keys):
        with pytest.raises(PolicyError):
            make_assertion(
                issuer=ISSUER, issuer_key=keys.private, subject=ALICE, attributes={}
            )

    def test_multiple_attributes(self, keys):
        a = make_assertion(
            issuer=ISSUER,
            issuer_key=keys.private,
            subject=ALICE,
            attributes={"group": "atlas", "role": "analyst"},
        )
        assert a.get("group") == "atlas"
        assert a.get("role") == "analyst"
        assert a.verify(keys.public)
