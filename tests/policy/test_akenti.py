"""Tests for the Akenti-style authorization engine."""

import pytest

from repro.crypto.dn import DN
from repro.crypto.keys import SimulatedScheme
from repro.errors import PolicyError
from repro.policy.akenti import (
    AkentiEngine,
    UseCondition,
    make_user_attribute_certificate,
)

ADMIN = DN.make("Grid", "LBNL", "Admin")
ROGUE = DN.make("Grid", "Evil", "Admin")
ALICE = DN.make("Grid", "DomainA", "Alice")
BOB = DN.make("Grid", "DomainA", "Bob")

SCHEME = SimulatedScheme()


@pytest.fixture()
def admin_keys(rng):
    return SCHEME.generate(rng)


@pytest.fixture()
def engine(admin_keys):
    eng = AkentiEngine()
    eng.register_resource(
        "network/DomainB",
        ca_list={ADMIN: admin_keys.public},
        use_conditions=[{"group": "atlas"}, {"clearance": "standard"}],
    )
    return eng


def attr_cert(admin_keys, user=ALICE, attribute="group", value="atlas",
              resource="network/DomainB", issuer=ADMIN):
    return make_user_attribute_certificate(
        issuer=issuer,
        issuer_key=admin_keys.private,
        user=user,
        resource=resource,
        attribute=attribute,
        value=value,
    )


class TestAkenti:
    def test_all_conditions_met(self, engine, admin_keys):
        certs = [
            attr_cert(admin_keys),
            attr_cert(admin_keys, attribute="clearance", value="standard"),
        ]
        assert engine.authorize("network/DomainB", ALICE, certs)

    def test_missing_condition(self, engine, admin_keys):
        certs = [attr_cert(admin_keys)]  # no clearance cert
        assert not engine.authorize("network/DomainB", ALICE, certs)

    def test_wrong_value(self, engine, admin_keys):
        certs = [
            attr_cert(admin_keys, value="cms"),
            attr_cert(admin_keys, attribute="clearance", value="standard"),
        ]
        assert not engine.authorize("network/DomainB", ALICE, certs)

    def test_issuer_not_on_ca_list_ignored(self, engine, rng):
        rogue_keys = SCHEME.generate(rng)
        certs = [
            attr_cert(rogue_keys, issuer=ROGUE),
            attr_cert(rogue_keys, issuer=ROGUE, attribute="clearance",
                      value="standard"),
        ]
        assert not engine.authorize("network/DomainB", ALICE, certs)

    def test_cert_for_other_user_ignored(self, engine, admin_keys):
        certs = [
            attr_cert(admin_keys, user=BOB),
            attr_cert(admin_keys, attribute="clearance", value="standard"),
        ]
        assert not engine.authorize("network/DomainB", ALICE, certs)

    def test_cert_for_other_resource_ignored(self, engine, admin_keys):
        certs = [
            attr_cert(admin_keys, resource="network/DomainZ"),
            attr_cert(admin_keys, attribute="clearance", value="standard"),
        ]
        assert not engine.authorize("network/DomainB", ALICE, certs)

    def test_tampered_cert_ignored(self, engine, admin_keys):
        good = attr_cert(admin_keys)
        forged = good.with_tampered_attribute("group", "atlas-forged")
        certs = [
            forged,
            attr_cert(admin_keys, attribute="clearance", value="standard"),
        ]
        assert not engine.authorize("network/DomainB", ALICE, certs)

    def test_unknown_resource(self, engine):
        with pytest.raises(PolicyError):
            engine.authorize("ghost", ALICE, [])

    def test_no_conditions_means_open(self, admin_keys):
        eng = AkentiEngine()
        eng.register_resource("open", ca_list={ADMIN: admin_keys.public})
        assert eng.authorize("open", ALICE, [])

    def test_gathered_attributes(self, engine, admin_keys):
        certs = [
            attr_cert(admin_keys),
            attr_cert(admin_keys, attribute="clearance", value="standard"),
        ]
        attrs = engine.gathered_attributes("network/DomainB", ALICE, certs)
        assert attrs == {"group": "atlas", "clearance": "standard"}

    def test_empty_use_condition_rejected(self):
        with pytest.raises(PolicyError):
            UseCondition.make({})

    def test_add_ca_and_condition_later(self, admin_keys, rng):
        eng = AkentiEngine()
        policy = eng.register_resource("r")
        other = SCHEME.generate(rng)
        policy.add_ca(ADMIN, admin_keys.public)
        policy.add_use_condition({"group": "atlas"})
        assert not eng.authorize("r", ALICE, [])
        assert eng.authorize("r", ALICE, [attr_cert(admin_keys, resource="r")])
