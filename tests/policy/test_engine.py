"""Tests for the policy engine, contexts, and hand-built trees."""

import pytest

from repro.crypto.dn import DN
from repro.errors import PolicyEvaluationError
from repro.policy.engine import (
    Decision,
    If,
    PolicyDecision,
    PolicyEngine,
    RequestContext,
    Return,
)
from repro.policy.rules import (
    And,
    Call,
    Comparison,
    Literal,
    Not,
    Or,
    PredicateCondition,
    TrueCondition,
    Variable,
)

ALICE = DN.make("Grid", "DomainA", "Alice")


def ctx(**kwargs):
    return RequestContext(user=ALICE, **kwargs)


class TestRequestContext:
    def test_builtin_variables(self):
        c = ctx(bandwidth_mbps=10.0, time_of_day_h=9.0, source_domain="A")
        assert c.variable("User") == "Alice"
        assert c.variable("BW") == 10.0
        assert c.variable("Time") == 9.0
        assert c.variable("Source_Domain") == "A"
        assert c.variable("Avail_BW") == float("inf")

    def test_no_user(self):
        c = RequestContext()
        assert c.variable("User") is None

    def test_attribute_fallback(self):
        c = ctx(attributes=(("custom", 42),))
        assert c.variable("custom") == 42
        assert c.attribute("custom") == 42
        assert c.attribute("missing", "d") == "d"

    def test_unknown_variable_raises(self):
        with pytest.raises(PolicyEvaluationError):
            ctx().variable("Nonsense")

    def test_linked_reservation(self):
        c = ctx(linked_reservations=(("cpu", "RES-111"),))
        assert c.linked_reservation("cpu") == "RES-111"
        assert c.linked_reservation("disk") is None
        assert c.has_valid_linked_reservation("cpu")  # no validator: presence
        assert not c.has_valid_linked_reservation("disk")

    def test_linked_validator(self):
        c = ctx(
            linked_reservations=(("cpu", "RES-111"),),
            linked_validator=lambda kind, handle: handle == "RES-999",
        )
        assert not c.has_valid_linked_reservation("cpu")

    def test_predicates(self):
        c = ctx(predicates={"IsVip": lambda ctx: True})
        assert c.call_predicate("IsVip")
        with pytest.raises(PolicyEvaluationError):
            c.call_predicate("Unknown")

    def test_with_updates(self):
        c = ctx(bandwidth_mbps=1.0)
        c2 = c.with_updates(bandwidth_mbps=2.0)
        assert c.bandwidth_mbps == 1.0
        assert c2.bandwidth_mbps == 2.0

    def test_decision_not_truth_testable(self):
        with pytest.raises(TypeError):
            bool(Decision.GRANT)


class TestConditions:
    def test_comparison_operators(self):
        c = ctx(bandwidth_mbps=10.0)
        bw = Variable("BW")
        assert Comparison(bw, "=", Literal(10.0)).holds(c)
        assert Comparison(bw, "!=", Literal(5.0)).holds(c)
        assert Comparison(bw, "<=", Literal(10.0)).holds(c)
        assert Comparison(bw, ">=", Literal(10.0)).holds(c)
        assert not Comparison(bw, "<", Literal(10.0)).holds(c)
        assert Comparison(bw, ">", Literal(5.0)).holds(c)

    def test_invalid_operator(self):
        with pytest.raises(PolicyEvaluationError):
            Comparison(Variable("BW"), "~", Literal(1.0))

    def test_group_membership_semantics(self):
        c = ctx(groups=frozenset({"Atlas"}))
        cond = Comparison(Variable("Group"), "=", Literal("Atlas"))
        assert cond.holds(c)
        assert not cond.holds(ctx(groups=frozenset()))

    def test_group_not_membership(self):
        c = ctx(groups=frozenset({"Atlas"}))
        assert Comparison(Variable("Group"), "!=", Literal("CMS")).holds(c)

    def test_set_ordering_undefined(self):
        c = ctx(groups=frozenset({"Atlas"}))
        with pytest.raises(PolicyEvaluationError):
            Comparison(Variable("Group"), "<", Literal("Atlas")).holds(c)

    def test_issued_by_capability(self):
        c = ctx(capability_issuers=frozenset({"ESnet"}))
        cond = Comparison(Call("Issued_by", "Capability"), "=", Literal("ESnet"))
        assert cond.holds(c)
        assert not cond.holds(ctx())

    def test_issued_by_wrong_arg(self):
        with pytest.raises(PolicyEvaluationError):
            Call("Issued_by", "Group").evaluate(ctx())

    def test_has_valid_resv_calls(self):
        c = ctx(linked_reservations=(("cpu", "R1"),))
        assert PredicateCondition(Call("HasValidCPUResv", "RAR")).holds(c)
        assert not PredicateCondition(Call("HasValidDiskResv", "RAR")).holds(c)

    def test_custom_predicate_via_call(self):
        c = ctx(predicates={"Accredited_Physicist": lambda ctx: True})
        assert PredicateCondition(Call("Accredited_Physicist", "requestor")).holds(c)

    def test_and_or_not(self):
        t, f = TrueCondition(), Not(TrueCondition())
        c = ctx()
        assert And((t, t)).holds(c)
        assert not And((t, f)).holds(c)
        assert Or((f, t)).holds(c)
        assert not Or((f, f)).holds(c)
        assert Not(f).holds(c)

    def test_incomparable_types(self):
        c = ctx()
        with pytest.raises(PolicyEvaluationError):
            Comparison(Variable("User"), "<", Literal(3.0)).holds(c)


class TestEngine:
    def test_first_return_wins(self):
        engine = PolicyEngine(
            [Return(Decision.GRANT, "first"), Return(Decision.DENY, "second")]
        )
        decision = engine.evaluate(ctx())
        assert decision.granted
        assert decision.reason == "first"

    def test_default_deny(self):
        engine = PolicyEngine([])
        decision = engine.evaluate(ctx())
        assert decision.decision is Decision.DENY
        assert "default" in decision.reason

    def test_default_override(self):
        engine = PolicyEngine([], default=Decision.GRANT)
        assert engine.evaluate(ctx()).granted

    def test_if_branches(self):
        engine = PolicyEngine(
            [
                If(
                    Comparison(Variable("BW"), "<=", Literal(10.0)),
                    then=(Return(Decision.GRANT),),
                    orelse=(Return(Decision.DENY, "too big"),),
                )
            ]
        )
        assert engine.evaluate(ctx(bandwidth_mbps=5.0)).granted
        denied = engine.evaluate(ctx(bandwidth_mbps=50.0))
        assert not denied.granted
        assert denied.reason == "too big"

    def test_fallthrough_after_if(self):
        engine = PolicyEngine(
            [
                If(Not(TrueCondition()), then=(Return(Decision.GRANT),)),
                Return(Decision.DENY, "fell through"),
            ]
        )
        assert engine.evaluate(ctx()).reason == "fell through"

    def test_nested_if(self):
        engine = PolicyEngine(
            [
                If(
                    Comparison(Variable("User"), "=", Literal("Alice")),
                    then=(
                        If(
                            Comparison(Variable("BW"), "<=", Literal(10.0)),
                            then=(Return(Decision.GRANT),),
                        ),
                    ),
                ),
                Return(Decision.DENY),
            ]
        )
        assert engine.evaluate(ctx(bandwidth_mbps=5.0)).granted
        assert not engine.evaluate(ctx(bandwidth_mbps=20.0)).granted

    def test_condition_error_wrapped(self):
        class Boom(TrueCondition):
            def holds(self, ctx):
                raise ValueError("boom")

        engine = PolicyEngine([If(Boom(), then=(Return(Decision.GRANT),))])
        with pytest.raises(PolicyEvaluationError, match="boom"):
            engine.evaluate(ctx())

    def test_policy_decision_modifications(self):
        d = PolicyDecision(Decision.GRANT, modifications=(("cost", 5),))
        assert d.granted
        assert d.modifications == (("cost", 5),)
