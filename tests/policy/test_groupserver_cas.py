"""Tests for group servers and the Community Authorization Server."""

import pytest

from repro.crypto.capability import capability_set, is_capability_certificate
from repro.crypto.dn import DN
from repro.errors import PolicyError
from repro.policy.cas import CommunityAuthorizationServer
from repro.policy.engine import RequestContext
from repro.policy.groupserver import GroupServer

ALICE = DN.make("Grid", "DomainA", "Alice")
BOB = DN.make("Grid", "DomainA", "Bob")


@pytest.fixture()
def server(rng):
    gs = GroupServer(
        DN.make("Grid", "HEP", "GroupServer"), rng=rng, scheme="simulated"
    )
    gs.add_member("physicists", ALICE)
    gs.add_member("ATLAS experiment", ALICE)
    return gs


class TestGroupServer:
    def test_membership_queries(self, server):
        assert server.is_member(ALICE, "physicists")
        assert not server.is_member(BOB, "physicists")
        assert not server.is_member(ALICE, "chemists")
        assert server.queries == 3

    def test_groups_listing(self, server):
        assert server.groups() == ("ATLAS experiment", "physicists")

    def test_remove_member(self, server):
        server.remove_member("physicists", ALICE)
        assert not server.is_member(ALICE, "physicists")
        with pytest.raises(PolicyError):
            server.remove_member("physicists", ALICE)

    def test_predicate_integration(self, server):
        pred = server.predicate("physicists")
        assert pred(RequestContext(user=ALICE))
        assert not pred(RequestContext(user=BOB))
        assert not pred(RequestContext(user=None))

    def test_assertion_roundtrip(self, server):
        a = server.assert_membership(ALICE, "physicists")
        assert server.verify_assertion(a)
        assert a.get("group") == "physicists"

    def test_assertion_for_non_member_rejected(self, server):
        with pytest.raises(PolicyError):
            server.assert_membership(BOB, "physicists")

    def test_assertion_stale_after_removal(self, server):
        a = server.assert_membership(ALICE, "physicists")
        server.remove_member("physicists", ALICE)
        assert not server.verify_assertion(a)

    def test_foreign_assertion_rejected(self, server, rng):
        other = GroupServer(
            DN.make("Grid", "Other", "GS"), rng=rng, scheme="simulated"
        )
        other.add_member("physicists", ALICE)
        a = other.assert_membership(ALICE, "physicists")
        assert not server.verify_assertion(a)

    def test_tampered_assertion_rejected(self, server):
        a = server.assert_membership(ALICE, "ATLAS experiment")
        forged = a.with_tampered_attribute("group", "physicists")
        assert not server.verify_assertion(forged)


@pytest.fixture()
def cas(rng):
    c = CommunityAuthorizationServer("ESnet", rng=rng, scheme="simulated")
    c.grant(ALICE, ["member", "premium-bandwidth"])
    return c


class TestCAS:
    def test_default_name(self, cas):
        assert cas.name == DN.make("Grid", "ESnet", "CAS")

    def test_capabilities_qualified(self, cas):
        assert cas.capabilities_of(ALICE) == {
            "ESnet:member",
            "ESnet:premium-bandwidth",
        }

    def test_prequalified_capability_not_requalified(self, cas):
        cas.grant(ALICE, ["Other:thing"])
        assert "Other:thing" in cas.capabilities_of(ALICE)

    def test_grid_login_issues_capability_cert(self, cas):
        cred = cas.grid_login(ALICE)
        cert = cred.certificate
        assert is_capability_certificate(cert)
        assert cert.issuer == cas.name
        assert capability_set(cert) == {"ESnet:member", "ESnet:premium-bandwidth"}
        assert cas.logins == 1

    def test_grid_login_validity(self, cas):
        cred = cas.grid_login(ALICE, at_time=100.0, validity_s=3600.0)
        assert cred.certificate.valid_at(100.0)
        assert cred.certificate.valid_at(3700.0)
        assert not cred.certificate.valid_at(3701.0)

    def test_grid_login_without_grants_rejected(self, cas):
        with pytest.raises(PolicyError):
            cas.grid_login(BOB)

    def test_revoke_user(self, cas):
        cas.revoke_user(ALICE)
        with pytest.raises(PolicyError):
            cas.grid_login(ALICE)

    def test_fresh_proxy_key_per_login(self, cas):
        a = cas.grid_login(ALICE)
        b = cas.grid_login(ALICE)
        assert a.certificate.public_key != b.certificate.public_key

    def test_login_signature_verifies(self, cas):
        cred = cas.grid_login(ALICE)
        assert cred.certificate.verify_signature(cas.public_key)
