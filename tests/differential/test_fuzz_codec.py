"""Fuzz-style negative tests: the zero-copy decoder never crashes.

Deterministic adversarial sweeps over real protocol wires and
hand-crafted hostile frames.  The contract under attack input:

* the decoder raises only *typed* errors — ones the ingress path
  converts into a typed denial (never a segfault-analogue like an
  uncaught IndexError or a hang);
* pure wire-level corruption (truncation, depth bombs, over-long
  lengths, duplicate keys) raises :class:`WireCodecError` specifically;
* the eager decoder agrees on accept/reject for every single mutation,
  byte for byte, bit for bit — and on the accepted value when both
  accept.
"""

import random

import pytest

from repro.core.codec import (
    TruncatedWireError,
    WireCodecError,
    WireDepthError,
    WireView,
    from_wire,
    to_wire,
)
from repro.errors import ReproError

from tests.vectors.build_vectors import build_all

#: What HopByHopProtocol._decode_received catches (a decoder error
#: outside this set would escape process_ingress as a crash).  ReproError
#: is in the set because decoding re-runs protocol-object validators —
#: this sweep originally caught a crafted res_spec escaping ingress as a
#: ReservationStateError.
INGRESS_CATCHABLE = (
    ReproError, KeyError, ValueError, TypeError, AttributeError,
    OverflowError,
)


def _frame(tag: bytes, payload: bytes) -> bytes:
    return tag + len(payload).to_bytes(4, "big") + payload


def _classify(decode, wire):
    try:
        return ("ok", to_wire(decode(wire)))
    except INGRESS_CATCHABLE as exc:
        return ("err", exc)


def _zero_copy(wire):
    return WireView.parse(wire).materialize()


@pytest.fixture(scope="module")
def vectors():
    return build_all()


class TestTruncation:
    def test_every_prefix_rejected_by_both(self, vectors):
        wire = vectors["rar_user"]
        for cut in range(len(wire)):
            prefix = wire[:cut]
            old = _classify(from_wire, prefix)
            new = _classify(_zero_copy, prefix)
            assert old[0] == "err" and new[0] == "err", (
                f"prefix of {cut} bytes accepted"
            )

    def test_every_suffix_extension_rejected(self, vectors):
        wire = vectors["denial"]
        for junk in (b"\x00", b"N" + b"\x00" * 4, b"\xff" * 7):
            extended = wire + junk
            assert _classify(from_wire, extended)[0] == "err"
            with pytest.raises(WireCodecError):
                _zero_copy(extended)


class TestHostileFrames:
    def test_overlong_length_is_truncation(self):
        for tag in (b"S", b"L", b"M", b"B"):
            case = tag + (0xFFFFFFFF).to_bytes(4, "big") + b"payload"
            with pytest.raises(TruncatedWireError):
                _zero_copy(case)
            assert _classify(from_wire, case)[0] == "err"

    def test_depth_bomb_rejected_cheaply(self):
        bomb = _frame(b"N", b"")
        for _ in range(250):
            bomb = _frame(b"L", bomb)
        with pytest.raises(WireDepthError):
            _zero_copy(bomb)
        assert _classify(from_wire, bomb)[0] == "err"

    def test_depth_at_bound_still_parses(self):
        nested = _frame(b"N", b"")
        for _ in range(150):
            nested = _frame(b"L", nested)
        assert _zero_copy(nested) == from_wire(nested)

    def test_duplicate_map_keys_rejected(self):
        key = _frame(b"S", b"a")
        value = _frame(b"N", b"")
        wire = _frame(b"M", key + value + key + value)
        with pytest.raises(WireCodecError):
            _zero_copy(wire)
        assert _classify(from_wire, wire)[0] == "err"

    def test_unsorted_map_keys_rejected(self):
        pair_b = _frame(b"S", b"b") + _frame(b"N", b"")
        pair_a = _frame(b"S", b"a") + _frame(b"N", b"")
        wire = _frame(b"M", pair_b + pair_a)
        with pytest.raises(WireCodecError):
            _zero_copy(wire)
        assert _classify(from_wire, wire)[0] == "err"

    def test_unknown_tag_rejected(self):
        for tag in (b"Z", b"\x00", b"\xff"):
            wire = _frame(tag, b"x")
            with pytest.raises(WireCodecError):
                _zero_copy(wire)
            assert _classify(from_wire, wire)[0] == "err"

    def test_noncanonical_integer_rejected(self):
        wire = _frame(b"I", b"\x00\x01")  # leading zero byte
        with pytest.raises(WireCodecError):
            _zero_copy(wire)
        assert _classify(from_wire, wire)[0] == "err"


class TestBitFlipSweep:
    """Every bit of every byte of a real signed RAR wire, both modes."""

    @pytest.mark.parametrize("vector", ["rar_user", "denial"])
    def test_full_sweep_parity(self, vectors, vector):
        wire = bytearray(vectors[vector])
        mismatches = []
        for position in range(len(wire)):
            original = wire[position]
            for bit in range(8):
                wire[position] = original ^ (1 << bit)
                mutated = bytes(wire)
                old = _classify(from_wire, mutated)
                new = _classify(_zero_copy, mutated)
                if old[0] != new[0] or (
                    old[0] == "ok" and old[1] != new[1]
                ):
                    mismatches.append((position, bit, old[0], new[0]))
            wire[position] = original
        assert not mismatches, (
            f"{len(mismatches)} accept/value divergences, first: "
            f"{mismatches[0]}"
        )

    def test_append_chain_sample_sweep(self, vectors):
        """The 4.7 kB append chain, every byte, one pseudo-random bit
        (a full 8-bit sweep of this wire runs in CI's bench job only)."""
        wire = bytearray(vectors["rar_append_3hop"])
        rng = random.Random(10)
        for position in range(len(wire)):
            original = wire[position]
            wire[position] = original ^ (1 << rng.randrange(8))
            mutated = bytes(wire)
            assert _classify(from_wire, mutated)[0] == \
                _classify(_zero_copy, mutated)[0]
            wire[position] = original


class TestGarbage:
    def test_random_garbage_never_crashes(self):
        rng = random.Random(1234)
        for _ in range(500):
            blob = rng.randbytes(rng.randrange(0, 64))
            old = _classify(from_wire, blob)
            new = _classify(_zero_copy, blob)
            assert old[0] == new[0]
            assert new[0] == "err" or old[1] == new[1]

    def test_kind_and_peek_total_on_garbage(self):
        rng = random.Random(4321)
        for _ in range(200):
            blob = rng.randbytes(rng.randrange(6, 64))
            try:
                view = WireView.parse(blob)
            except WireCodecError:
                continue
            assert view.kind() is None or isinstance(view.kind(), str)
            assert view.peek("type", default="absent") is not None
