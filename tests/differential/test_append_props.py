"""Property suite: append-only chains == rebuilt nested chains.

For random hop chains (length, rates, deadlines drawn by Hypothesis),
building the chain in append mode (each BB signs the inner layer's
digest link) and in nested mode (each BB re-signs the whole inner
envelope) must be observably identical: same layers, same signers, same
payload fields, same verification verdict at every layer — and the same
*rejection* when any inner layer is tampered with.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bb.reservations import ReservationRequest
from repro.core.codec import WireView, from_wire, to_wire
from repro.core.messages import (
    F_INNER,
    F_INNER_DIGEST,
    make_bb_rar,
    make_user_rar,
    unwrap_rar_layers,
)
from repro.crypto.dn import DN
from repro.crypto.x509 import CertificateAuthority
from repro.errors import SignallingError, TamperedMessageError

SETTINGS = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAX_HOPS = 5


class Chainyard:
    """One CA, one user, MAX_HOPS BB identities — built once."""

    def __init__(self):
        ca = CertificateAuthority(
            DN.make("Grid", "X", "CA-X"),
            rng=random.Random(5),
            scheme="simulated",
        )
        self.user_keys, self.user_cert = ca.issue_keypair(
            DN.make("Grid", "X", "User")
        )
        self.bbs = [
            ca.issue_keypair(DN.make("Grid", f"D{i}", f"BB-{i}"))
            for i in range(MAX_HOPS + 1)
        ]
        self.keys_of = {
            str(self.user_cert.subject): self.user_keys.public,
            **{
                str(cert.subject): keys.public
                for keys, cert in self.bbs
            },
        }

    def build(self, *, hops, rate, deadline, append):
        request = ReservationRequest(
            source_host="h0.D0",
            destination_host=f"h0.D{hops}",
            source_domain="D0",
            destination_domain=f"D{hops}",
            rate_mbps=rate,
            start=0.0,
            end=3600.0,
        )
        rar = make_user_rar(
            request=request,
            source_bb=self.bbs[0][1].subject,
            user=self.user_cert.subject,
            user_key=self.user_keys.private,
            deadline=deadline,
        )
        previous_cert = self.user_cert
        for hop in range(hops):
            keys, cert = self.bbs[hop]
            rar = make_bb_rar(
                inner=rar,
                introduced_cert=previous_cert,
                downstream=self.bbs[hop + 1][1].subject,
                bb=cert.subject,
                bb_key=keys.private,
                append=append,
            )
            previous_cert = cert
        return rar


YARD = Chainyard()


def chain_ok(rar, keys_of):
    """Full-chain verdict: unwrap (checking append links) and verify
    every layer's signature against its signer's key."""
    try:
        layers = unwrap_rar_layers(rar)
    except (TamperedMessageError, SignallingError):
        return False
    return all(
        layer.verify(keys_of[str(layer.signer)]) for layer in layers
    )


def layer_facts(rar):
    return [
        (
            str(layer.signer),
            tuple(k for k in layer.keys() if k != F_INNER_DIGEST),
            layer.get("deadline"),
            str(layer.get("downstream_dn")),
        )
        for layer in unwrap_rar_layers(rar)
    ]


chain_specs = st.builds(
    dict,
    hops=st.integers(min_value=1, max_value=MAX_HOPS),
    rate=st.sampled_from((5.0, 25.0, 155.0)),
    deadline=st.sampled_from((None, 30.0, 90.0)),
)


@SETTINGS
@given(spec=chain_specs)
def test_append_equals_rebuild(spec):
    appended = YARD.build(append=True, **spec)
    nested = YARD.build(append=False, **spec)

    assert layer_facts(appended) == layer_facts(nested)
    assert chain_ok(appended, YARD.keys_of)
    assert chain_ok(nested, YARD.keys_of)

    # Both shapes survive both codecs byte-stably.
    for rar in (appended, nested):
        wire = to_wire(rar)
        assert to_wire(from_wire(wire)) == wire
        assert to_wire(WireView.parse(wire).materialize()) == wire


@SETTINGS
@given(
    spec=chain_specs.filter(lambda s: s["hops"] >= 2),
    tamper_layer=st.integers(min_value=1, max_value=MAX_HOPS),
)
def test_tampered_inner_layer_rejected_in_both_modes(spec, tamper_layer):
    """Swapping any inner layer for a differently-signed one breaks the
    append chain's digest link exactly as it breaks the nested chain's
    enclosing signature."""
    for append in (True, False):
        rar = YARD.build(append=append, **spec)
        layers = unwrap_rar_layers(rar)
        index = min(tamper_layer, len(layers) - 1)
        forged = layers[index].with_tampered_field("tampered", True)
        doctored = layers[index - 1].with_tampered_field(F_INNER, forged)
        for outer in reversed(layers[: index - 1]):
            doctored = outer.with_tampered_field(F_INNER, doctored)
        assert not chain_ok(doctored, YARD.keys_of), (
            f"append={append}: tampered layer {index} still verifies"
        )


def test_append_layer_signature_covers_the_link():
    """Stripping the digest link (or the inner envelope) from an
    append-mode layer is itself tamper-evident."""
    rar = YARD.build(hops=2, rate=25.0, deadline=None, append=True)
    assert rar.get(F_INNER_DIGEST) is not None

    stripped_inner = rar.with_tampered_field(F_INNER, None)
    try:
        ok = chain_ok(stripped_inner, YARD.keys_of)
    except TamperedMessageError:
        ok = False
    assert not ok

    # Replacing the digest with the digest of a forged inner layer
    # invalidates this layer's signature (the link is signed).
    forged_inner = rar.get(F_INNER).with_tampered_field("tampered", True)
    from repro.core.envelope import chain_link_digest

    relinked = rar.with_tampered_field(
        F_INNER_DIGEST, chain_link_digest(forged_inner)
    ).with_tampered_field(F_INNER, forged_inner)
    assert not chain_ok(relinked, YARD.keys_of)
