"""Property suite: the zero-copy codec is the eager codec.

Three properties over Hypothesis-generated values (scalars, containers,
and real protocol objects — requests, envelopes in both chain modes,
certificates):

* round-trip: ``from_wire(to_wire(x))`` is a fix point and the
  zero-copy :class:`~repro.core.codec.WireView` materializes the exact
  same value;
* byte stability: re-encoding either decoder's result reproduces the
  original wire bytes;
* bit-flip parity: flipping any bit anywhere in a valid wire leaves
  both decoders in agreement — both accept (with equal values) or both
  reject, and the zero-copy rejection is always one of the exception
  types the ingress path converts to a typed denial.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.codec import WireView, from_wire, to_wire
from repro.core.messages import make_bb_rar, make_user_rar
from repro.core.testbed import build_linear_testbed
from repro.errors import ReproError
from repro.net.packet import DSCP

SETTINGS = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Exactly what HopByHopProtocol._decode_received converts into a
#: MalformedMessageError — a decoder error outside this set would
#: escape process_ingress as a crash.
INGRESS_CATCHABLE = (
    ReproError, KeyError, ValueError, TypeError, AttributeError,
    OverflowError,
)


def _protocol_pool():
    """Real protocol objects, both envelope chain modes included."""
    testbed = build_linear_testbed(["A", "B", "C"])
    alice = testbed.add_user("A", "Alice")
    request = testbed.make_request(
        source="A", destination="C", bandwidth_mbps=25.0,
    )
    rar_u = make_user_rar(
        request=request,
        source_bb=testbed.brokers["A"].dn,
        user=alice.dn,
        user_key=alice.keypair.private,
        deadline=30.0,
        traceparent="00-abc-def-01",
    )
    bb_a = testbed.brokers["A"]
    wrapped = {
        mode: make_bb_rar(
            inner=rar_u,
            introduced_cert=alice.certificate,
            downstream=testbed.brokers["B"].dn,
            bb=bb_a.dn,
            bb_key=bb_a.keypair.private,
            append=(mode == "append"),
        )
        for mode in ("append", "nested")
    }
    return (
        request,
        rar_u,
        wrapped["append"],
        wrapped["nested"],
        alice.certificate,
        alice.dn,
        alice.keypair.public,
    )


POOL = _protocol_pool()

scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2 ** 80), max_value=2 ** 80)
    | st.floats(allow_nan=False)
    | st.text(max_size=24)
    | st.binary(max_size=24)
    | st.sampled_from(tuple(DSCP))
    | st.sampled_from(POOL)
)

values = st.recursive(
    scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
    ),
    max_leaves=12,
)


@SETTINGS
@given(value=values)
def test_roundtrip_and_byte_stability(value):
    wire = to_wire(value)
    eager = from_wire(wire)
    view = WireView.parse(wire)
    materialized = view.materialize()

    assert materialized == eager
    assert to_wire(eager) == wire
    assert to_wire(materialized) == wire
    assert view.wire_size() == len(wire)
    # One round trip reaches the codec's fix point (lists become the
    # tuples the eager decoder always produced).
    assert from_wire(to_wire(eager)) == eager


def _classify(decode, wire):
    try:
        return ("ok", to_wire(decode(wire)))
    except Exception as exc:  # noqa: BLE001 - the property inspects it
        return ("err", exc)


@SETTINGS
@given(value=values, data=st.data())
def test_bit_flip_parity(value, data):
    wire = bytearray(to_wire(value))
    position = data.draw(
        st.integers(min_value=0, max_value=len(wire) - 1), label="byte"
    )
    bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
    wire[position] ^= 1 << bit
    mutated = bytes(wire)

    old = _classify(from_wire, mutated)
    new = _classify(lambda b: WireView.parse(b).materialize(), mutated)

    assert old[0] == new[0], (
        f"decoders disagree on acceptance: eager={old}, zero-copy={new}"
    )
    if old[0] == "ok":
        assert old[1] == new[1]
    else:
        assert isinstance(new[1], INGRESS_CATCHABLE), (
            f"zero-copy error {type(new[1]).__name__} would escape "
            f"process_ingress"
        )
        assert isinstance(old[1], INGRESS_CATCHABLE)


@SETTINGS
@given(value=values)
def test_kind_and_peek_never_raise(value):
    """kind()/peek() are total on any prefix-truncated wire: they answer
    or return the default, never raise — materialize() is the sole
    rejection authority (the ingress gate relies on this)."""
    wire = to_wire(value)
    for cut in (1, len(wire) // 2, len(wire) - 1, len(wire)):
        try:
            view = WireView.parse(wire[:cut])
        except Exception:
            continue  # parse may reject the outer frame; that is fine
        view.kind()
        view.peek("type")
        view.peek("deadline", default=-1.0)
