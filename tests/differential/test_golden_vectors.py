"""Golden-vector regression: both codecs, byte-for-byte, forever.

Every committed ``tests/vectors/*.bin`` must (a) parse identically
through the eager decoder and the zero-copy :class:`WireView`, (b)
re-encode to exactly the committed bytes, and (c) match a fresh
deterministic rebuild through ``tests/vectors/build_vectors.py`` — so
neither decoder drift, encoder drift, nor corpus drift can pass
unnoticed.
"""

import pytest

from repro.core.codec import WireView, from_wire, to_wire

from tests.vectors.build_vectors import VECTOR_DIR, build_all

NAMES = sorted(build_all())


@pytest.fixture(scope="module")
def fresh():
    return build_all()


@pytest.fixture(scope="module")
def committed():
    found = {
        path.stem: path.read_bytes()
        for path in VECTOR_DIR.glob("*.bin")
    }
    assert sorted(found) == NAMES, (
        "vector corpus out of sync with build_vectors.VECTORS — "
        "run: PYTHONPATH=src python tests/vectors/build_vectors.py"
    )
    return found


@pytest.mark.parametrize("name", NAMES)
def test_both_codecs_parse_identically(name, committed):
    wire = committed[name]
    eager = from_wire(wire)
    view = WireView.parse(wire)
    assert view.materialize() == eager
    assert view.wire_size() == len(wire)


@pytest.mark.parametrize("name", NAMES)
def test_reencode_is_byte_identical(name, committed):
    wire = committed[name]
    assert to_wire(from_wire(wire)) == wire
    assert to_wire(WireView.parse(wire).materialize()) == wire


@pytest.mark.parametrize("name", NAMES)
def test_fresh_rebuild_matches_committed_bytes(name, committed, fresh):
    assert fresh[name] == committed[name], (
        f"{name}: deterministic rebuild differs from the committed "
        f"vector — the wire encoding changed"
    )
