"""Plumbing for the differential harness.

``run_both(scenario)`` executes a zero-argument scenario callable twice
— once per :mod:`repro.core.fastpath` configuration — on completely
fresh state (the scenario builds its own testbed), and returns the two
results for comparison.  The normalizers below project protocol
outcomes and audit ledgers onto the fields that must be identical
across the modes, excluding the ones that differ *by design*:

* ``bytes`` / wire sizes — an append-mode RAR layer carries the signed
  inner digest on top of the inner envelope, so fast-path wires are a
  few dozen bytes larger per hop;
* ``correlation_id`` — minted fresh per signalling attempt;
* check-record ``source`` (optionally) — a batched run may answer a
  sub-verification from the shared batch cache scope where the
  sequential run verified fresh; the *verdict* must still match.
"""

import re

from repro.core import fastpath
from repro.core.messages import (
    F_DOMAIN,
    F_HANDLE,
    F_INNER,
    unwrap_rar_layers,
)

FAST = fastpath.FastPathConfig()
SLOW = fastpath.FastPathConfig().slow()


#: Process-global sequence identifiers (reservation handles, trace
#: correlation ids) keep counting across the two runs, so raw values
#: never match; renumbering them per run by order of first appearance
#: makes them comparable while still asserting the *same* identifier is
#: used in the same places.
_SEQ_IDS = re.compile(r"\b(RES-[A-Za-z0-9]+|req)-\d{6}\b")


def canonicalize(value, _memo=None):
    """Renumber process-global sequence ids in *value*, recursively."""
    memo = {} if _memo is None else _memo
    if isinstance(value, str):
        def repl(match):
            token = match.group(0)
            if token not in memo:
                memo[token] = f"{match.group(1)}-#{len(memo)}"
            return memo[token]
        return _SEQ_IDS.sub(repl, value)
    if isinstance(value, dict):
        return {
            canonicalize(k, memo): canonicalize(v, memo)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return type(value)(canonicalize(v, memo) for v in value)
    return value


def run_both(scenario):
    """Run *scenario* under the slow then the fast configuration.

    Returns ``(fast_result, slow_result)``, each canonicalized.  Each
    invocation must build all of its own state so nothing leaks across
    modes.
    """
    with fastpath.use_config(SLOW):
        slow = scenario()
    with fastpath.use_config(FAST):
        fast = scenario()
    return canonicalize(fast), canonicalize(slow)


def outcome_facts(outcome):
    """A :class:`~repro.core.hopbyhop.SignallingOutcome`, minus the
    fields that differ by design between envelope modes."""
    verified = outcome.verified
    return {
        "granted": outcome.granted,
        "handles": dict(outcome.handles),
        "denial_domain": outcome.denial_domain,
        "denial_reason": outcome.denial_reason,
        "latency_s": outcome.latency_s,
        "messages": outcome.messages,
        "retries": outcome.retries,
        "path": outcome.path,
        "cost": outcome.cost,
        "repository_lookups": outcome.repository_lookups,
        "rar_layers": (
            None if outcome.final_rar is None
            else [str(layer.signer)
                  for layer in unwrap_rar_layers(outcome.final_rar)]
        ),
        "verified": None if verified is None else {
            "user": str(verified.user),
            "path": tuple(str(d) for d in verified.path),
            "depth": verified.depth,
            "request": verified.request,
            "assertions": len(verified.assertions),
            "introduced": len(verified.introduced),
        },
        "approval_chain": (
            None if outcome.approval is None
            else approval_chain(outcome.approval)
        ),
    }


def approval_chain(approval):
    """(domain, handle, signer) per approval layer, outermost first."""
    chain = []
    current = approval
    while current is not None:
        chain.append((
            current.get(F_DOMAIN),
            current.get(F_HANDLE),
            str(current.signer),
        ))
        current = current.get(F_INNER)
    return chain


def source_outcome_facts(outcome):
    """A :class:`~repro.core.sourcedomain.SourceDomainOutcome` minus
    wire sizes."""
    return {
        "granted": outcome.granted,
        "complete": outcome.complete,
        "handles": dict(outcome.handles),
        "failures": dict(outcome.failures),
        "skipped": outcome.skipped,
        "latency_s": outcome.latency_s,
        "messages": outcome.messages,
        "path": outcome.path,
    }


def decision_rows(ledger, *, provenance_sources=True):
    """Project a :class:`~repro.obs.audit.ledger.DecisionLedger` onto
    comparable rows (no correlation ids, optionally no cache-vs-fresh
    provenance sources)."""
    rows = []
    for record in ledger.records():
        checks = tuple(
            (
                check.kind,
                check.subject,
                check.verdict,
                check.source if provenance_sources else "",
            )
            for check in record.checks
        )
        rows.append((
            record.kind.value,
            record.at_time,
            record.domain,
            record.handle,
            record.user,
            record.granted,
            record.reason,
            record.reason_code,
            record.rate_mbps,
            record.window,
            record.upstream,
            record.downstream,
            record.matched_rule,
            record.rules_fired,
            record.retries,
            checks,
        ))
    return rows


def ingress_facts(report):
    """An :class:`~repro.core.hopbyhop.IngressReport` as a comparable
    tuple (full reason text included — the decoders are string-exact on
    these shapes; the fuzz suite covers the doubly-corrupted tail where
    only the reason *code* is guaranteed)."""
    return (
        report.accepted,
        report.work_units,
        report.verified,
        report.reason,
        report.reason_code,
        report.traceparent,
        report.deadline,
    )
