"""Differential harness: the fast miss path is behaviour-identical.

Every scenario in this package runs twice on fresh state — once under
the production fast-path configuration (append-only envelope chains,
zero-copy ingress codec, batched verification) and once under the
all-legacy configuration (``FastPathConfig().slow()``) — and asserts
the two runs produced identical decisions, ledgers, audit provenance
and reason codes.  Wire *bytes* legitimately differ between the modes
(an append-mode layer additionally carries the signed link digest), so
the comparisons are over semantics, never over raw envelope bytes.

The same proof also runs at suite scale: CI executes the whole tier-1
suite under ``pytest --slow-path`` (see ``tests/conftest.py``), making
every existing test a differential test as well.
"""
