"""Differential scenarios: every figure/claim workload, fast vs slow.

Each test runs one paper scenario twice on fresh testbeds — once under
the legacy miss path, once under the fast path — and asserts identical
decisions, handles, denial reasons, reason codes, audit ledgers and
verification semantics.  See ``tests/differential/__init__`` for what
is (and deliberately is not) compared.
"""

from repro.core.codec import to_wire
from repro.core.concurrent import ReservationJob
from repro.core.messages import make_user_rar
from repro.core.testbed import build_linear_testbed
from repro.faults.chaos import run_chaos
from repro.obs import audit as obs_audit

from tests.differential._harness import (
    decision_rows,
    ingress_facts,
    outcome_facts,
    run_both,
    source_outcome_facts,
)


def _audited(scenario):
    """Run *scenario(ledger)* with a scoped decision ledger enabled."""
    def wrapped():
        ledger = obs_audit.enable()
        try:
            return scenario(ledger)
        finally:
            obs_audit.disable()
    return wrapped


class TestFourDomainReservation:
    """The paper's standard scenario: Alice reserves A -> D end to end."""

    def test_grant_identical(self):
        @_audited
        def scenario(ledger):
            testbed = build_linear_testbed(["A", "B", "C", "D"])
            alice = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                alice, source="A", destination="D",
                bandwidth_mbps=50.0, duration=3600.0,
            )
            return outcome_facts(outcome), decision_rows(ledger)

        fast, slow = run_both(scenario)
        assert fast == slow
        facts, rows = fast
        assert facts["granted"]
        assert set(facts["handles"]) == {"A", "B", "C", "D"}
        assert facts["verified"]["user"].endswith("CN=Alice")
        assert rows  # the ledger saw the decisions

    def test_denial_at_transit_domain_identical(self):
        @_audited
        def scenario(ledger):
            testbed = build_linear_testbed(["A", "B", "C", "D"])
            testbed.set_policy("C", "Return DENY")
            alice = testbed.add_user("A", "Alice")
            outcome = testbed.reserve(
                alice, source="A", destination="D",
                bandwidth_mbps=50.0, duration=3600.0,
            )
            return outcome_facts(outcome), decision_rows(ledger)

        fast, slow = run_both(scenario)
        assert fast == slow
        facts, _ = fast
        assert not facts["granted"]
        assert facts["denial_domain"] == "C"
        assert facts["denial_reason"]

    def test_capacity_exhaustion_reason_identical(self):
        """Admission (not policy) denial: the second oversubscribing
        request is refused with the same reason text in both modes."""
        def scenario():
            testbed = build_linear_testbed(["A", "B", "C"])
            alice = testbed.add_user("A", "Alice")
            first = testbed.reserve(
                alice, source="A", destination="C", bandwidth_mbps=100.0,
            )
            second = testbed.reserve(
                alice, source="A", destination="C", bandwidth_mbps=100.0,
            )
            return outcome_facts(first), outcome_facts(second)

        fast, slow = run_both(scenario)
        assert fast == slow
        first, second = fast
        assert first["granted"] and not second["granted"]


class TestTunnelScenario:
    """Aggregate tunnels with end-domain-only flow signalling (§7)."""

    def test_establish_and_allocate_identical(self):
        def scenario():
            testbed = build_linear_testbed(["A", "B", "C", "D"])
            alice = testbed.add_user("A", "Alice")
            request = testbed.make_request(
                source="A", destination="D", bandwidth_mbps=50.0,
                duration=7200.0,
            )
            tunnel, outcome = testbed.tunnels.establish(alice, request)
            facts = outcome_facts(outcome)
            if tunnel is None:
                return facts, None
            allocation, latency, messages = testbed.tunnels.allocate_flow(
                tunnel.tunnel_id, alice, rate_mbps=5.0,
                start=0.0, end=3600.0,
            )
            return facts, (
                allocation.rate_mbps, latency, messages,
                tunnel.allocated_mbps(0.0, 3600.0),
            )

        fast, slow = run_both(scenario)
        assert fast == slow
        facts, flow = fast
        assert facts["granted"]
        assert flow is not None


class TestMisreservationAttack:
    """Figure 4: a source-domain agent skips a transit domain."""

    def test_skip_domain_outcome_identical(self):
        @_audited
        def scenario(ledger):
            testbed = build_linear_testbed(["A", "B", "C", "D"])
            mallory = testbed.add_user("A", "Mallory")
            for domain in ("B", "D"):
                testbed.introduce_user_to(mallory, domain)
            request = testbed.make_request(
                source="A", destination="D", bandwidth_mbps=50.0,
            )
            outcome = testbed.end_to_end_agent.reserve(
                mallory, request, skip_domains=["C"],
                rollback_on_failure=False,
            )
            return source_outcome_facts(outcome), decision_rows(ledger)

        fast, slow = run_both(scenario)
        assert fast == slow
        facts, _ = fast
        assert facts["skipped"] == ("C",)
        assert not facts["complete"]

    def test_concurrent_source_domain_identical(self):
        """Concurrent Approach 1 uses the batched-verification scope on
        the fast path; per-domain outcomes must not change.  Provenance
        *sources* may differ (cache vs fresh), so the ledger comparison
        here masks them; the verdicts themselves must match."""
        @_audited
        def scenario(ledger):
            testbed = build_linear_testbed(["A", "B", "C"])
            alice = testbed.add_user("A", "Alice")
            for domain in ("B", "C"):
                testbed.introduce_user_to(alice, domain)
            request = testbed.make_request(
                source="A", destination="C", bandwidth_mbps=25.0,
            )
            outcome = testbed.end_to_end_agent.reserve(
                alice, request, concurrent=True,
            )
            return (
                source_outcome_facts(outcome),
                decision_rows(ledger, provenance_sources=False),
            )

        fast, slow = run_both(scenario)
        assert fast == slow
        facts, _ = fast
        assert facts["granted"] and facts["complete"]


class TestConcurrentBatch:
    """A ConcurrentSignaller burst (the batched-crypto consumer)."""

    def test_batch_outcomes_identical(self):
        def scenario():
            testbed = build_linear_testbed(["A", "B", "C", "D"])
            users = [
                testbed.add_user("A", name)
                for name in ("U0", "U1", "U2", "U3")
            ]
            jobs = [
                ReservationJob(
                    user=user,
                    request=testbed.make_request(
                        source="A", destination="D",
                        bandwidth_mbps=20.0 + 5.0 * i,
                    ),
                )
                for i, user in enumerate(users)
            ]
            result = testbed.concurrent_signaller(concurrency=4).run(jobs)
            return [
                (item.error,
                 None if item.outcome is None
                 else outcome_facts(item.outcome))
                for item in result.scheduled
            ], result.makespan_s

        fast, slow = run_both(scenario)
        assert fast == slow
        scheduled, _ = fast
        assert all(error == "" for error, _ in scheduled)
        assert all(facts["granted"] for _, facts in scheduled)


class TestIngressDifferential:
    """process_ingress reports — gate, decode, verify — fast vs slow."""

    @staticmethod
    def _wire_and_mutations():
        testbed = build_linear_testbed(["A", "B"])
        bob = testbed.add_user("B", "Bob")
        request = testbed.make_request(
            source="B", destination="A", bandwidth_mbps=5.0,
            start=1800.0, duration=1800.0,
        )
        envelope = make_user_rar(
            request=request,
            source_bb=testbed.brokers["B"].dn,
            user=bob.dn,
            user_key=bob.keypair.private,
            deadline=25.0,
            traceparent="00-feed-beef-01",
        )
        wire = to_wire(envelope)
        # A wire whose res_spec violates the reservation invariants:
        # canonical floats are hex strings, so overwriting the start
        # payload (1800.0) with the end payload (3600.0) keeps every
        # frame length intact but decodes to end <= start.  It must come
        # back as a typed denial, not as a ReservationStateError
        # escaping process_ingress.
        start_hex = (1800.0).hex().encode("ascii")
        end_hex = (3600.0).hex().encode("ascii")
        assert len(start_hex) == len(end_hex)
        assert wire.count(start_hex) == 1
        hostile = wire.replace(start_hex, end_hex)
        return testbed, bob, wire, hostile

    def test_reports_identical_for_every_delivery(self):
        def scenario():
            testbed, bob, wire, hostile = self._wire_and_mutations()
            deliveries = {
                "well-formed": wire,
                "truncated": wire[:12],
                "bit-flipped": bytes([wire[0] ^ 0x40]) + wire[1:],
                "garbage": b"\x00" * 48,
                "invalid-res-spec": hostile,
            }
            reports = {}
            for name, payload in deliveries.items():
                reports[name] = ingress_facts(
                    testbed.hop_by_hop.process_ingress(
                        "B", payload, peer=str(bob.dn),
                        peer_certificate=bob.certificate, at_time=0.0,
                    )
                )
            return reports

        fast, slow = run_both(scenario)
        assert fast == slow
        assert fast["well-formed"][0] is True
        assert fast["well-formed"][5] == "00-feed-beef-01"  # traceparent
        assert fast["well-formed"][6] == 25.0               # deadline
        for name in ("truncated", "bit-flipped", "garbage",
                     "invalid-res-spec"):
            accepted, _, verified, reason, reason_code = fast[name][:5]
            assert not accepted and not verified
            assert reason and reason_code

    def test_batch_ingress_matches_per_message(self):
        def scenario():
            testbed, bob, wire, hostile = self._wire_and_mutations()
            messages = [wire, wire[:20], hostile, wire]
            batch = testbed.hop_by_hop.process_ingress_batch(
                "B", messages, peer=str(bob.dn),
                peer_certificate=bob.certificate, at_time=0.0,
            )
            return [ingress_facts(r) for r in batch]

        fast, slow = run_both(scenario)
        assert fast == slow
        assert fast[0][0] is True


class TestChaosSlice:
    """A deterministic slice of the single-fault chaos matrix."""

    def test_chaos_trials_identical(self):
        def scenario():
            report = run_chaos(seed=3, trials=12, audit=True)
            trials = [
                (t.spec, t.granted, t.denial_reason, t.injected,
                 t.retries, t.violations, t.audit_violations)
                for t in report.trials
            ]
            ledger_rows = (
                decision_rows(report.ledger)
                if report.ledger is not None else None
            )
            return report.schedule_digest, trials, ledger_rows

        fast, slow = run_both(scenario)
        assert fast[0] == slow[0]          # same fault schedule
        assert fast[1] == slow[1]          # same per-trial verdicts
        assert fast[2] == slow[2]          # same audit ledger
        assert all(not t[5] and not t[6] for t in fast[1])
