"""Property suite: batched verification == sequential verification.

Hypothesis draws arbitrary batch compositions — valid users, a second
valid user, a revoked signer, an expired certificate, a forged
signature, duplicates of any of them — and asserts that
:func:`repro.crypto.batch.verify_rar_batch` produces, for every item,
exactly the verdict (or exactly the error, by type *and* message) that
a sequential cold-cache :func:`repro.core.trust.verify_rar` produces.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.messages import make_user_rar
from repro.core.testbed import build_linear_testbed
from repro.core.trust import verify_rar
from repro.crypto.batch import BatchItem, verify_rar_batch
from repro.crypto.dn import DN
from repro.errors import ReproError

AT_TIME = 100.0

SETTINGS = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

MEMBER_NAMES = ("alice", "carol", "revoked", "expired", "forged")


class World:
    """One domain's BB plus five member kinds, two RAR variants each."""

    def __init__(self):
        self.testbed = build_linear_testbed(["A", "B"])
        self.bb = self.testbed.brokers["A"]
        ca = self.testbed.domain_cas["A"]
        self.bb.truststore.add_revocation_checker(ca.is_revoked)

        alice = self.testbed.add_user("A", "Alice")
        carol = self.testbed.add_user("A", "Carol")
        bob = self.testbed.add_user("A", "Bob")
        ca.revoke(bob.certificate.serial)
        eve_keys, eve_cert = ca.issue_keypair(
            DN.make("Grid", "A", "Eve"),
            rng=self.testbed.rng,
            not_after=AT_TIME - 1.0,
        )

        def rars(dn, key, rates=(10.0, 20.0)):
            return tuple(
                make_user_rar(
                    request=self.testbed.make_request(
                        source="A", destination="B", bandwidth_mbps=rate,
                    ),
                    source_bb=self.bb.dn,
                    user=dn,
                    user_key=key,
                )
                for rate in rates
            )

        # name -> (rar variants, certificate presented by the peer)
        self.members = {
            "alice": (rars(alice.dn, alice.keypair.private),
                      alice.certificate),
            "carol": (rars(carol.dn, carol.keypair.private),
                      carol.certificate),
            "revoked": (rars(bob.dn, bob.keypair.private),
                        bob.certificate),
            "expired": (rars(eve_cert.subject, eve_keys.private),
                        eve_cert),
            # Claims to be Alice but is signed with Carol's key.
            "forged": (rars(alice.dn, carol.keypair.private),
                       alice.certificate),
        }

    def item(self, name, variant):
        variants, certificate = self.members[name]
        return BatchItem(
            rar=variants[variant],
            verifier=self.bb.dn,
            peer_certificate=certificate,
        )


@pytest.fixture(scope="module")
def world():
    return World()


def sequential_verdict(world, item):
    """One cold verify_rar call, as (ok, type name, message, summary)."""
    try:
        verified = verify_rar(
            item.rar,
            verifier=item.verifier,
            peer_certificate=item.peer_certificate,
            truststore=world.bb.truststore,
            at_time=AT_TIME,
        )
    except ReproError as exc:
        return (False, type(exc).__name__, str(exc), None)
    return (True, "", "", verified_summary(verified))


def batch_verdict(result):
    if result.error is not None:
        return (False, type(result.error).__name__, str(result.error), None)
    return (True, "", "", verified_summary(result.verified))


def verified_summary(verified):
    return (
        str(verified.user),
        verified.request,
        tuple(str(dn) for dn in verified.path),
        verified.depth,
        len(verified.assertions),
        len(verified.introduced),
    )


@st.composite
def batches(draw):
    size = draw(st.integers(min_value=1, max_value=8))
    return [
        (draw(st.sampled_from(MEMBER_NAMES)),
         draw(st.integers(min_value=0, max_value=1)))
        for _ in range(size)
    ]


@SETTINGS
@given(spec=batches())
def test_batch_matches_sequential(world, spec):
    items = [world.item(name, variant) for name, variant in spec]

    expected = [sequential_verdict(world, item) for item in items]
    results = verify_rar_batch(
        items, truststore=world.bb.truststore, at_time=AT_TIME,
    )

    assert [batch_verdict(r) for r in results] == expected

    # Dedup bookkeeping: an item is marked deduplicated exactly when an
    # identical (rar, verifier, peer cert) triple appeared earlier.
    seen = set()
    for (name, variant), result in zip(spec, results):
        assert result.deduplicated == ((name, variant) in seen)
        seen.add((name, variant))

    # The revoked / expired / forged members never verify; the valid
    # members never fail (the strategy guarantees nothing else).
    for (name, _), result in zip(spec, results):
        assert result.ok == (name in ("alice", "carol"))


def test_require_reraises_the_item_error(world):
    results = verify_rar_batch(
        [world.item("forged", 0), world.item("alice", 0)],
        truststore=world.bb.truststore,
        at_time=AT_TIME,
    )
    with pytest.raises(ReproError):
        results[0].require()
    assert results[1].require() is results[1].verified


def test_explicit_shared_caches_do_not_change_verdicts(world):
    from repro.crypto import cache as verification_cache

    items = [world.item(name, 0) for name in MEMBER_NAMES]
    baseline = [
        batch_verdict(r) for r in verify_rar_batch(
            items, truststore=world.bb.truststore, at_time=AT_TIME,
        )
    ]
    caches = verification_cache.VerificationCaches()
    for _ in range(2):  # second pass answers from the shared caches
        again = [
            batch_verdict(r) for r in verify_rar_batch(
                items, truststore=world.bb.truststore, at_time=AT_TIME,
                caches=caches,
            )
        ]
        assert again == baseline


def test_mid_batch_revocation_is_not_papered_over(world):
    """A verdict cached by an earlier batch must be re-guarded: once the
    signer is revoked, the same bytes stop verifying even with the same
    warm caches."""
    from repro.crypto import cache as verification_cache

    testbed = build_linear_testbed(["A", "B"])
    bb = testbed.brokers["A"]
    ca = testbed.domain_cas["A"]
    bb.truststore.add_revocation_checker(ca.is_revoked)
    user = testbed.add_user("A", "Uma")
    rar = make_user_rar(
        request=testbed.make_request(
            source="A", destination="B", bandwidth_mbps=5.0,
        ),
        source_bb=bb.dn,
        user=user.dn,
        user_key=user.keypair.private,
    )
    item = BatchItem(
        rar=rar, verifier=bb.dn, peer_certificate=user.certificate,
    )
    caches = verification_cache.VerificationCaches()

    first = verify_rar_batch(
        [item], truststore=bb.truststore, at_time=AT_TIME, caches=caches,
    )
    assert first[0].ok

    ca.revoke(user.certificate.serial)
    second = verify_rar_batch(
        [item], truststore=bb.truststore, at_time=AT_TIME, caches=caches,
    )
    assert not second[0].ok
    # The post-revocation batch error must equal a cold sequential call.
    fresh = []
    try:
        verify_rar(
            item.rar, verifier=item.verifier,
            peer_certificate=item.peer_certificate,
            truststore=bb.truststore, at_time=AT_TIME,
        )
    except ReproError as exc:
        fresh = [type(exc).__name__, str(exc)]
    assert fresh == [
        type(second[0].error).__name__, str(second[0].error),
    ]
