"""Tests for the bandwidth broker's local decision pipeline."""

import pytest

from repro.bb.admission import AdmissionController
from repro.bb.broker import BandwidthBroker
from repro.bb.policyserver import PolicyServer, VerifiedInfo
from repro.bb.reservations import ReservationRequest, ReservationState
from repro.bb.sla import SLA, SLS
from repro.crypto.dn import DN
from repro.net.packet import DSCP
from repro.policy.language import compile_policy

ALICE = DN.make("Grid", "DomainA", "Alice")

OPEN_POLICY = "If BW <= 100Mb/s\n    Return GRANT\nReturn DENY"


def make_broker(domain="B", policy=OPEN_POLICY, intra=1000.0, **resources):
    admission = AdmissionController()
    admission.add_resource("intra", intra)
    for name, cap in resources.items():
        admission.add_resource(name.replace("_", ":"), cap)
    server = PolicyServer(domain, compile_policy(policy, name=domain))
    return BandwidthBroker(
        domain,
        policy_server=server,
        admission=admission,
        scheme="simulated",
    )


def request(rate=10.0, start=0.0, end=3600.0, **kwargs):
    defaults = dict(
        source_host="h0.A",
        destination_host="h0.C",
        source_domain="A",
        destination_domain="C",
        rate_mbps=rate,
        start=start,
        end=end,
    )
    defaults.update(kwargs)
    return ReservationRequest(**defaults)


VERIFIED = VerifiedInfo(user=ALICE)


class TestPeering:
    def test_register_sla_directions(self):
        bb = make_broker("B")
        bb.register_sla(SLA("A", "B"))
        bb.register_sla(SLA("B", "C"))
        assert "A" in bb.slas_in
        assert "C" in bb.slas_out
        assert bb.peer_domains() == {"A", "C"}

    def test_unrelated_sla_rejected(self):
        bb = make_broker("B")
        from repro.errors import SLAError

        with pytest.raises(SLAError):
            bb.register_sla(SLA("X", "Y"))

    def test_default_identity(self):
        bb = make_broker("B")
        assert bb.dn == DN.make("Grid", "B", "BB-B")


class TestAdmit:
    def test_grant_books_capacity(self):
        bb = make_broker("B", ingress_A=155.0, egress_C=155.0)
        bb.register_sla(SLA("A", "B"))
        bb.register_sla(SLA("B", "C"))
        outcome = bb.admit(request(), VERIFIED, upstream="A", downstream="C")
        assert outcome.granted
        assert outcome.reservation.state is ReservationState.GRANTED
        assert bb.admission.schedule("ingress:A").load_at(100.0) == 10.0
        assert bb.admission.schedule("intra").load_at(100.0) == 10.0
        assert bb.admission.schedule("egress:C").load_at(100.0) == 10.0

    def test_source_domain_books_no_ingress(self):
        bb = make_broker("A", egress_B=155.0)
        bb.register_sla(SLA("A", "B"))
        outcome = bb.admit(request(), VERIFIED, upstream=None, downstream="B")
        assert outcome.granted
        assert bb.admission.schedule("egress:B").load_at(100.0) == 10.0

    def test_destination_domain_books_no_egress(self):
        bb = make_broker("C", ingress_B=155.0)
        bb.register_sla(SLA("B", "C"))
        outcome = bb.admit(request(), VERIFIED, upstream="B", downstream=None)
        assert outcome.granted
        assert bb.admission.schedule("ingress:B").load_at(100.0) == 10.0

    def test_missing_upstream_sla_denied(self):
        bb = make_broker("B")
        outcome = bb.admit(request(), VERIFIED, upstream="A", downstream=None)
        assert not outcome.granted
        assert "no SLA" in outcome.reason
        assert outcome.reservation.state is ReservationState.DENIED

    def test_sla_rate_violation_denied(self):
        bb = make_broker("B")
        bb.register_sla(SLA("A", "B", slss={DSCP.EF: SLS(max_rate_mbps=5.0)}))
        outcome = bb.admit(request(rate=10.0), VERIFIED, upstream="A")
        assert not outcome.granted
        assert "exceeds SLA" in outcome.reason

    def test_policy_denial(self):
        bb = make_broker("B", policy="Return DENY")
        outcome = bb.admit(request(), VERIFIED)
        assert not outcome.granted
        assert outcome.decision is not None
        assert outcome.reservation.denial_reason

    def test_capacity_denial(self):
        bb = make_broker("B", intra=15.0)
        first = bb.admit(request(rate=10.0), VERIFIED)
        assert first.granted
        second = bb.admit(request(rate=10.0), VERIFIED)
        assert not second.granted
        assert "available" in second.reason

    def test_capacity_freed_after_cancel(self):
        bb = make_broker("B", intra=15.0)
        first = bb.admit(request(rate=10.0), VERIFIED)
        bb.cancel(first.reservation.handle)
        assert first.reservation.state is ReservationState.CANCELLED
        second = bb.admit(request(rate=10.0), VERIFIED)
        assert second.granted

    def test_disjoint_intervals_share_capacity(self):
        bb = make_broker("B", intra=15.0)
        assert bb.admit(request(rate=10.0, start=0.0, end=100.0), VERIFIED).granted
        assert bb.admit(request(rate=10.0, start=100.0, end=200.0), VERIFIED).granted

    def test_avail_bw_policy_integration(self):
        bb = make_broker(
            "B", policy="If BW <= Avail_BW\n    Return GRANT\nReturn DENY",
            intra=25.0,
        )
        assert bb.admit(request(rate=20.0), VERIFIED).granted
        # 5 Mb/s left; policy itself now denies a 10 Mb/s ask.
        outcome = bb.admit(request(rate=10.0), VERIFIED)
        assert not outcome.granted
        assert "Return DENY" in outcome.reason


class StubConfigurator:
    def __init__(self):
        self.flows = []
        self.torn = []
        self.ingress = {}

    def provision_flow(self, domain, reservation):
        self.flows.append((domain, reservation.handle))

    def teardown_flow(self, domain, reservation):
        self.torn.append((domain, reservation.handle))

    def provision_ingress(self, domain, upstream, service_class, total_rate_mbps):
        self.ingress[(domain, upstream, service_class)] = total_rate_mbps


class TestClaimAndEdgeConfig:
    def make_with_configurator(self, domain="C"):
        bb = make_broker(domain, ingress_B=155.0)
        bb.register_sla(SLA("B", domain))
        bb.configurator = StubConfigurator()
        return bb

    def test_claim_activates_and_configures_ingress(self):
        bb = self.make_with_configurator()
        outcome = bb.admit(request(), VERIFIED, upstream="B")
        resv = bb.claim(outcome.reservation.handle)
        assert resv.state is ReservationState.ACTIVE
        assert bb.configurator.ingress[("C", "B", DSCP.EF)] == 10.0
        # Transit reservations do not get per-flow classifiers here.
        assert bb.configurator.flows == []

    def test_source_claim_provisions_flow(self):
        bb = make_broker("A", egress_B=155.0)
        bb.register_sla(SLA("A", "B"))
        bb.configurator = StubConfigurator()
        outcome = bb.admit(request(), VERIFIED, downstream="B")
        bb.claim(outcome.reservation.handle)
        assert bb.configurator.flows == [("A", outcome.reservation.handle)]

    def test_ingress_aggregates_sum_and_shrink(self):
        bb = self.make_with_configurator()
        o1 = bb.admit(request(rate=10.0), VERIFIED, upstream="B")
        o2 = bb.admit(request(rate=20.0), VERIFIED, upstream="B")
        bb.claim(o1.reservation.handle)
        bb.claim(o2.reservation.handle)
        assert bb.configurator.ingress[("C", "B", DSCP.EF)] == 30.0
        bb.cancel(o2.reservation.handle)
        assert bb.configurator.ingress[("C", "B", DSCP.EF)] == 10.0

    def test_validate_handle(self):
        bb = self.make_with_configurator()
        outcome = bb.admit(request(start=100.0, end=200.0), VERIFIED, upstream="B")
        assert bb.validate_handle(outcome.reservation.handle)
        assert not bb.validate_handle(outcome.reservation.handle, at_time=50.0)
        assert not bb.validate_handle("ghost")

    def test_linked_validator_registration(self):
        bb = self.make_with_configurator()
        bb.register_linked_validator("cpu", lambda handle: handle == "CPU-1")
        assert bb._linked_validator("cpu", "CPU-1")
        assert not bb._linked_validator("cpu", "CPU-2")
        # Unregistered kinds fall back to the local network table.
        assert not bb._linked_validator("disk", "D-1")


class TestAuditLog:
    def test_admit_grant_logged(self):
        bb = make_broker("B", ingress_A=155.0)
        bb.register_sla(SLA("A", "B"))
        outcome = bb.admit(request(), VERIFIED, at_time=42.0, upstream="A")
        assert outcome.granted
        entry = bb.audit_log[-1]
        assert entry.event == "admit"
        assert entry.granted
        assert entry.at_time == 42.0
        assert entry.handle == outcome.reservation.handle
        assert entry.rate_mbps == 10.0
        assert entry.upstream == "A"
        assert "Alice" in entry.user

    def test_denials_logged_with_reason(self):
        bb = make_broker("B", policy="Return DENY")
        outcome = bb.admit(request(), VERIFIED)
        assert not outcome.granted
        entry = bb.audit_log[-1]
        assert not entry.granted
        assert entry.reason == outcome.reason

    def test_lifecycle_events_logged(self):
        bb = make_broker("B")
        outcome = bb.admit(request(), VERIFIED)
        bb.claim(outcome.reservation.handle)
        bb.cancel(outcome.reservation.handle)
        events = [e.event for e in bb.audit_log]
        assert events == ["admit", "claim", "cancel"]

    def test_sla_violation_logged(self):
        bb = make_broker("B")
        outcome = bb.admit(request(), VERIFIED, upstream="A")
        assert not outcome.granted
        assert "no SLA" in bb.audit_log[-1].reason

    def test_capacity_denial_logged(self):
        bb = make_broker("B", intra=5.0)
        outcome = bb.admit(request(rate=10.0), VERIFIED)
        assert not outcome.granted
        assert "available" in bb.audit_log[-1].reason
