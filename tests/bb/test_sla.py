"""Tests for SLAs and SLSs."""

import pytest

from repro.bb.sla import SLA, SLS
from repro.errors import SLAError, SLAViolationError
from repro.net.packet import DSCP


class TestSLS:
    def test_defaults(self):
        sls = SLS()
        assert sls.service_class is DSCP.EF
        assert sls.excess_treatment == "drop"

    def test_invalid_rate(self):
        with pytest.raises(SLAError):
            SLS(max_rate_mbps=0.0)

    def test_invalid_excess_treatment(self):
        with pytest.raises(SLAError):
            SLS(excess_treatment="teleport")

    def test_invalid_availability(self):
        with pytest.raises(SLAError):
            SLS(availability=0.0)
        with pytest.raises(SLAError):
            SLS(availability=1.5)

    def test_cbe_encodable(self):
        from repro.crypto import canonical

        canonical.encode(SLS(max_delay_ms=20.0).to_cbe())
        canonical.encode(SLS().to_cbe())


class TestSLA:
    def test_default_ef_sls(self):
        sla = SLA("A", "B")
        assert sla.sls_for(DSCP.EF).max_rate_mbps == 100.0

    def test_same_domain_rejected(self):
        with pytest.raises(SLAError):
            SLA("A", "A")

    def test_unknown_class_rejected(self):
        sla = SLA("A", "B")
        with pytest.raises(SLAViolationError, match="AF41"):
            sla.sls_for(DSCP.AF41)

    def test_profile_within(self):
        sla = SLA("A", "B", slss={DSCP.EF: SLS(max_rate_mbps=50.0)})
        sls = sla.check_profile(DSCP.EF, 50.0)
        assert sls.max_rate_mbps == 50.0

    def test_profile_rate_exceeded(self):
        sla = SLA("A", "B", slss={DSCP.EF: SLS(max_rate_mbps=50.0)})
        with pytest.raises(SLAViolationError, match="exceeds"):
            sla.check_profile(DSCP.EF, 50.1)

    def test_profile_burst_exceeded(self):
        sla = SLA("A", "B", slss={DSCP.EF: SLS(max_burst_bits=1000.0)})
        with pytest.raises(SLAViolationError, match="burst"):
            sla.check_profile(DSCP.EF, 1.0, burst_bits=2000.0)

    def test_profile_zero_rate(self):
        sla = SLA("A", "B")
        with pytest.raises(SLAViolationError):
            sla.check_profile(DSCP.EF, 0.0)

    def test_multiple_classes(self):
        sla = SLA(
            "A",
            "B",
            slss={
                DSCP.EF: SLS(max_rate_mbps=10.0),
                DSCP.AF41: SLS(service_class=DSCP.AF41, max_rate_mbps=100.0),
            },
        )
        sla.check_profile(DSCP.AF41, 90.0)
        with pytest.raises(SLAViolationError):
            sla.check_profile(DSCP.EF, 90.0)
