"""Tests for reservation objects and tables."""

import pytest

from repro.bb.reservations import (
    ReservationRequest,
    ReservationState,
    ReservationTable,
)
from repro.crypto.dn import DN
from repro.errors import ReservationStateError, UnknownReservationError

ALICE = DN.make("Grid", "DomainA", "Alice")


def req(**kwargs):
    defaults = dict(
        source_host="h0.A",
        destination_host="h0.C",
        source_domain="A",
        destination_domain="C",
        rate_mbps=10.0,
        start=0.0,
        end=3600.0,
    )
    defaults.update(kwargs)
    return ReservationRequest(**defaults)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ReservationStateError):
            req(rate_mbps=0.0)
        with pytest.raises(ReservationStateError):
            req(start=10.0, end=10.0)

    def test_duration(self):
        assert req().duration == 3600.0

    def test_cbe_encodable(self):
        from repro.crypto import canonical

        canonical.encode(req().to_cbe())
        canonical.encode(req(cost_ceiling=5.0).to_cbe())

    def test_with_attributes(self):
        r = req(attributes=(("a", 1),))
        r2 = r.with_attributes(b=2, a=3)
        assert dict(r2.attributes) == {"a": 3, "b": 2}
        assert dict(r.attributes) == {"a": 1}

    def test_linked_reservations(self):
        r = req(linked_reservations=(("cpu", "RES-C-1"),))
        assert ("cpu", "RES-C-1") in r.linked_reservations


class TestTable:
    def test_create_and_get(self):
        t = ReservationTable("A")
        r = t.create(req(), ALICE, now=5.0)
        assert r.state is ReservationState.PENDING
        assert r.created_at == 5.0
        assert t.get(r.handle) is r
        assert r.handle in t
        assert len(t) == 1

    def test_handles_unique(self):
        t = ReservationTable("A")
        handles = {t.create(req(), ALICE).handle for _ in range(50)}
        assert len(handles) == 50

    def test_explicit_handle(self):
        t = ReservationTable("A")
        r = t.create(req(), ALICE, handle="RES-X")
        assert r.handle == "RES-X"
        with pytest.raises(ReservationStateError):
            t.create(req(), ALICE, handle="RES-X")

    def test_unknown_handle(self):
        with pytest.raises(UnknownReservationError):
            ReservationTable("A").get("ghost")

    def test_legal_lifecycle(self):
        t = ReservationTable("A")
        r = t.create(req(), ALICE)
        t.transition(r.handle, ReservationState.GRANTED)
        t.transition(r.handle, ReservationState.ACTIVE)
        t.transition(r.handle, ReservationState.CANCELLED)
        assert r.state is ReservationState.CANCELLED

    def test_illegal_transitions(self):
        t = ReservationTable("A")
        r = t.create(req(), ALICE)
        with pytest.raises(ReservationStateError):
            t.transition(r.handle, ReservationState.ACTIVE)  # skip GRANTED
        t.transition(r.handle, ReservationState.DENIED)
        with pytest.raises(ReservationStateError):
            t.transition(r.handle, ReservationState.GRANTED)  # terminal

    def test_active_at(self):
        t = ReservationTable("A")
        r = t.create(req(start=100.0, end=200.0), ALICE)
        t.transition(r.handle, ReservationState.GRANTED)
        assert not r.active_at(50.0)
        assert r.active_at(100.0)
        assert r.active_at(199.9)
        assert not r.active_at(200.0)
        assert t.active_at(150.0) == (r,)

    def test_is_valid(self):
        t = ReservationTable("A")
        r = t.create(req(start=100.0, end=200.0), ALICE)
        assert not t.is_valid(r.handle)  # PENDING
        t.transition(r.handle, ReservationState.GRANTED)
        assert t.is_valid(r.handle)
        assert not t.is_valid(r.handle, at_time=50.0)
        assert t.is_valid(r.handle, at_time=150.0)
        assert not t.is_valid("ghost")

    def test_in_state(self):
        t = ReservationTable("A")
        r1 = t.create(req(), ALICE)
        r2 = t.create(req(), ALICE)
        t.transition(r1.handle, ReservationState.GRANTED)
        assert t.in_state(ReservationState.GRANTED) == (r1,)
        both = t.in_state(ReservationState.GRANTED, ReservationState.PENDING)
        assert r1 in both and r2 in both and len(both) == 2

    def test_expire_passed(self):
        t = ReservationTable("A")
        r1 = t.create(req(start=0.0, end=100.0), ALICE)
        r2 = t.create(req(start=0.0, end=500.0), ALICE)
        for r in (r1, r2):
            t.transition(r.handle, ReservationState.GRANTED)
        assert t.expire_passed(now=200.0) == 1
        assert r1.state is ReservationState.EXPIRED
        assert r2.state is ReservationState.GRANTED
