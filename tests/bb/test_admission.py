"""Tests for advance-reservation admission control, including the
capacity-never-exceeded property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.admission import AdmissionController, CapacitySchedule
from repro.errors import AdmissionError, CapacityExceededError


class TestCapacitySchedule:
    def test_simple_booking(self):
        cs = CapacitySchedule("link", 100.0)
        b = cs.book(0.0, 10.0, 40.0)
        assert cs.load_at(5.0) == 40.0
        assert cs.load_at(10.0) == 0.0  # half-open interval
        assert cs.available(0.0, 10.0) == 60.0
        cs.release(b.booking_id)
        assert cs.load_at(5.0) == 0.0

    def test_overlapping_bookings_sum(self):
        cs = CapacitySchedule("link", 100.0)
        cs.book(0.0, 10.0, 40.0)
        cs.book(5.0, 15.0, 40.0)
        assert cs.load_at(7.0) == 80.0
        assert cs.peak_load(0.0, 20.0) == 80.0
        assert cs.available(0.0, 20.0) == 20.0

    def test_rejection_on_overflow(self):
        cs = CapacitySchedule("link", 100.0)
        cs.book(0.0, 10.0, 80.0)
        with pytest.raises(CapacityExceededError):
            cs.book(5.0, 6.0, 30.0)
        # Non-overlapping interval still fits.
        cs.book(10.0, 20.0, 30.0)

    def test_back_to_back_intervals_do_not_conflict(self):
        cs = CapacitySchedule("link", 100.0)
        cs.book(0.0, 10.0, 100.0)
        cs.book(10.0, 20.0, 100.0)  # starts exactly when the first ends

    def test_advance_reservation_future_window(self):
        cs = CapacitySchedule("link", 100.0)
        cs.book(1000.0, 2000.0, 100.0)
        assert cs.available(0.0, 1000.0) == 100.0
        with pytest.raises(CapacityExceededError):
            cs.book(1500.0, 1600.0, 1.0)

    def test_utilization(self):
        cs = CapacitySchedule("link", 100.0)
        cs.book(0.0, 10.0, 25.0)
        assert cs.utilization(5.0) == 0.25

    def test_invalid_parameters(self):
        with pytest.raises(AdmissionError):
            CapacitySchedule("x", 0.0)
        cs = CapacitySchedule("x", 10.0)
        with pytest.raises(AdmissionError):
            cs.book(0.0, 10.0, 0.0)
        with pytest.raises(AdmissionError):
            cs.available(5.0, 5.0)
        with pytest.raises(AdmissionError):
            cs.release(99)

    def test_tag_recorded(self):
        cs = CapacitySchedule("x", 10.0)
        b = cs.book(0.0, 1.0, 1.0, tag="RES-1")
        assert b.tag == "RES-1"
        assert cs.bookings == (b,)


class TestAdmissionController:
    def make(self):
        ac = AdmissionController()
        ac.add_resource("intra", 1000.0)
        ac.add_resource("egress:B", 155.0)
        return ac

    def test_resources(self):
        ac = self.make()
        assert set(ac.resources()) == {"intra", "egress:B"}
        with pytest.raises(AdmissionError):
            ac.add_resource("intra", 5.0)
        with pytest.raises(AdmissionError):
            ac.schedule("nope")

    def test_bottleneck_available(self):
        ac = self.make()
        assert ac.available(["intra", "egress:B"], 0.0, 10.0) == 155.0
        with pytest.raises(AdmissionError):
            ac.available([], 0.0, 10.0)

    def test_book_all_success(self):
        ac = self.make()
        bookings = ac.book_all(["intra", "egress:B"], 0.0, 10.0, 100.0, tag="r")
        assert len(bookings) == 2
        assert ac.schedule("intra").load_at(5.0) == 100.0
        assert ac.schedule("egress:B").load_at(5.0) == 100.0
        ac.release_all(bookings)
        assert ac.schedule("intra").load_at(5.0) == 0.0

    def test_book_all_rolls_back_on_failure(self):
        ac = self.make()
        ac.book_all(["egress:B"], 0.0, 10.0, 100.0)
        with pytest.raises(CapacityExceededError):
            ac.book_all(["intra", "egress:B"], 0.0, 10.0, 100.0)
        # intra booking must have been rolled back.
        assert ac.schedule("intra").load_at(5.0) == 0.0


@settings(max_examples=120)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),  # start
            st.floats(min_value=0.1, max_value=50.0),  # duration
            st.floats(min_value=0.1, max_value=60.0),  # rate
        ),
        max_size=25,
    )
)
def test_capacity_never_exceeded_property(requests):
    """Invariant: whatever mix of bookings is attempted, the admitted load
    never exceeds capacity at any booking boundary."""
    cs = CapacitySchedule("link", 100.0)
    for start, duration, rate in requests:
        try:
            cs.book(start, start + duration, rate)
        except CapacityExceededError:
            pass
    points = {b.start for b in cs.bookings} | {b.end - 1e-9 for b in cs.bookings}
    for p in points:
        assert cs.load_at(p) <= 100.0 + 1e-6
