"""Unit tests for the admission-plane defenses (repro.bb.defense)."""

import pytest

from repro.bb.defense import (
    DefensePolicy,
    DomainDefense,
    PROTECTED_OPERATIONS,
    ReplayGuard,
    TokenBucket,
)
from repro.errors import (
    DefenseError,
    OverloadShedError,
    QuotaExceededError,
    RateLimitedError,
    ReplayRejectedError,
)
from repro.obs import metrics as obs_metrics


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(3.0, 1.0, now=0.0)
        assert all(bucket.take(0.0) for _ in range(3))
        assert not bucket.take(0.0)

    def test_refills_from_modelled_time(self):
        bucket = TokenBucket(2.0, 0.5, now=0.0)
        bucket.take(0.0)
        bucket.take(0.0)
        assert not bucket.take(0.0)
        # 2 seconds at 0.5/s refills one token.
        assert bucket.take(2.0)
        assert not bucket.take(2.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(2.0, 10.0, now=0.0)
        assert bucket.take(100.0)
        assert bucket.take(100.0)
        assert not bucket.take(100.0)

    def test_time_moving_backwards_skips_refill(self):
        bucket = TokenBucket(1.0, 1.0, now=10.0)
        assert bucket.take(10.0)
        assert not bucket.take(5.0)


class TestReplayGuard:
    def test_first_seen_passes_second_raises(self):
        guard = ReplayGuard(60.0, 16)
        guard.check(b"digest-1", 0.0)
        with pytest.raises(ReplayRejectedError):
            guard.check(b"digest-1", 1.0)
        assert guard.rejected == 1

    def test_window_expiry_readmits(self):
        guard = ReplayGuard(10.0, 16)
        guard.check(b"digest-1", 0.0)
        # Inside the window: replay.
        with pytest.raises(ReplayRejectedError):
            guard.check(b"digest-1", 9.0)
        # Past the window: the digest was pruned, so it is fresh again.
        guard.check(b"digest-1", 25.0)

    def test_capacity_bound_evicts_oldest(self):
        guard = ReplayGuard(1e9, 4)
        for i in range(8):
            guard.check(f"digest-{i}".encode(), float(i))
        assert len(guard) <= 4
        # The oldest digests were evicted, so they pass again...
        guard.check(b"digest-0", 100.0)
        # ...while the newest are still remembered.
        with pytest.raises(ReplayRejectedError):
            guard.check(b"digest-7", 100.0)

    def test_forget_allows_legitimate_retransmission(self):
        guard = ReplayGuard(60.0, 16)
        guard.check(b"digest-1", 0.0)
        guard.forget(b"digest-1")
        guard.check(b"digest-1", 1.0)


class TestAdmitSignal:
    def test_rate_limit_trips_and_meters(self):
        defense = DomainDefense(
            DefensePolicy(peer_burst=2.0, peer_rate_per_s=0.0), domain="B"
        )
        with obs_metrics.use_registry() as registry:
            defense.admit_signal(peer="mallory", now=0.0)
            defense.admit_signal(peer="mallory", now=0.0)
            with pytest.raises(RateLimitedError):
                defense.admit_signal(peer="mallory", now=0.0)
            counter = registry.get("defense_rejections_total")
            assert counter.value(
                domain="B", kind="rate_limited", reason_code="rate_limited"
            ) == 1
        assert defense.stats.rate_limited == 1
        assert defense.stats.total == 1

    def test_buckets_are_per_peer(self):
        defense = DomainDefense(
            DefensePolicy(peer_burst=1.0, peer_rate_per_s=0.0)
        )
        defense.admit_signal(peer="mallory", now=0.0)
        with pytest.raises(RateLimitedError):
            defense.admit_signal(peer="mallory", now=0.0)
        # A different peer has its own (full) bucket.
        defense.admit_signal(peer="alice", now=0.0)

    def test_domain_class_peer_gets_looser_bucket(self):
        policy = DefensePolicy(
            peer_burst=1.0, peer_rate_per_s=0.0,
            domain_peer_burst=4.0, domain_peer_rate_per_s=0.0,
        )
        defense = DomainDefense(policy)
        # A domain-class peer (contracted SLA neighbour aggregating many
        # users) rides the larger bucket.
        for _ in range(4):
            defense.admit_signal(peer="BB-A", now=0.0, peer_kind="domain")
        with pytest.raises(RateLimitedError):
            defense.admit_signal(peer="BB-A", now=0.0, peer_kind="domain")
        # A user-class peer is clamped to the small one.
        defense.admit_signal(peer="mallory", now=0.0)
        with pytest.raises(RateLimitedError):
            defense.admit_signal(peer="mallory", now=0.0)

    def test_replay_rejected_inside_window(self):
        defense = DomainDefense(DefensePolicy(replay_window_s=60.0))
        defense.admit_signal(peer="p", now=0.0, envelope_digest=b"d1")
        with pytest.raises(ReplayRejectedError):
            defense.admit_signal(peer="p", now=1.0, envelope_digest=b"d1")
        assert defense.stats.replay_rejected == 1

    def test_rate_limit_runs_before_replay_guard(self):
        # The cheapest check rejects first: an empty bucket raises
        # RateLimitedError even for a replayed digest.
        defense = DomainDefense(
            DefensePolicy(peer_burst=1.0, peer_rate_per_s=0.0)
        )
        defense.admit_signal(peer="p", now=0.0, envelope_digest=b"d1")
        with pytest.raises(RateLimitedError):
            defense.admit_signal(peer="p", now=0.0, envelope_digest=b"d1")

    def test_shed_past_watermark_spares_protected_operations(self):
        policy = DefensePolicy(
            peer_burst=100.0, peer_rate_per_s=100.0,
            pending_watermark=3, shed_window_s=10.0,
        )
        defense = DomainDefense(policy)
        for i in range(3):
            defense.admit_signal(peer=f"p{i}", now=0.0)
        with pytest.raises(OverloadShedError):
            defense.admit_signal(peer="p-new", now=0.1)
        assert defense.stats.shed_overload == 1
        # Refresh/teardown/cancel/claim keep flowing under overload.
        for operation in sorted(PROTECTED_OPERATIONS):
            defense.admit_signal(
                peer=f"p-{operation}", now=0.1, operation=operation
            )

    def test_shed_window_drains(self):
        policy = DefensePolicy(
            peer_burst=100.0, peer_rate_per_s=100.0,
            pending_watermark=2, shed_window_s=1.0,
        )
        defense = DomainDefense(policy)
        defense.admit_signal(peer="a", now=0.0)
        defense.admit_signal(peer="b", now=0.0)
        with pytest.raises(OverloadShedError):
            defense.admit_signal(peer="c", now=0.5)
        # The old arrivals age out of the window.
        defense.admit_signal(peer="c", now=2.0)

    def test_all_gate_rejections_are_defense_errors(self):
        defense = DomainDefense(
            DefensePolicy(peer_burst=1.0, peer_rate_per_s=0.0)
        )
        defense.admit_signal(peer="p", now=0.0)
        with pytest.raises(DefenseError):
            defense.admit_signal(peer="p", now=0.0)


class TestCheckQuota:
    def test_per_user_quota(self):
        defense = DomainDefense(DefensePolicy(per_user_quota=2), domain="B")
        defense.check_quota(
            user="u", upstream=None, user_count=1, ingress_count=0
        )
        with pytest.raises(QuotaExceededError):
            defense.check_quota(
                user="u", upstream=None, user_count=2, ingress_count=0
            )
        assert defense.stats.quota_exceeded == 1

    def test_per_ingress_quota(self):
        defense = DomainDefense(DefensePolicy(per_ingress_quota=4))
        defense.check_quota(
            user="u", upstream="A", user_count=0, ingress_count=3
        )
        with pytest.raises(QuotaExceededError):
            defense.check_quota(
                user="u", upstream="A", user_count=0, ingress_count=4
            )

    def test_no_upstream_skips_ingress_quota(self):
        defense = DomainDefense(DefensePolicy(per_ingress_quota=1))
        defense.check_quota(
            user="u", upstream=None, user_count=0, ingress_count=99
        )
