"""Tests for the policy-server entity: credential verification + decisions."""

import random

import pytest

from repro.bb.policyserver import PolicyServer, VerifiedInfo
from repro.bb.reservations import ReservationRequest
from repro.crypto.capability import ProxyCredential, delegate
from repro.crypto.dn import DN
from repro.crypto.keys import SimulatedScheme
from repro.policy.cas import CommunityAuthorizationServer
from repro.policy.groupserver import GroupServer
from repro.policy.language import compile_policy

ALICE = DN.make("Grid", "DomainA", "Alice")
BOB = DN.make("Grid", "DomainA", "Bob")
BB_B = DN.make("Grid", "DomainB", "BB-B")

POLICY_B = """
If Group = Atlas
    If BW <= 10Mb/s
        Return GRANT
If Issued_by(Capability) = ESnet
    If BW <= 10Mb/s
        Return GRANT
Return DENY
"""


def request(rate=10.0, **kwargs):
    defaults = dict(
        source_host="h0.A",
        destination_host="h0.C",
        source_domain="A",
        destination_domain="C",
        rate_mbps=rate,
        start=0.0,
        end=3600.0,
    )
    defaults.update(kwargs)
    return ReservationRequest(**defaults)


@pytest.fixture()
def group_server(rng):
    gs = GroupServer(DN.make("Grid", "HEP", "GS"), rng=rng, scheme="simulated")
    gs.add_member("Atlas", ALICE)
    return gs


@pytest.fixture()
def cas(rng):
    c = CommunityAuthorizationServer("ESnet", rng=rng, scheme="simulated")
    c.grant(ALICE, ["member"])
    return c


@pytest.fixture()
def server(group_server, cas):
    return PolicyServer(
        "B",
        compile_policy(POLICY_B, name="BB-B"),
        group_servers=[group_server],
        trusted_communities={cas.name: cas.public_key},
        domain_attributes={"te.excess": "downgrade"},
    )


class TestVerifyCredentials:
    def test_good_assertion(self, server, group_server):
        a = group_server.assert_membership(ALICE, "Atlas")
        v = server.verify_credentials(user=ALICE, assertions=[a])
        assert v.groups == {"Atlas"}
        assert v.rejected == ()

    def test_assertion_for_wrong_subject(self, server, group_server):
        a = group_server.assert_membership(ALICE, "Atlas")
        v = server.verify_credentials(user=BOB, assertions=[a])
        assert v.groups == frozenset()
        assert any("not the requestor" in r for r in v.rejected)

    def test_assertion_from_unknown_issuer(self, server, rng):
        rogue = GroupServer(DN.make("X", "Y", "GS"), rng=rng, scheme="simulated")
        rogue.add_member("Atlas", ALICE)
        a = rogue.assert_membership(ALICE, "Atlas")
        v = server.verify_credentials(user=ALICE, assertions=[a])
        assert v.groups == frozenset()
        assert any("unknown issuer" in r for r in v.rejected)

    def test_tampered_assertion(self, server, group_server):
        a = group_server.assert_membership(ALICE, "Atlas")
        forged = a.with_tampered_attribute("group", "VIP")
        v = server.verify_credentials(user=ALICE, assertions=[forged])
        assert v.groups == frozenset()

    def test_good_capability_chain(self, server, cas):
        cred = cas.grid_login(ALICE)
        v = server.verify_credentials(
            user=ALICE, capability_chains=[[cred.certificate]]
        )
        assert v.capabilities == {"ESnet:member"}
        assert v.capability_issuers == {"ESnet"}

    def test_delegated_chain(self, server, cas, rng):
        cred = cas.grid_login(ALICE)
        bb_keys = SimulatedScheme().generate(rng)
        cert_a = delegate(
            cred,
            delegate_subject=BB_B,
            delegate_public_key=bb_keys.public,
            extra_restrictions=["valid-for:RAR-7"],
        )
        v = server.verify_credentials(
            user=ALICE, capability_chains=[[cred.certificate, cert_a]]
        )
        assert v.capability_issuers == {"ESnet"}
        assert v.capability_restrictions == {"valid-for:RAR-7"}

    def test_untrusted_community(self, group_server, rng):
        other_cas = CommunityAuthorizationServer("Rogue", rng=rng, scheme="simulated")
        other_cas.grant(ALICE, ["member"])
        server = PolicyServer(
            "B", compile_policy(POLICY_B), group_servers=[group_server]
        )
        cred = other_cas.grid_login(ALICE)
        v = server.verify_credentials(
            user=ALICE, capability_chains=[[cred.certificate]]
        )
        assert v.capability_issuers == frozenset()
        assert any("rejected" in r for r in v.rejected)

    def test_expired_capability(self, server, cas):
        cred = cas.grid_login(ALICE, at_time=0.0, validity_s=10.0)
        v = server.verify_credentials(
            user=ALICE, capability_chains=[[cred.certificate]], at_time=100.0
        )
        assert v.capability_issuers == frozenset()


class TestDecide:
    def test_grant_via_group(self, server):
        v = VerifiedInfo(user=ALICE, groups=frozenset({"Atlas"}))
        d = server.decide(request(), v)
        assert d.granted
        assert ("te.excess", "downgrade") in d.modifications

    def test_grant_via_capability(self, server):
        v = VerifiedInfo(user=ALICE, capability_issuers=frozenset({"ESnet"}))
        assert server.decide(request(), v).granted

    def test_deny_over_cap(self, server):
        v = VerifiedInfo(user=ALICE, groups=frozenset({"Atlas"}))
        assert not server.decide(request(rate=11.0), v).granted

    def test_deny_without_credentials(self, server):
        assert not server.decide(request(), VerifiedInfo(user=ALICE)).granted

    def test_no_modifications_on_deny(self, server):
        d = server.decide(request(), VerifiedInfo(user=ALICE))
        assert d.modifications == ()

    def test_decision_counter(self, server):
        v = VerifiedInfo(user=ALICE)
        server.decide(request(), v)
        server.decide(request(), v)
        assert server.decisions == 2

    def test_time_of_day_mapping(self, group_server):
        server = PolicyServer(
            "A",
            compile_policy(
                "If Time > 8am and Time < 5pm\n    Return GRANT\nReturn DENY"
            ),
        )
        v = VerifiedInfo(user=ALICE)
        # 9 hours into a simulated day.
        assert server.decide(request(), v, at_time=9 * 3600.0).granted
        # 9pm.
        assert not server.decide(request(), v, at_time=21 * 3600.0).granted
        # Next day, 9am again (wraps modulo 24h).
        assert server.decide(request(), v, at_time=33 * 3600.0).granted

    def test_avail_bw_plumbed(self):
        server = PolicyServer(
            "A", compile_policy("If BW <= Avail_BW\n    Return GRANT\nReturn DENY")
        )
        v = VerifiedInfo(user=ALICE)
        assert server.decide(request(rate=10.0), v,
                             available_bandwidth_mbps=20.0).granted
        assert not server.decide(request(rate=30.0), v,
                                 available_bandwidth_mbps=20.0).granted
