"""Smoke tests: every example script runs to completion and prints the
headline facts it promises.  Keeps examples from rotting."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    # Reset inter-module counters that examples share (reservation handle
    # numbering etc. is per-process but harmless).
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "name,expectations",
    [
        ("quickstart.py",
         ["granted        : True", "consistent: True", "denied by A"]),
        ("figure6_policy_tour.py",
         ["GRANT", "DENY at C", "DENY at B", "DENY at A",
          "Co-reservation through the GARA API"]),
        ("misreservation_attack.py",
         ["misreservation!", "hop-by-hop signalling",
          "partial path released"]),
        ("tunnel_aggregation.py",
         ["per-flow messages : 4 each", "refused:",
          "per-flow hop-by-hop: 200 messages"]),
        ("capability_delegation.py",
         ["Grid-login", "Capability list received by BB-C",
          "rejected: delegation to"]),
        ("wide_area_grid.py",
         ["STARS coordinator reservation UniA->Lab: granted",
          "conservation: user payment == sum of domain charges"]),
    ],
)
def test_example_runs(name, expectations, capsys):
    out = run_example(name, capsys)
    for expected in expectations:
        assert expected in out, f"{name}: missing {expected!r}"


def test_examples_all_covered():
    """Every example on disk appears in the smoke matrix above."""
    tested = {
        "quickstart.py", "figure6_policy_tour.py", "misreservation_attack.py",
        "tunnel_aggregation.py", "capability_delegation.py",
        "wide_area_grid.py",
    }
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == tested
