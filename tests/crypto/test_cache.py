"""Cache-correctness suite: a hit is never a security downgrade.

The verification caches memoize the expensive crypto, but every hit
re-runs the cheap guards (validity window, revocation, trust policy),
and revocation events invalidate dependent entries outright.  These
tests pin the security-critical behaviours end to end:

* a capability revoked at the CAS never admits a reservation from
  cache (the §6.5 checks fail on the next request, hit or miss);
* a certificate revoked at its CA stops verifying RARs from cache;
* an expired chain stops verifying from cache without any explicit
  invalidation event;
* the LRU bound holds under churn (no unbounded memory), with the
  eviction counter moving while correctness is preserved;
* hit/miss/invalidation counters surface through the obs layer.
"""

import random

import pytest

from repro.bb.reservations import ReservationRequest
from repro.core.messages import make_bb_rar, make_user_rar
from repro.core.testbed import build_linear_testbed
from repro.core.trust import verify_rar
from repro.crypto import cache as verification_cache
from repro.crypto.cache import LRUCache, VerificationCaches
from repro.crypto.dn import DN
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import CertificateAuthority
from repro.errors import TrustError
from repro.obs import metrics as obs_metrics

FIG6_C = (
    "If Issued_by(Capability) = ESnet\n"
    "    Return GRANT\n"
    "Return DENY"
)


@pytest.fixture()
def caches():
    with verification_cache.use_caches() as active:
        yield active


@pytest.fixture()
def capability_world():
    """A three-domain testbed whose destination policy requires an ESnet
    capability, with Alice logged in."""
    tb = build_linear_testbed(["A", "B", "C"])
    tb.set_policy("C", FIG6_C)
    cas = tb.add_cas("ESnet")
    alice = tb.add_user("A", "Alice")
    cas.grant(alice.dn, ["member"])
    alice.grid_login(cas, validity_s=10 * 24 * 3600.0)
    return tb, cas, alice


class TestRevokedCapabilityNeverAdmits:
    def test_cas_revocation_denies_after_cache_hit(
        self, caches, capability_world
    ):
        tb, cas, alice = capability_world
        # First reservation primes the delegation cache; the second is
        # served from it.  Both must be granted.
        first = tb.reserve(alice, source="A", destination="C",
                           bandwidth_mbps=10.0)
        assert first.granted
        hits_before = caches.stats("delegation").hits
        second = tb.reserve(alice, source="A", destination="C",
                            bandwidth_mbps=10.0)
        assert second.granted
        assert caches.stats("delegation").hits > hits_before

        # Revoke the capability credential Alice got at grid-login.
        cert = alice.credentials["ESnet"].certificate
        cas.revoke_credential(cert)

        third = tb.reserve(alice, source="A", destination="C",
                           bandwidth_mbps=10.0)
        assert not third.granted, (
            "revoked capability admitted from cache"
        )
        # Cleanup so later assertions in this world see a clean ledger.
        for outcome in (first, second):
            tb.hop_by_hop.cancel(outcome)

    def test_revocation_invalidates_dependent_entries(
        self, caches, capability_world
    ):
        tb, cas, alice = capability_world
        outcome = tb.reserve(alice, source="A", destination="C",
                             bandwidth_mbps=10.0)
        assert outcome.granted
        assert len(caches.delegation) > 0
        cert = alice.credentials["ESnet"].certificate
        cas.revoke_credential(cert)
        # The dependent delegation verdict is gone, not merely guarded.
        assert caches.stats("delegation").invalidations >= 1
        tb.hop_by_hop.cancel(outcome)

    def test_unrelated_user_unaffected_by_revocation(
        self, caches, capability_world
    ):
        tb, cas, alice = capability_world
        bob = tb.add_user("A", "Bob")
        cas.grant(bob.dn, ["member"])
        bob.grid_login(cas, validity_s=10 * 24 * 3600.0)
        a = tb.reserve(alice, source="A", destination="C", bandwidth_mbps=5.0)
        b = tb.reserve(bob, source="A", destination="C", bandwidth_mbps=5.0)
        assert a.granted and b.granted
        cas.revoke_credential(alice.credentials["ESnet"].certificate)
        assert not tb.reserve(alice, source="A", destination="C",
                              bandwidth_mbps=5.0).granted
        still = tb.reserve(bob, source="A", destination="C",
                           bandwidth_mbps=5.0)
        assert still.granted, "revocation of Alice must not touch Bob"
        for outcome in (a, b, still):
            tb.hop_by_hop.cancel(outcome)


def build_rar_world(hops=3, seed=11):
    rng = random.Random(seed)
    ca = CertificateAuthority(
        DN.make("Grid", "Root", "CA"), rng=rng, scheme="simulated"
    )
    user_dn = DN.make("Grid", "D0", "Alice")
    user_kp, user_cert = ca.issue_keypair(user_dn, rng=rng)
    bbs = []
    for i in range(hops):
        dn = DN.make("Grid", f"D{i}", f"BB-D{i}")
        kp, cert = ca.issue_keypair(dn, rng=rng)
        bbs.append((dn, kp, cert))
    request = ReservationRequest(
        source_host="h0.D0", destination_host=f"h0.D{hops - 1}",
        source_domain="D0", destination_domain=f"D{hops - 1}",
        rate_mbps=10.0, start=0.0, end=3600.0,
    )
    rar = make_user_rar(
        request=request, source_bb=bbs[0][0], user=user_dn,
        user_key=user_kp.private,
    )
    prev_cert = user_cert
    for i in range(len(bbs) - 1):
        dn, kp, cert = bbs[i]
        rar = make_bb_rar(
            inner=rar, introduced_cert=prev_cert, downstream=bbs[i + 1][0],
            bb=dn, bb_key=kp.private,
        )
        prev_cert = cert
    store = TrustStore(TrustPolicy(max_introduction_depth=32,
                                   require_ca_issued_peers=False))
    store.add_introduced_peer(bbs[-2][2])
    store.add_revocation_checker(ca.is_revoked)
    return ca, rar, bbs, store, user_cert


class TestCARevocationAndExpiry:
    def test_ca_revocation_stops_cached_rar_verdict(self, caches):
        ca, rar, bbs, store, user_cert = build_rar_world()
        verifier, peer_cert = bbs[-1][0], bbs[-2][2]
        verify_rar(rar, verifier=verifier, peer_certificate=peer_cert,
                   truststore=store)
        hit = verify_rar(rar, verifier=verifier, peer_certificate=peer_cert,
                         truststore=store)
        assert hit.user == user_cert.subject
        assert caches.stats("rar").hits >= 1

        # Revoke the user's identity certificate at the issuing CA: the
        # cached chain verdict depends on it and must stop verifying.
        ca.revoke(user_cert.serial)
        with pytest.raises(TrustError):
            verify_rar(rar, verifier=verifier, peer_certificate=peer_cert,
                       truststore=store)

    def test_ca_revocation_purges_dependents(self, caches):
        ca, rar, bbs, store, user_cert = build_rar_world()
        verifier, peer_cert = bbs[-1][0], bbs[-2][2]
        verify_rar(rar, verifier=verifier, peer_certificate=peer_cert,
                   truststore=store)
        assert len(caches.rar) == 1
        ca.revoke(user_cert.serial)
        assert len(caches.rar) == 0
        assert caches.stats("rar").invalidations >= 1

    def test_expired_chain_fails_from_cache(self, caches):
        """No revocation event at all: the clock alone invalidates — a
        hit re-checks every dependent certificate's validity window."""
        ca, rar, bbs, store, user_cert = build_rar_world()
        verifier, peer_cert = bbs[-1][0], bbs[-2][2]
        ok = verify_rar(rar, verifier=verifier, peer_certificate=peer_cert,
                        truststore=store, at_time=0.0)
        assert ok.user == user_cert.subject
        beyond = user_cert.not_after + 1.0
        with pytest.raises(TrustError):
            verify_rar(rar, verifier=verifier, peer_certificate=peer_cert,
                       truststore=store, at_time=beyond)


class TestLRUBoundUnderChurn:
    def test_rar_cache_stays_bounded(self):
        with verification_cache.use_caches(
            VerificationCaches(rar_size=4)
        ) as caches:
            worlds = [build_rar_world(seed=s) for s in range(10)]
            for _, rar, bbs, store, _ in worlds:
                verify_rar(rar, verifier=bbs[-1][0],
                           peer_certificate=bbs[-2][2], truststore=store)
            assert len(caches.rar) == 4
            assert caches.rar.evictions == 6
            # Still correct after churn: both evicted and resident
            # entries verify, and the survivors are genuine hits.
            for _, rar, bbs, store, user_cert in worlds:
                got = verify_rar(rar, verifier=bbs[-1][0],
                                 peer_certificate=bbs[-2][2],
                                 truststore=store)
                assert got.user == user_cert.subject
            assert len(caches.rar) == 4

    def test_signature_cache_bounded(self):
        cache = LRUCache(8)
        for i in range(1000):
            cache.put(("k", i), (True,))
        assert len(cache) == 8
        assert cache.evictions == 992


class TestObservability:
    def test_cache_events_counter_exposed(self, capability_world):
        tb, cas, alice = capability_world
        with obs_metrics.use_registry() as registry:
            with verification_cache.use_caches():
                first = tb.reserve(alice, source="A", destination="C",
                                   bandwidth_mbps=10.0)
                second = tb.reserve(alice, source="A", destination="C",
                                    bandwidth_mbps=10.0)
        assert first.granted and second.granted
        counter = registry.counter(
            "verification_cache_events_total",
            "Verification cache lookups by cache and result",
        )
        series = counter.series()
        hits = {
            labels for labels in series
            if ("result", "hit") in labels
        }
        assert hits, f"no cache hits recorded: {series}"
        for outcome in (first, second):
            tb.hop_by_hop.cancel(outcome)
