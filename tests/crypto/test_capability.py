"""Tests for capability certificates and cascaded delegation (paper §6.5)."""

import random

import pytest

from repro.crypto.capability import (
    ProxyCredential,
    capability_set,
    check_possession,
    delegate,
    is_capability_certificate,
    issue_capability,
    prove_possession,
    restriction_set,
    verify_delegation_chain,
)
from repro.crypto.dn import DN
from repro.crypto.keys import SimulatedScheme
from repro.errors import DelegationError

CAS_DN = DN.make("Grid", "ESnet", "CAS")
USER_DN = DN.make("Grid", "DomainA", "Alice")
BB_A = DN.make("Grid", "DomainA", "BB-A")
BB_B = DN.make("Grid", "DomainB", "BB-B")
BB_C = DN.make("Grid", "DomainC", "BB-C")

SCHEME = SimulatedScheme()


@pytest.fixture()
def cas_key(rng):
    return SCHEME.generate(rng)


@pytest.fixture()
def bb_keys(rng):
    return {dn: SCHEME.generate(rng) for dn in (BB_A, BB_B, BB_C)}


@pytest.fixture()
def user_cred(cas_key, rng):
    return issue_capability(
        issuer=CAS_DN,
        issuer_signing_key=cas_key.private,
        subject=USER_DN,
        capabilities=["ESnet:member"],
        serial=1,
        rng=rng,
        scheme="simulated",
    )


def build_chain(user_cred, bb_keys, *, restriction="valid-for:RAR-1"):
    """User -> BB_A -> BB_B -> BB_C, as in Figure 7."""
    cert_a = delegate(
        user_cred,
        delegate_subject=BB_A,
        delegate_public_key=bb_keys[BB_A].public,
        extra_restrictions=[restriction],
    )
    cred_a = ProxyCredential(cert_a, bb_keys[BB_A].private)
    cert_b = delegate(
        cred_a, delegate_subject=BB_B, delegate_public_key=bb_keys[BB_B].public
    )
    cred_b = ProxyCredential(cert_b, bb_keys[BB_B].private)
    cert_c = delegate(
        cred_b, delegate_subject=BB_C, delegate_public_key=bb_keys[BB_C].public
    )
    return [user_cred.certificate, cert_a, cert_b, cert_c]


class TestIssuance:
    def test_issue_sets_flag_and_caps(self, user_cred):
        cert = user_cred.certificate
        assert is_capability_certificate(cert)
        assert capability_set(cert) == {"ESnet:member"}
        assert restriction_set(cert) == frozenset()

    def test_subject_cn_tagged(self, user_cred):
        assert "(capability)" in user_cred.certificate.subject.common_name

    def test_untagged_subject(self, cas_key, rng):
        cred = issue_capability(
            issuer=CAS_DN,
            issuer_signing_key=cas_key.private,
            subject=USER_DN,
            capabilities=["x"],
            serial=2,
            rng=rng,
            scheme="simulated",
            tag_subject=False,
        )
        assert cred.certificate.subject == USER_DN

    def test_empty_capabilities_rejected(self, cas_key, rng):
        with pytest.raises(DelegationError):
            issue_capability(
                issuer=CAS_DN,
                issuer_signing_key=cas_key.private,
                subject=USER_DN,
                capabilities=[],
                serial=3,
                rng=rng,
                scheme="simulated",
            )

    def test_holder_possesses_proxy_key(self, user_cred):
        nonce = b"challenge-123"
        proof = prove_possession(user_cred.private_key, nonce)
        assert check_possession(user_cred.certificate, nonce, proof)

    def test_possession_fails_for_other_key(self, user_cred, rng):
        other = SCHEME.generate(rng)
        proof = prove_possession(other.private, b"nonce")
        assert not check_possession(user_cred.certificate, b"nonce", proof)


class TestDelegation:
    def test_delegate_subject_and_key(self, user_cred, bb_keys):
        cert_a = delegate(
            user_cred,
            delegate_subject=BB_A,
            delegate_public_key=bb_keys[BB_A].public,
        )
        assert cert_a.subject == BB_A
        assert cert_a.public_key == bb_keys[BB_A].public
        assert cert_a.issuer == user_cred.certificate.subject

    def test_delegation_signed_with_proxy_key(self, user_cred, bb_keys):
        cert_a = delegate(
            user_cred,
            delegate_subject=BB_A,
            delegate_public_key=bb_keys[BB_A].public,
        )
        # The proxy public key is in the parent certificate.
        assert cert_a.verify_signature(user_cred.certificate.public_key)

    def test_restrictions_accumulate(self, user_cred, bb_keys):
        chain = build_chain(user_cred, bb_keys)
        assert restriction_set(chain[1]) == {"valid-for:RAR-1"}
        assert restriction_set(chain[3]) == {"valid-for:RAR-1"}

    def test_capabilities_copied(self, user_cred, bb_keys):
        chain = build_chain(user_cred, bb_keys)
        for cert in chain:
            assert capability_set(cert) == {"ESnet:member"}

    def test_drop_capability(self, cas_key, bb_keys, rng):
        cred = issue_capability(
            issuer=CAS_DN,
            issuer_signing_key=cas_key.private,
            subject=USER_DN,
            capabilities=["a", "b"],
            serial=4,
            rng=rng,
            scheme="simulated",
        )
        cert = delegate(
            cred,
            delegate_subject=BB_A,
            delegate_public_key=bb_keys[BB_A].public,
            drop_capabilities=["b"],
        )
        assert capability_set(cert) == {"a"}

    def test_dropping_everything_rejected(self, user_cred, bb_keys):
        with pytest.raises(DelegationError):
            delegate(
                user_cred,
                delegate_subject=BB_A,
                delegate_public_key=bb_keys[BB_A].public,
                drop_capabilities=["ESnet:member"],
            )

    def test_delegate_requires_capability_cert(self, bb_keys, cas_key, rng):
        from repro.crypto.x509 import sign_certificate

        plain = sign_certificate(
            serial=9,
            issuer=CAS_DN,
            subject=USER_DN,
            public_key=cas_key.public,
            signing_key=cas_key.private,
        )
        cred = ProxyCredential(plain, cas_key.private)
        with pytest.raises(DelegationError):
            delegate(
                cred,
                delegate_subject=BB_A,
                delegate_public_key=bb_keys[BB_A].public,
            )


class TestChainVerification:
    def trusted(self, cas_key):
        return {CAS_DN: cas_key.public}

    def test_figure7_chain_verifies(self, user_cred, bb_keys, cas_key):
        chain = build_chain(user_cred, bb_keys)
        result = verify_delegation_chain(
            chain,
            trusted_issuers=self.trusted(cas_key),
            possession_nonce=b"n0",
            possession_prover=lambda n: prove_possession(bb_keys[BB_C].private, n),
        )
        assert result.capabilities == {"ESnet:member"}
        assert result.restrictions == {"valid-for:RAR-1"}
        assert result.holders[-1] == BB_C
        assert result.issuer == CAS_DN
        assert len(result.holders) == 4

    def test_untrusted_issuer_rejected(self, user_cred, bb_keys, rng):
        chain = build_chain(user_cred, bb_keys)
        rogue = SCHEME.generate(rng)
        with pytest.raises(DelegationError, match="not trusted"):
            verify_delegation_chain(
                chain, trusted_issuers={DN.make("Evil", "X", "CA"): rogue.public}
            )

    def test_wrong_issuer_key_rejected(self, user_cred, bb_keys, rng):
        chain = build_chain(user_cred, bb_keys)
        rogue = SCHEME.generate(rng)
        with pytest.raises(DelegationError, match="does not verify"):
            verify_delegation_chain(chain, trusted_issuers={CAS_DN: rogue.public})

    def test_broken_linkage_rejected(self, user_cred, bb_keys, cas_key):
        chain = build_chain(user_cred, bb_keys)
        # Remove the middle element: BB_B's cert now follows the root directly.
        bad = [chain[0], chain[2], chain[3]]
        with pytest.raises(DelegationError):
            verify_delegation_chain(bad, trusted_issuers=self.trusted(cas_key))

    def test_widened_capability_rejected(self, user_cred, bb_keys, cas_key):
        cert_a = delegate(
            user_cred,
            delegate_subject=BB_A,
            delegate_public_key=bb_keys[BB_A].public,
        )
        cred_a = ProxyCredential(cert_a, bb_keys[BB_A].private)
        # BB_A forges a wider delegation by hand.
        from repro.crypto.x509 import sign_certificate
        from repro.crypto.capability import (
            EXT_CAPABILITIES,
            EXT_CAPABILITY_FLAG,
            EXT_RESTRICTIONS,
        )

        widened = sign_certificate(
            serial=50,
            issuer=cert_a.subject,
            subject=BB_B,
            public_key=bb_keys[BB_B].public,
            signing_key=cred_a.private_key,
            extensions={
                EXT_CAPABILITY_FLAG: True,
                EXT_CAPABILITIES: ("ESnet:member", "ESnet:admin"),
                EXT_RESTRICTIONS: (),
            },
        )
        with pytest.raises(DelegationError, match="widens"):
            verify_delegation_chain(
                [user_cred.certificate, cert_a, widened],
                trusted_issuers=self.trusted(cas_key),
            )

    def test_dropped_restriction_rejected(self, user_cred, bb_keys, cas_key):
        chain = build_chain(user_cred, bb_keys)
        cred_b = ProxyCredential(chain[2], bb_keys[BB_B].private)
        from repro.crypto.x509 import sign_certificate
        from repro.crypto.capability import (
            EXT_CAPABILITIES,
            EXT_CAPABILITY_FLAG,
            EXT_RESTRICTIONS,
        )

        unrestricted = sign_certificate(
            serial=51,
            issuer=chain[2].subject,
            subject=BB_C,
            public_key=bb_keys[BB_C].public,
            signing_key=cred_b.private_key,
            extensions={
                EXT_CAPABILITY_FLAG: True,
                EXT_CAPABILITIES: ("ESnet:member",),
                EXT_RESTRICTIONS: (),  # restriction silently removed
            },
        )
        with pytest.raises(DelegationError, match="drops restrictions"):
            verify_delegation_chain(
                [chain[0], chain[1], chain[2], unrestricted],
                trusted_issuers=self.trusted(cas_key),
            )

    def test_possession_failure_rejected(self, user_cred, bb_keys, cas_key, rng):
        chain = build_chain(user_cred, bb_keys)
        impostor = SCHEME.generate(rng)
        with pytest.raises(DelegationError, match="possession"):
            verify_delegation_chain(
                chain,
                trusted_issuers=self.trusted(cas_key),
                possession_nonce=b"n1",
                possession_prover=lambda n: prove_possession(impostor.private, n),
            )

    def test_nonce_without_prover_rejected(self, user_cred, bb_keys, cas_key):
        chain = build_chain(user_cred, bb_keys)
        with pytest.raises(DelegationError):
            verify_delegation_chain(
                chain,
                trusted_issuers=self.trusted(cas_key),
                possession_nonce=b"n",
            )

    def test_empty_chain_rejected(self, cas_key):
        with pytest.raises(DelegationError):
            verify_delegation_chain([], trusted_issuers=self.trusted(cas_key))

    def test_root_only_chain(self, user_cred, cas_key):
        result = verify_delegation_chain(
            [user_cred.certificate], trusted_issuers=self.trusted(cas_key)
        )
        assert result.capabilities == {"ESnet:member"}
        assert len(result.holders) == 1

    def test_expired_element_rejected(self, cas_key, bb_keys, rng):
        cred = issue_capability(
            issuer=CAS_DN,
            issuer_signing_key=cas_key.private,
            subject=USER_DN,
            capabilities=["c"],
            serial=60,
            rng=rng,
            scheme="simulated",
            not_before=0.0,
            not_after=100.0,
        )
        cert_a = delegate(
            cred, delegate_subject=BB_A, delegate_public_key=bb_keys[BB_A].public
        )
        with pytest.raises(DelegationError, match="not valid"):
            verify_delegation_chain(
                [cred.certificate, cert_a],
                trusted_issuers={CAS_DN: cas_key.public},
                at_time=500.0,
            )


class TestSplitChains:
    def test_single_chain_preserved(self, user_cred, bb_keys, cas_key):
        from repro.crypto.capability import split_capability_chains

        chain = build_chain(user_cred, bb_keys)
        assert split_capability_chains(chain) == [tuple(chain)]

    def test_two_communities_separate(self, cas_key, bb_keys, rng):
        from repro.crypto.capability import split_capability_chains

        other_cas = SCHEME.generate(rng)
        cred_a = issue_capability(
            issuer=CAS_DN, issuer_signing_key=cas_key.private,
            subject=USER_DN, capabilities=["ESnet:member"],
            serial=1, rng=rng, scheme="simulated",
        )
        cred_b = issue_capability(
            issuer=DN.make("Grid", "GEANT", "CAS"),
            issuer_signing_key=other_cas.private,
            subject=USER_DN, capabilities=["GEANT:member"],
            serial=2, rng=rng, scheme="simulated",
        )
        # Both delegated to BB_A (same actual key), then BB_A delegates
        # both to BB_B — the ambiguous case the splitter must untangle.
        deleg_a1 = delegate(cred_a, delegate_subject=BB_A,
                            delegate_public_key=bb_keys[BB_A].public)
        deleg_b1 = delegate(cred_b, delegate_subject=BB_A,
                            delegate_public_key=bb_keys[BB_A].public)
        deleg_a2 = delegate(ProxyCredential(deleg_a1, bb_keys[BB_A].private),
                            delegate_subject=BB_B,
                            delegate_public_key=bb_keys[BB_B].public)
        deleg_b2 = delegate(ProxyCredential(deleg_b1, bb_keys[BB_A].private),
                            delegate_subject=BB_B,
                            delegate_public_key=bb_keys[BB_B].public)
        flat = [cred_a.certificate, deleg_a1, cred_b.certificate, deleg_b1,
                deleg_a2, deleg_b2]
        chains = split_capability_chains(flat)
        assert len(chains) == 2
        by_caps = {next(iter(capability_set(c[0]))): c for c in chains}
        assert [cert.subject for cert in by_caps["ESnet:member"][1:]] == [
            BB_A, BB_B
        ]
        assert [cert.subject for cert in by_caps["GEANT:member"][1:]] == [
            BB_A, BB_B
        ]
        # Each split chain verifies independently.
        verify_delegation_chain(
            list(by_caps["ESnet:member"]),
            trusted_issuers={CAS_DN: cas_key.public},
        )
        verify_delegation_chain(
            list(by_caps["GEANT:member"]),
            trusted_issuers={DN.make("Grid", "GEANT", "CAS"): other_cas.public},
        )

    def test_unrelated_cert_starts_new_chain(self, user_cred, cas_key, rng):
        from repro.crypto.capability import split_capability_chains

        other = issue_capability(
            issuer=DN.make("Grid", "X", "CAS"),
            issuer_signing_key=SCHEME.generate(rng).private,
            subject=DN.make("Grid", "B", "Bob"),
            capabilities=["X:thing"], serial=9, rng=rng, scheme="simulated",
        )
        chains = split_capability_chains(
            [user_cred.certificate, other.certificate]
        )
        assert len(chains) == 2

    def test_empty(self):
        from repro.crypto.capability import split_capability_chains

        assert split_capability_chains([]) == []


class TestChainReordering:
    def test_swapped_middle_delegations_rejected(self, user_cred, bb_keys,
                                                 cas_key):
        """An attacker reordering the middle of the cascade breaks the
        issuer/subject linkage and is rejected."""
        chain = build_chain(user_cred, bb_keys)
        swapped = [chain[0], chain[2], chain[1], chain[3]]
        with pytest.raises(DelegationError):
            verify_delegation_chain(
                swapped, trusted_issuers={CAS_DN: cas_key.public}
            )

    def test_truncated_chain_still_valid_prefix(self, user_cred, bb_keys,
                                                cas_key):
        """Dropping the tail yields a shorter but still valid chain — the
        holder is then BB_B, not BB_C (replay by an intermediate is
        possession-limited, which is why check 5 exists)."""
        chain = build_chain(user_cred, bb_keys)
        result = verify_delegation_chain(
            chain[:3], trusted_issuers={CAS_DN: cas_key.public}
        )
        assert result.holders[-1] == BB_B
        # ...but BB_C cannot prove possession for that chain.
        with pytest.raises(DelegationError, match="possession"):
            verify_delegation_chain(
                chain[:3],
                trusted_issuers={CAS_DN: cas_key.public},
                possession_nonce=b"x",
                possession_prover=lambda n: prove_possession(
                    bb_keys[BB_C].private, n
                ),
            )
