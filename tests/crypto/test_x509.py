"""Tests for X.509-style certificates, CAs, chains, and revocation."""

import random

import pytest

from repro.crypto.dn import DN
from repro.crypto.x509 import (
    Certificate,
    CertificateAuthority,
    sign_certificate,
    verify_chain,
)
from repro.errors import (
    CertificateError,
    CertificateExpiredError,
    CertificateRevokedError,
    SignatureError,
    UntrustedIssuerError,
)


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(
        DN.make("Grid", "DomainA", "CA-A"), rng=random.Random(5), scheme="simulated"
    )


@pytest.fixture(scope="module")
def other_ca():
    return CertificateAuthority(
        DN.make("Grid", "DomainB", "CA-B"), rng=random.Random(6), scheme="simulated"
    )


class TestIssuance:
    def test_self_certificate_is_self_signed(self, ca):
        cert = ca.certificate
        assert cert.issuer == cert.subject == ca.name
        assert cert.verify_signature(ca.keypair.public)
        assert cert.is_ca

    def test_issue_binds_subject_and_key(self, ca):
        kp, cert = ca.issue_keypair(DN.make("Grid", "DomainA", "BB-A"))
        assert cert.subject.common_name == "BB-A"
        assert cert.public_key == kp.public
        assert cert.issuer == ca.name
        assert not cert.is_ca

    def test_issue_string_subject(self, ca):
        _, cert = ca.issue_keypair("/O=Grid/CN=Alice")
        assert cert.subject == DN.parse("/O=Grid/CN=Alice")

    def test_serials_unique(self, ca):
        _, c1 = ca.issue_keypair(DN.make("Grid", "DomainA", "x1"))
        _, c2 = ca.issue_keypair(DN.make("Grid", "DomainA", "x2"))
        assert c1.serial != c2.serial

    def test_signature_verifies_under_ca(self, ca):
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainA", "svc"))
        assert cert.verify_signature(ca.keypair.public)

    def test_signature_fails_under_other_ca(self, ca, other_ca):
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainA", "svc"))
        assert not cert.verify_signature(other_ca.keypair.public)

    def test_tampered_subject_fails(self, ca):
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainA", "victim"))
        forged = cert.with_tampered_subject(DN.make("Grid", "DomainA", "mallory"))
        assert not forged.verify_signature(ca.keypair.public)

    def test_extension_lookup(self, ca):
        _, cert = ca.issue_keypair(
            DN.make("Grid", "DomainA", "e"), extensions={"color": "blue"}
        )
        assert cert.extension("color") == "blue"
        assert cert.extension("missing", 42) == 42

    def test_bad_validity_window_rejected(self, ca):
        with pytest.raises(CertificateError):
            sign_certificate(
                serial=1,
                issuer=ca.name,
                subject=DN.make("Grid", "DomainA", "x"),
                public_key=ca.keypair.public,
                signing_key=ca.keypair.private,
                not_before=10.0,
                not_after=5.0,
            )

    def test_fingerprint_distinct(self, ca):
        _, c1 = ca.issue_keypair(DN.make("Grid", "DomainA", "f1"))
        _, c2 = ca.issue_keypair(DN.make("Grid", "DomainA", "f2"))
        assert c1.fingerprint != c2.fingerprint


class TestValidity:
    def test_window(self, ca):
        _, cert = ca.issue_keypair(
            DN.make("Grid", "DomainA", "w"), not_before=100.0, not_after=200.0
        )
        assert not cert.valid_at(99.0)
        assert cert.valid_at(100.0)
        assert cert.valid_at(200.0)
        assert not cert.valid_at(201.0)

    def test_check_validity_raises(self, ca):
        _, cert = ca.issue_keypair(
            DN.make("Grid", "DomainA", "w2"), not_before=100.0, not_after=200.0
        )
        with pytest.raises(CertificateExpiredError):
            cert.check_validity(250.0)


class TestRevocation:
    def test_revoke_and_check(self):
        ca = CertificateAuthority(
            DN.make("Grid", "DomainR", "CA"), rng=random.Random(9), scheme="simulated"
        )
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainR", "r"))
        assert not ca.is_revoked(cert)
        ca.revoke(cert.serial)
        assert ca.is_revoked(cert)
        assert cert.serial in ca.crl

    def test_revoke_unknown_serial(self, ca):
        with pytest.raises(CertificateError):
            ca.revoke(999999)

    def test_foreign_cert_not_revoked(self, ca, other_ca):
        _, cert = other_ca.issue_keypair(DN.make("Grid", "DomainB", "f"))
        assert not ca.is_revoked(cert)


class TestChains:
    def test_direct_anchor(self, ca):
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainA", "leaf"))
        assert verify_chain([cert], [ca.certificate]) is cert

    def test_leaf_is_anchor(self, ca):
        assert verify_chain([ca.certificate], [ca.certificate]) is ca.certificate

    def test_intermediate_chain(self, ca):
        # ca -> intermediate CA -> leaf
        inter_kp, inter_cert = ca.issue_keypair(
            DN.make("Grid", "DomainA", "Inter"), is_ca=True
        )
        leaf_cert = sign_certificate(
            serial=77,
            issuer=inter_cert.subject,
            subject=DN.make("Grid", "DomainA", "deep-leaf"),
            public_key=ca.keypair.public,  # any key will do for the test
            signing_key=inter_kp.private,
        )
        assert verify_chain([leaf_cert, inter_cert], [ca.certificate])

    def test_intermediate_without_ca_bit_rejected(self, ca):
        inter_kp, inter_cert = ca.issue_keypair(DN.make("Grid", "DomainA", "NotCA"))
        leaf_cert = sign_certificate(
            serial=78,
            issuer=inter_cert.subject,
            subject=DN.make("Grid", "DomainA", "leaf2"),
            public_key=ca.keypair.public,
            signing_key=inter_kp.private,
        )
        with pytest.raises(CertificateError, match="CA bit"):
            verify_chain([leaf_cert, inter_cert], [ca.certificate])

    def test_untrusted_issuer(self, ca, other_ca):
        _, cert = other_ca.issue_keypair(DN.make("Grid", "DomainB", "leaf"))
        with pytest.raises(UntrustedIssuerError):
            verify_chain([cert], [ca.certificate])

    def test_chain_break_detected(self, ca, other_ca):
        _, leaf = ca.issue_keypair(DN.make("Grid", "DomainA", "leafX"))
        with pytest.raises(CertificateError, match="chain break"):
            verify_chain([leaf, other_ca.certificate], [other_ca.certificate])

    def test_bad_signature_in_chain(self, ca, other_ca):
        # Certificate claims ca as issuer but is signed by other_ca's key.
        forged = sign_certificate(
            serial=80,
            issuer=ca.name,
            subject=DN.make("Grid", "DomainA", "forged"),
            public_key=other_ca.keypair.public,
            signing_key=other_ca.keypair.private,
        )
        with pytest.raises(SignatureError):
            verify_chain([forged, ca.certificate], [ca.certificate])

    def test_expired_leaf(self, ca):
        _, cert = ca.issue_keypair(
            DN.make("Grid", "DomainA", "exp"), not_before=0.0, not_after=10.0
        )
        with pytest.raises(CertificateExpiredError):
            verify_chain([cert], [ca.certificate], at_time=11.0)

    def test_revoked_leaf(self):
        ca = CertificateAuthority(
            DN.make("Grid", "DomainZ", "CA"), rng=random.Random(11), scheme="simulated"
        )
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainZ", "rv"))
        ca.revoke(cert.serial)
        with pytest.raises(CertificateRevokedError):
            verify_chain([cert], [ca.certificate], revocation_checker=ca.is_revoked)

    def test_empty_chain(self, ca):
        with pytest.raises(CertificateError):
            verify_chain([], [ca.certificate])

    def test_max_length(self, ca):
        certs = [ca.certificate] * 9
        with pytest.raises(CertificateError, match="length"):
            verify_chain(certs, [ca.certificate])


class TestRSACertificates:
    def test_rsa_issue_and_verify(self, keypool):
        ca_dn = DN.make("Grid", "DomainA", "CA-RSA")
        ca = CertificateAuthority(ca_dn, keypair=keypool[0], scheme="rsa")
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainA", "svc"), rng=random.Random(1))
        assert cert.verify_signature(keypool[0].public)
        assert verify_chain([cert], [ca.certificate])
