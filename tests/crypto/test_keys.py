"""Tests for key pairs and signature schemes (RSA + simulated)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import (
    PrivateKey,
    RSAScheme,
    SimulatedScheme,
    _is_probable_prime,
    get_scheme,
    register_scheme,
)
from repro.errors import CryptoError


class TestMillerRabin:
    def test_small_primes(self, rng):
        for p in [2, 3, 5, 7, 11, 101, 7919]:
            assert _is_probable_prime(p, rng)

    def test_small_composites(self, rng):
        for c in [0, 1, 4, 9, 100, 7917, 561, 1105]:  # incl. Carmichael numbers
            assert not _is_probable_prime(c, rng)

    def test_large_known_prime(self, rng):
        # 2^89 - 1 is a Mersenne prime.
        assert _is_probable_prime(2**89 - 1, rng)

    def test_large_known_composite(self, rng):
        assert not _is_probable_prime((2**89 - 1) * (2**61 - 1), rng)


class TestRSA:
    def test_sign_verify_roundtrip(self, rsa512, keypool):
        kp = keypool[0]
        sig = rsa512.sign(kp.private, b"hello world")
        assert rsa512.verify(kp.public, b"hello world", sig)

    def test_tampered_message_rejected(self, rsa512, keypool):
        kp = keypool[0]
        sig = rsa512.sign(kp.private, b"hello world")
        assert not rsa512.verify(kp.public, b"hello worlD", sig)

    def test_wrong_key_rejected(self, rsa512, keypool):
        sig = rsa512.sign(keypool[0].private, b"msg")
        assert not rsa512.verify(keypool[1].public, b"msg", sig)

    def test_tampered_signature_rejected(self, rsa512, keypool):
        kp = keypool[0]
        sig = bytearray(rsa512.sign(kp.private, b"msg"))
        sig[0] ^= 0xFF
        assert not rsa512.verify(kp.public, b"msg", bytes(sig))

    def test_empty_signature_rejected(self, rsa512, keypool):
        assert not rsa512.verify(keypool[0].public, b"msg", b"")

    def test_signature_out_of_range_rejected(self, rsa512, keypool):
        n = keypool[0].public.material[0]
        too_big = n.to_bytes((n.bit_length() + 7) // 8 + 1, "big")
        assert not rsa512.verify(keypool[0].public, b"msg", too_big)

    def test_keygen_deterministic_from_seed(self, rsa512):
        a = rsa512.generate(random.Random(7))
        b = rsa512.generate(random.Random(7))
        assert a.public == b.public
        assert a.private == b.private

    def test_distinct_seeds_distinct_keys(self, rsa512):
        a = rsa512.generate(random.Random(7))
        b = rsa512.generate(random.Random(8))
        assert a.public != b.public

    def test_modulus_bit_length(self, rsa512, keypool):
        n = keypool[0].public.material[0]
        assert n.bit_length() in (511, 512)

    def test_minimum_bits_enforced(self):
        with pytest.raises(CryptoError):
            RSAScheme(bits=128)

    def test_scheme_mismatch_on_sign(self, rsa512):
        fake = PrivateKey("simulated", ("seed",))
        with pytest.raises(CryptoError):
            rsa512.sign(fake, b"msg")

    def test_scheme_mismatch_on_verify(self, rsa512, simulated, rng):
        kp = simulated.generate(rng)
        assert not rsa512.verify(kp.public, b"msg", b"sig")

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, message):
        scheme = RSAScheme(bits=512)
        kp = scheme.generate(random.Random(42))
        sig = scheme.sign(kp.private, message)
        assert scheme.verify(kp.public, message, sig)
        assert not scheme.verify(kp.public, message + b"x", sig)


class TestSimulated:
    def test_roundtrip(self, simulated, rng):
        kp = simulated.generate(rng)
        sig = simulated.sign(kp.private, b"payload")
        assert simulated.verify(kp.public, b"payload", sig)

    def test_tamper_detected(self, simulated, rng):
        kp = simulated.generate(rng)
        sig = simulated.sign(kp.private, b"payload")
        assert not simulated.verify(kp.public, b"payloae", sig)

    def test_wrong_key_detected(self, simulated, rng):
        a = simulated.generate(rng)
        b = simulated.generate(rng)
        sig = simulated.sign(a.private, b"payload")
        assert not simulated.verify(b.public, b"payload", sig)

    def test_marked_insecure(self, simulated):
        assert simulated.secure is False

    def test_rsa_marked_secure(self, rsa512):
        assert rsa512.secure is True


class TestRegistry:
    def test_builtin_schemes_present(self):
        assert get_scheme("rsa").name == "rsa"
        assert get_scheme("simulated").name == "simulated"

    def test_unknown_scheme(self):
        with pytest.raises(CryptoError):
            get_scheme("dsa")

    def test_register_custom(self):
        class Null:
            name = "null-test"
            secure = False

            def generate(self, rng):  # pragma: no cover
                raise NotImplementedError

            def sign(self, private, message):  # pragma: no cover
                return b""

            def verify(self, public, message, signature):  # pragma: no cover
                return True

        register_scheme(Null())
        assert get_scheme("null-test").name == "null-test"


class TestKeyIdentity:
    def test_key_id_stable(self, keypool):
        pub = keypool[0].public
        assert pub.key_id == keypool[0].public.key_id
        assert len(pub.key_id) == 16

    def test_key_id_distinct(self, keypool):
        assert keypool[0].public.key_id != keypool[1].public.key_id

    def test_private_repr_hides_material(self, keypool):
        assert "secret" in repr(keypool[0].private)
        assert str(keypool[0].private.material[1]) not in repr(keypool[0].private)
