"""Tests for the certificate repository and repository-based RAR
verification (paper §6.4, key-distribution alternative 2)."""

import random

import pytest

from repro.bb.reservations import ReservationRequest
from repro.core.messages import make_bb_rar, make_user_rar
from repro.core.trust import verify_rar_with_repository
from repro.crypto.dn import DN
from repro.crypto.repository import CertificateRepository
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import CertificateAuthority
from repro.errors import CertificateError, TamperedMessageError

ALICE = DN.make("Grid", "A", "Alice")
BB = {d: DN.make("Grid", d, f"BB-{d}") for d in "ABC"}


@pytest.fixture()
def world():
    rng = random.Random(12)
    ca = CertificateAuthority(DN.make("Grid", "Root", "CA"), rng=rng,
                              scheme="simulated")
    alice_kp, alice_cert = ca.issue_keypair(ALICE)
    keys, certs = {}, {}
    for d in "ABC":
        keys[d], certs[d] = ca.issue_keypair(BB[d])
    return ca, alice_kp, alice_cert, keys, certs


class TestRepository:
    def test_publish_lookup(self, world):
        _, _, alice_cert, _, _ = world
        repo = CertificateRepository()
        repo.publish(alice_cert)
        assert repo.lookup(ALICE) is alice_cert
        assert repo.queries == 1
        assert repo.total_latency_s == pytest.approx(0.002)
        assert ALICE in repo
        assert len(repo) == 1

    def test_unknown_dn_fails(self):
        repo = CertificateRepository()
        with pytest.raises(CertificateError):
            repo.lookup(ALICE)
        assert repo.queries == 1  # failed lookups still cost a round trip

    def test_withdraw(self, world):
        _, _, alice_cert, _, _ = world
        repo = CertificateRepository()
        repo.publish(alice_cert)
        repo.withdraw(ALICE)
        with pytest.raises(CertificateError):
            repo.lookup(ALICE)
        with pytest.raises(CertificateError):
            repo.withdraw(ALICE)

    def test_republish_replaces(self, world):
        ca, _, alice_cert, _, _ = world
        repo = CertificateRepository()
        repo.publish(alice_cert)
        _, new_cert = ca.issue_keypair(ALICE)
        repo.publish(new_cert)
        assert repo.lookup(ALICE) is new_cert


def request():
    return ReservationRequest(
        source_host="h0.A", destination_host="h0.C",
        source_domain="A", destination_domain="C",
        rate_mbps=10.0, start=0.0, end=3600.0,
    )


def build_bare_chain(world):
    """RARs carrying NO introduced certificates: DN references only."""
    _, alice_kp, alice_cert, keys, certs = world
    rar_u = make_user_rar(
        request=request(), source_bb=BB["A"], user=ALICE,
        user_key=alice_kp.private,
    )
    rar_a = make_bb_rar(
        inner=rar_u, introduced_cert=alice_cert, downstream=BB["B"],
        bb=BB["A"], bb_key=keys["A"].private,
    )
    rar_b = make_bb_rar(
        inner=rar_a, introduced_cert=certs["A"], downstream=BB["C"],
        bb=BB["B"], bb_key=keys["B"].private,
    )
    return rar_b


class TestRepositoryVerification:
    def make_store(self, world):
        _, _, _, _, certs = world
        store = TrustStore(TrustPolicy(require_ca_issued_peers=False))
        store.add_introduced_peer(certs["B"])
        return store

    def make_repo(self, world):
        _, _, alice_cert, _, certs = world
        repo = CertificateRepository()
        repo.publish(alice_cert)
        for cert in certs.values():
            repo.publish(cert)
        return repo

    def test_verification_via_repository(self, world):
        rar = build_bare_chain(world)
        _, _, _, _, certs = world
        verified, lookups = verify_rar_with_repository(
            rar,
            verifier=BB["C"],
            peer_certificate=certs["B"],
            truststore=self.make_store(world),
            repository=self.make_repo(world),
        )
        assert verified.user == ALICE
        assert verified.depth == 2
        # One lookup per non-peer signer: BB-A and Alice.
        assert lookups == 2

    def test_missing_cert_in_repository(self, world):
        rar = build_bare_chain(world)
        _, _, _, _, certs = world
        repo = CertificateRepository()
        repo.publish(certs["A"])  # Alice's cert missing
        with pytest.raises(CertificateError):
            verify_rar_with_repository(
                rar, verifier=BB["C"], peer_certificate=certs["B"],
                truststore=self.make_store(world), repository=repo,
            )

    def test_stale_repository_key_detected(self, world):
        """If the repository serves a *different* certificate for a signer
        (e.g. after a key rollover), the signature check fails."""
        ca, _, alice_cert, keys, certs = world
        rar = build_bare_chain(world)
        repo = self.make_repo(world)
        _, rolled = ca.issue_keypair(BB["A"])  # new key for BB-A
        repo.publish(rolled)
        with pytest.raises(TamperedMessageError):
            verify_rar_with_repository(
                rar, verifier=BB["C"], peer_certificate=certs["B"],
                truststore=self.make_store(world), repository=repo,
            )

    def test_latency_accounting(self, world):
        rar = build_bare_chain(world)
        _, _, _, _, certs = world
        repo = self.make_repo(world)
        verify_rar_with_repository(
            rar, verifier=BB["C"], peer_certificate=certs["B"],
            truststore=self.make_store(world), repository=repo,
        )
        assert repo.total_latency_s == pytest.approx(2 * 0.002)
