"""Tests for distinguished names."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.dn import DN, DistinguishedName
from repro.errors import CryptoError


class TestParsing:
    def test_parse_basic(self):
        dn = DN.parse("/O=Grid/OU=DomainA/CN=BB-A")
        assert dn.rdns == (("O", "Grid"), ("OU", "DomainA"), ("CN", "BB-A"))

    def test_parse_lowercase_attrs_normalized(self):
        assert DN.parse("/o=Grid/cn=Alice") == DN.parse("/O=Grid/CN=Alice")

    def test_str_roundtrip(self):
        text = "/O=Grid/OU=DomainB/CN=BB-B"
        assert str(DN.parse(text)) == text

    def test_parse_requires_leading_slash(self):
        with pytest.raises(CryptoError):
            DN.parse("O=Grid/CN=Alice")

    def test_parse_rejects_missing_equals(self):
        with pytest.raises(CryptoError):
            DN.parse("/O=Grid/Alice")

    def test_parse_rejects_empty(self):
        with pytest.raises(CryptoError):
            DN.parse("/")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(CryptoError):
            DN.parse("/XX=zap")

    def test_value_with_slash_rejected(self):
        with pytest.raises(CryptoError):
            DistinguishedName((("CN", "a/b"),))

    def test_empty_value_rejected(self):
        with pytest.raises(CryptoError):
            DistinguishedName((("CN", ""),))

    def test_empty_rdns_rejected(self):
        with pytest.raises(CryptoError):
            DistinguishedName(())


class TestAccessors:
    def test_make(self):
        dn = DN.make("Grid", "DomainA", "Alice")
        assert dn.organization == "Grid"
        assert dn.get("OU") == "DomainA"
        assert dn.common_name == "Alice"

    def test_make_partial(self):
        dn = DN.make("Grid")
        assert dn.common_name is None

    def test_get_case_insensitive(self):
        dn = DN.make("Grid", common_name="Alice")
        assert dn.get("cn") == "Alice"

    def test_get_missing(self):
        assert DN.make("Grid").get("OU") is None

    def test_with_cn_replaces(self):
        dn = DN.make("Grid", "DomainA", "Alice")
        tagged = dn.with_cn("Alice (capability)")
        assert tagged.common_name == "Alice (capability)"
        assert tagged.organization == "Grid"
        assert dn.common_name == "Alice"  # original untouched

    def test_with_cn_appends_when_absent(self):
        dn = DN.make("Grid")
        assert dn.with_cn("X").common_name == "X"

    def test_descendant(self):
        root = DN.parse("/O=Grid")
        child = DN.parse("/O=Grid/OU=DomainA")
        assert child.is_descendant_of(root)
        assert not root.is_descendant_of(child)
        assert not child.is_descendant_of(child)


class TestEqualityOrdering:
    def test_hashable(self):
        assert len({DN.make("Grid", "A"), DN.make("Grid", "A")}) == 1

    def test_ordering_total(self):
        a = DN.make("Grid", "A")
        b = DN.make("Grid", "B")
        assert a < b or b < a

    def test_cbe_stable(self):
        dn = DN.make("Grid", "A", "Alice")
        assert dn.to_cbe() == [["O", "Grid"], ["OU", "A"], ["CN", "Alice"]]


_names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127),
    min_size=1,
    max_size=12,
)


@given(_names, _names, _names)
def test_parse_format_roundtrip_property(org, unit, cn):
    dn = DN.make(org, unit, cn)
    assert DN.parse(str(dn)) == dn
