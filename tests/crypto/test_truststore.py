"""Tests for trust stores and trust policy."""

import random

import pytest

from repro.crypto.dn import DN
from repro.crypto.keys import SimulatedScheme
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import CertificateAuthority, sign_certificate
from repro.errors import CertificateError, UntrustedIssuerError


@pytest.fixture()
def ca():
    return CertificateAuthority(
        DN.make("Grid", "DomainA", "CA"), rng=random.Random(3), scheme="simulated"
    )


@pytest.fixture()
def foreign_ca():
    return CertificateAuthority(
        DN.make("Grid", "DomainZ", "CA"), rng=random.Random(4), scheme="simulated"
    )


class TestAnchorsAndPeers:
    def test_anchor_accepted(self, ca):
        store = TrustStore()
        store.add_anchor(ca.certificate)
        assert store.is_anchor(ca.certificate)
        assert store.accepts_directly(ca.certificate)

    def test_ca_issued_leaf_accepted(self, ca):
        store = TrustStore()
        store.add_anchor(ca.certificate)
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainA", "BB-A"))
        assert store.accepts_directly(cert)

    def test_foreign_leaf_rejected(self, ca, foreign_ca):
        store = TrustStore()
        store.add_anchor(ca.certificate)
        _, cert = foreign_ca.issue_keypair(DN.make("Grid", "DomainZ", "BB-Z"))
        assert not store.accepts_directly(cert)

    def test_peer_requires_anchored_issuer(self, ca, foreign_ca):
        store = TrustStore()
        store.add_anchor(ca.certificate)
        _, cert = foreign_ca.issue_keypair(DN.make("Grid", "DomainZ", "BB-Z"))
        with pytest.raises(UntrustedIssuerError):
            store.add_peer(cert)

    def test_peer_with_bad_signature_rejected(self, ca, foreign_ca):
        store = TrustStore()
        store.add_anchor(ca.certificate)
        # Claims ca as issuer but signed by the foreign CA's key.
        forged = sign_certificate(
            serial=1,
            issuer=ca.name,
            subject=DN.make("Grid", "DomainA", "forged"),
            public_key=foreign_ca.keypair.public,
            signing_key=foreign_ca.keypair.private,
        )
        with pytest.raises(CertificateError):
            store.add_peer(forged)

    def test_peer_without_ca_check(self, foreign_ca):
        policy = TrustPolicy(require_ca_issued_peers=False)
        store = TrustStore(policy)
        _, cert = foreign_ca.issue_keypair(DN.make("Grid", "DomainZ", "BB-Z"))
        store.add_peer(cert)
        assert store.is_direct_peer(cert)
        assert store.accepts_directly(cert)

    def test_peer_lookup_by_dn(self, ca):
        store = TrustStore()
        store.add_anchor(ca.certificate)
        _, cert = ca.issue_keypair(DN.make("Grid", "DomainA", "BB-A"))
        store.add_peer(cert)
        assert store.peer_certificate(cert.subject) is cert
        assert store.peer_certificate(DN.make("Grid", "X", "nope")) is None

    def test_different_cert_same_dn_not_direct_peer(self, ca):
        store = TrustStore()
        store.add_anchor(ca.certificate)
        _, cert1 = ca.issue_keypair(DN.make("Grid", "DomainA", "BB-A"))
        _, cert2 = ca.issue_keypair(DN.make("Grid", "DomainA", "BB-A"))
        store.add_peer(cert1)
        assert not store.is_direct_peer(cert2)

    def test_expired_cert_not_accepted(self, ca):
        store = TrustStore()
        store.add_anchor(ca.certificate)
        _, cert = ca.issue_keypair(
            DN.make("Grid", "DomainA", "short"), not_before=0.0, not_after=10.0
        )
        assert store.accepts_directly(cert, at_time=5.0)
        assert not store.accepts_directly(cert, at_time=50.0)


class TestPolicy:
    def test_depth_policy(self):
        store = TrustStore(TrustPolicy(max_introduction_depth=2))
        assert store.depth_acceptable(0)
        assert store.depth_acceptable(2)
        assert not store.depth_acceptable(3)

    def test_scheme_policy_permissive(self, rng):
        store = TrustStore(TrustPolicy(require_secure_scheme=False))
        kp = SimulatedScheme().generate(rng)
        assert store.scheme_acceptable(kp.public)

    def test_scheme_policy_strict(self, rng, keypool):
        store = TrustStore(TrustPolicy(require_secure_scheme=True))
        sim = SimulatedScheme().generate(rng)
        assert not store.scheme_acceptable(sim.public)
        assert store.scheme_acceptable(keypool[0].public)
