"""Revocation-storm regression: the verification caches' reverse index
stays correct and bounded under sustained revoke/re-issue churn.

The :class:`~repro.workloads.attackers.RevocationStormAttacker` models
an adversary cycling grid-login → reserve → revoke as fast as the gate
allows.  Each cycle registers fresh verdict entries under fresh
credential fingerprints *plus* long-lived shared fingerprints (CA and
broker certificates appear in every verdict's dependency set).  Before
the reverse-index pruning fix, those shared fingerprints accumulated one
stale ``(cache, key)`` pair per cycle forever; 10^4 cycles must now
leave the index bounded by the live entries, with no stale positive
verdicts for anything revoked.
"""

import pytest

from repro.crypto import cache as verification_cache
from repro.crypto.cache import VerificationCaches

CYCLES = 10_000
SHARED = ("fp:ca-root", "fp:bb-victim")


def storm(caches: VerificationCaches, cycles: int = CYCLES) -> None:
    """Drive *cycles* revoke/re-issue rounds against the verdict caches,
    the access pattern the storm persona produces at the victim."""
    for i in range(cycles):
        fingerprint = f"fp:cred-{i}"
        caches.put_verdict(
            "rar", ("rar-key", i), {"verdict": "ok", "cycle": i},
            SHARED + (fingerprint,),
        )
        caches.put_verdict(
            "delegation", ("del-key", i), {"verdict": "ok", "cycle": i},
            SHARED + (fingerprint,),
        )
        # The re-issue is immediately revoked (the storm's whole point).
        caches.invalidate_certificate(fingerprint)


class TestRevocationStormBounds:
    def test_reverse_index_bounded_under_storm(self):
        caches = VerificationCaches(rar_size=256, delegation_size=256)
        storm(caches)
        fingerprints, pairs = caches.reverse_index_size()
        live = len(caches.rar) + len(caches.delegation)
        # Every cycle's entries were invalidated, so nothing is live and
        # the index is empty — bounded by live entries, not by history.
        assert live == 0
        assert fingerprints == 0
        assert pairs == 0

    def test_reverse_index_tracks_only_live_entries_with_survivors(self):
        caches = VerificationCaches(rar_size=64, delegation_size=64)
        # Interleave: every 4th credential survives (never revoked).
        for i in range(CYCLES):
            fingerprint = f"fp:cred-{i}"
            caches.put_verdict(
                "rar", ("rar-key", i), {"cycle": i},
                SHARED + (fingerprint,),
            )
            if i % 4:
                caches.invalidate_certificate(fingerprint)
        live = len(caches.rar)
        assert live <= 64
        fingerprints, pairs = caches.reverse_index_size()
        # Each live entry registers len(SHARED) + 1 fingerprints.
        assert pairs == live * (len(SHARED) + 1)
        assert fingerprints <= live + len(SHARED)

    def test_lru_eviction_prunes_reverse_index(self):
        caches = VerificationCaches(rar_size=8, delegation_size=8)
        for i in range(100):
            caches.put_verdict(
                "rar", ("rar-key", i), {"cycle": i},
                SHARED + (f"fp:cred-{i}",),
            )
        assert caches.rar.evictions == 92
        fingerprints, pairs = caches.reverse_index_size()
        assert pairs == 8 * (len(SHARED) + 1)
        # Evicted entries' private fingerprints are gone from the index.
        assert fingerprints == 8 + len(SHARED)

    def test_no_stale_positive_verdict_after_revocation(self):
        caches = VerificationCaches(rar_size=256, delegation_size=256)
        hits = 0
        for i in range(1000):
            fingerprint = f"fp:cred-{i}"
            caches.put_verdict(
                "rar", ("rar-key", i), {"cycle": i},
                SHARED + (fingerprint,),
            )
            caches.invalidate_certificate(fingerprint)
            if caches.get_verdict("rar", ("rar-key", i)) is not None:
                hits += 1
        assert hits == 0, "a revoked credential admitted from cache"

    def test_shared_fingerprint_revocation_still_sweeps_everything(self):
        # Pruning must not break the broad sweep: revoking a *shared*
        # dependency (the CA) drops every live verdict at once.
        caches = VerificationCaches(rar_size=256, delegation_size=256)
        for i in range(50):
            caches.put_verdict(
                "rar", ("rar-key", i), {"cycle": i},
                SHARED + (f"fp:cred-{i}",),
            )
        dropped = caches.invalidate_certificate("fp:ca-root")
        assert dropped == 50
        assert len(caches.rar) == 0
        fingerprints, pairs = caches.reverse_index_size()
        assert fingerprints == 0 and pairs == 0

    def test_overwrite_reregisters_dependencies(self):
        caches = VerificationCaches(rar_size=16, delegation_size=16)
        caches.put_verdict("rar", "k", {"v": 1}, ("fp:old",))
        caches.put_verdict("rar", "k", {"v": 2}, ("fp:new",))
        # The old fingerprint no longer reaches the entry...
        assert caches.invalidate_certificate("fp:old") == 0
        assert caches.get_verdict("rar", "k") == {"v": 2}
        # ...and the new one does.
        assert caches.invalidate_certificate("fp:new") == 1
        assert caches.get_verdict("rar", "k") is None


class TestStormEndToEnd:
    def test_storm_persona_leaves_caches_bounded(self):
        """A real (short) storm through the testbed under live caches."""
        import random
        import zlib

        from repro.core.testbed import build_linear_testbed
        from repro.workloads.attackers import RevocationStormAttacker

        with verification_cache.use_caches() as caches:
            testbed = build_linear_testbed(["A", "B"])
            persona = RevocationStormAttacker(
                testbed, victim="B", source="A",
                rng=random.Random(zlib.crc32(b"storm-cache")),
            )
            persona.prepare(0.0)
            for i in range(40):
                persona.fire(i * 2.0)
            assert persona.stats.admitted == 40
            _, pairs = caches.reverse_index_size()
            live = len(caches.rar) + len(caches.delegation)
            # The index never exceeds what the live entries explain
            # (each entry registers a handful of fingerprints).
            assert pairs <= live * 16
