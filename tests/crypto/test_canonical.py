"""Unit and property tests for canonical byte encoding."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import canonical
from repro.errors import EncodingError


class TestBasicValues:
    def test_none(self):
        assert canonical.encode(None) == b"N" + (0).to_bytes(4, "big")

    def test_bool_distinct_from_int(self):
        assert canonical.encode(True) != canonical.encode(1)
        assert canonical.encode(False) != canonical.encode(0)

    def test_int_roundtrip_distinct(self):
        values = [0, 1, -1, 10**40, -(10**40), 255, 256]
        encodings = {canonical.encode(v) for v in values}
        assert len(encodings) == len(values)

    def test_float_distinct_from_int(self):
        assert canonical.encode(1.0) != canonical.encode(1)

    def test_float_nan_rejected(self):
        with pytest.raises(EncodingError):
            canonical.encode(float("nan"))

    def test_float_inf_rejected(self):
        with pytest.raises(EncodingError):
            canonical.encode(math.inf)
        with pytest.raises(EncodingError):
            canonical.encode(-math.inf)

    def test_str_bytes_distinct(self):
        assert canonical.encode("ab") != canonical.encode(b"ab")

    def test_unicode(self):
        assert canonical.encode("héllo") != canonical.encode("hello")


class TestComposites:
    def test_tuple_list_equivalent(self):
        assert canonical.encode((1, 2)) == canonical.encode([1, 2])

    def test_concatenation_ambiguity(self):
        # The classic injectivity trap.
        assert canonical.encode(("ab", "c")) != canonical.encode(("a", "bc"))

    def test_nesting_ambiguity(self):
        assert canonical.encode([[1], 2]) != canonical.encode([1, [2]])
        assert canonical.encode([[]]) != canonical.encode([])

    def test_dict_key_order_irrelevant(self):
        assert canonical.encode({"a": 1, "b": 2}) == canonical.encode({"b": 2, "a": 1})

    def test_dict_vs_list_of_pairs(self):
        assert canonical.encode({"a": 1}) != canonical.encode([["a", 1]])

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(EncodingError):
            canonical.encode({1: "a"})

    def test_mixed_dict_keys_rejected(self):
        with pytest.raises(EncodingError):
            canonical.encode({"a": 1, 2: 3})

    def test_unsupported_type_rejected(self):
        with pytest.raises(EncodingError):
            canonical.encode({"x": object()})

    def test_to_cbe_hook(self):
        class Wrapped:
            def to_cbe(self):
                return {"kind": "wrapped", "value": 7}

        assert canonical.encode(Wrapped()) == canonical.encode(
            {"kind": "wrapped", "value": 7}
        )

    def test_depth_limit(self):
        value = []
        for _ in range(300):
            value = [value]
        with pytest.raises(EncodingError):
            canonical.encode(value)


class TestDigestFingerprint:
    def test_digest_length(self):
        assert len(canonical.digest({"a": 1})) == 32

    def test_fingerprint_prefix(self):
        fp = canonical.fingerprint("hello", length=12)
        assert len(fp) == 12
        assert fp == canonical.digest("hello").hex()[:12]

    def test_digest_changes_with_value(self):
        assert canonical.digest({"bw": 10}) != canonical.digest({"bw": 11})


# -- property tests -----------------------------------------------------------

_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)

_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


def _normalize(v):
    """Logical equality modulo tuple/list equivalence."""
    if isinstance(v, (list, tuple)):
        return ("seq", tuple(_normalize(x) for x in v))
    if isinstance(v, dict):
        return ("map", tuple(sorted((k, _normalize(x)) for k, x in v.items())))
    if isinstance(v, float):
        return ("f", v.hex())
    if isinstance(v, bool):
        return ("b", v)
    return v


@settings(max_examples=200)
@given(_value)
def test_encode_deterministic(value):
    assert canonical.encode(value) == canonical.encode(value)


@settings(max_examples=200)
@given(_value, _value)
def test_encode_injective(a, b):
    if _normalize(a) != _normalize(b):
        assert canonical.encode(a) != canonical.encode(b)
    else:
        assert canonical.encode(a) == canonical.encode(b)


@settings(max_examples=300)
@given(st.binary(max_size=120))
def test_decoder_total_on_garbage(data):
    """Safety: the wire decoder never raises anything but EncodingError on
    arbitrary bytes, and anything it does accept re-encodes canonically."""
    try:
        value = canonical.decode(data)
    except EncodingError:
        return
    # Accepted input must be the canonical encoding of its own value.
    assert canonical.encode(value) == data
