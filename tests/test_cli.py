"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestReserve:
    def test_hop_by_hop_grant(self, capsys):
        rc = main(["reserve", "--domains", "A,B,C", "--rate", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "granted  : True" in out
        assert "A -> B -> C" in out

    def test_denial_exit_code(self, capsys):
        rc = main(["reserve", "--rate", "500"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "denied by A" in out

    def test_agent_without_trust_denied_then_stars_ok(self, capsys):
        rc = main(["reserve", "--approach", "stars"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "approach : stars" in out

    def test_agent_concurrent(self, capsys):
        rc = main(["reserve", "--approach", "agent-concurrent"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "granted  : True" in out

    def test_explicit_endpoints(self, capsys):
        rc = main([
            "reserve", "--domains", "X,Y,Z", "--source", "Y", "--dest", "Z",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Y -> Z" in out

    def test_empty_domains(self, capsys):
        rc = main(["reserve", "--domains", ","])
        assert rc == 2


class TestPolicyCheck:
    POLICY = (
        "If User = Alice\n"
        "    If BW <= 10Mb/s\n"
        "        Return GRANT\n"
        "Return DENY\n"
    )

    def write(self, tmp_path, text=None):
        path = tmp_path / "policy.txt"
        path.write_text(text if text is not None else self.POLICY)
        return str(path)

    def test_grant(self, tmp_path, capsys):
        rc = main(["policy-check", self.write(tmp_path),
                   "--user", "Alice", "--bw", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GRANT" in out

    def test_deny(self, tmp_path, capsys):
        rc = main(["policy-check", self.write(tmp_path),
                   "--user", "Bob", "--bw", "8"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DENY" in out

    def test_groups_and_issuers(self, tmp_path, capsys):
        policy = (
            "If Group = Atlas and Issued_by(Capability) = ESnet\n"
            "    Return GRANT\nReturn DENY"
        )
        rc = main([
            "policy-check", self.write(tmp_path, policy),
            "--group", "Atlas", "--capability-issuer", "ESnet",
        ])
        assert rc == 0

    def test_linked_reservations(self, tmp_path):
        policy = "If HasValidCPUResv(RAR)\n    Return GRANT\nReturn DENY"
        rc = main([
            "policy-check", self.write(tmp_path, policy),
            "--linked", "cpu=CPU-1",
        ])
        assert rc == 0
        rc = main(["policy-check", self.write(tmp_path, policy)])
        assert rc == 1

    def test_bad_linked_syntax(self, tmp_path, capsys):
        rc = main([
            "policy-check", self.write(tmp_path), "--linked", "nonsense",
        ])
        assert rc == 2
        assert "kind=handle" in capsys.readouterr().err

    def test_syntax_error_reported(self, tmp_path, capsys):
        rc = main(["policy-check", self.write(tmp_path, "Gibberish here")])
        assert rc == 2
        assert "syntax error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        rc = main(["policy-check", "/nonexistent/policy.txt"])
        assert rc == 2

    def test_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("Return GRANT"))
        rc = main(["policy-check", "-"])
        assert rc == 0


class TestAttack:
    def test_attack_report(self, capsys):
        rc = main(["attack"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "complete=False" in out
        assert "Figure 4 reproduced" in out


class TestMetrics:
    def test_prometheus_dump(self, capsys):
        rc = main(["metrics", "--domains", "A,B,C", "--runs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert 'rar_verifications_total{mode="introduction",result="ok"} 6' in out
        assert 'admissions_total{domain="C",granted="true"} 2' in out
        assert "hop_latency_seconds_bucket" in out

    def test_json_dump(self, capsys):
        import json

        rc = main(["metrics", "--runs", "1", "--format", "json"])
        out = capsys.readouterr().out
        assert rc == 0
        snapshot = json.loads(out)
        assert snapshot["reservations_total"]["kind"] == "counter"

    def test_denied_run_exit_code(self, capsys):
        rc = main(["metrics", "--rate", "500", "--runs", "1"])
        out = capsys.readouterr().out
        assert rc == 1
        assert 'reservations_total{result="denied"} 1' in out


class TestTrace:
    def test_span_tree_and_cross_check(self, capsys):
        rc = main(["trace", "--domains", "A,B,C,D"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace req-" in out
        assert "hop order : A -> B -> C -> D" in out
        assert "span tree matches envelope path: True" in out
        # One verify phase per hop, depth increasing along the path.
        assert out.count("verify wall=") == 4

    def test_verbose_flag_enables_info_logging(self, capsys):
        rc = main(["-v", "trace", "--domains", "A,B"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "granted" in captured.err  # INFO line from the protocol


class TestWorkload:
    def test_light_load(self, capsys):
        rc = main(["workload", "--load", "0.25", "--horizon", "2000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "acceptance ratio  : 1.00" in out

    def test_heavy_load_reports_rejections(self, capsys):
        rc = main(["workload", "--load", "3.0", "--horizon", "3000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Erlang-B predicts" in out
        assert "rejections" in out


class TestAudit:
    def test_explain_live_demo_four_domains(self, capsys):
        rc = main(["audit", "explain", "--domains", "A,B,C,D"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "decision chain" in out
        assert "A -> B -> C -> D" in out
        assert "rule:" in out
        assert "check:" in out
        assert "[fresh]" in out

    def test_explain_save_then_query_and_reconcile(self, capsys, tmp_path):
        ledger_path = str(tmp_path / "ledger.json")
        rc = main(["audit", "explain", "--save", ledger_path])
        assert rc == 0
        capsys.readouterr()

        rc = main(["audit", "query", "--ledger", ledger_path,
                   "--kind", "admit"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("admit") == 4  # one admission per domain

        rc = main(["audit", "--reconcile", "--ledger", ledger_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit reconciliation: OK" in out

    def test_explain_resolves_handle_from_ledger(self, capsys, tmp_path):
        ledger_path = str(tmp_path / "ledger.json")
        main(["audit", "explain", "--save", ledger_path])
        capsys.readouterr()
        import json

        with open(ledger_path, encoding="utf-8") as fh:
            records = json.load(fh)["records"]
        handle = next(r["handle"] for r in records if r["kind"] == "admit")
        rc = main(["audit", "explain", handle, "--ledger", ledger_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert handle in out

    def test_query_json_output(self, capsys, tmp_path):
        ledger_path = str(tmp_path / "ledger.json")
        main(["audit", "explain", "--save", ledger_path])
        capsys.readouterr()
        import json

        rc = main(["audit", "query", "--ledger", ledger_path, "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        docs = json.loads(out)
        assert docs and all("kind" in d for d in docs)

    def test_reconcile_runs_chaos_campaign(self, capsys):
        rc = main(["audit", "--reconcile", "--trials", "5", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit reconciliation: OK" in out

    def test_error_paths(self, capsys):
        assert main(["audit", "query"]) == 2  # no --ledger
        assert main(["audit"]) == 2  # no mode, no --reconcile
        assert main(["audit", "query", "--reconcile"]) == 2
        capsys.readouterr()

    def test_unknown_target_fails(self, capsys, tmp_path):
        ledger_path = str(tmp_path / "ledger.json")
        main(["audit", "explain", "--save", ledger_path])
        capsys.readouterr()
        rc = main(["audit", "explain", "RES-Z-999999",
                   "--ledger", ledger_path])
        assert rc == 1

    def test_bad_kind_rejected(self, capsys, tmp_path):
        ledger_path = str(tmp_path / "ledger.json")
        main(["audit", "explain", "--save", ledger_path])
        capsys.readouterr()
        assert main(["audit", "query", "--ledger", ledger_path,
                     "--kind", "bogus"]) == 2


class TestChaosAudit:
    def test_chaos_audit_flag_and_ledger_save(self, capsys, tmp_path):
        ledger_path = str(tmp_path / "chaos-ledger.json")
        rc = main(["chaos", "--trials", "4", "--seed", "3", "--audit",
                   "--save-ledger", ledger_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit" in out
        capsys.readouterr()
        rc = main(["audit", "--reconcile", "--ledger", ledger_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "audit reconciliation: OK" in out


class TestTelemetryCLI:
    """PR 9 surface: attack --record, top, timeline, chaos/slo --record."""

    def test_attack_record_then_replay_top_and_timeline(
        self, tmp_path, capsys
    ):
        recording = tmp_path / "flood.tsrec"
        main([
            "attack", "--persona", "flood", "--defenses", "off",
            "--horizon", "60", "--record", str(recording),
        ])
        out = capsys.readouterr().out
        assert recording.exists()
        assert "detection" in out
        assert "time-to-detect" in out
        assert "never" not in out  # flood without defenses is caught

    # The replay side: the incident renders and the gates see it.
        rc = main(["top", "--replay", str(recording), "--expect-firing"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "persona=flood" in out
        assert "FIRING" in out or "firing" in out

        rc = main(["top", "--replay", str(recording), "--at", "10"])
        capsys.readouterr()
        assert rc == 0

        rc = main(["timeline", "40:60", "--replay", str(recording)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "alert" in out or "deny" in out

    def test_top_live_renders_fleet(self, capsys):
        rc = main(["top", "--runs", "5", "--domains", "A,B,C"])
        out = capsys.readouterr().out
        assert rc == 0
        for domain in ("A", "B", "C"):
            assert domain in out

    def test_top_missing_recording_is_usage_error(self, capsys):
        rc = main(["top", "--replay", "/nonexistent/x.tsrec"])
        capsys.readouterr()
        assert rc == 2

    def test_timeline_live(self, capsys):
        rc = main(["timeline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "admit" in out or "grant" in out or "timeline" in out

    def test_chaos_record_gates_clean_and_slo_replays(
        self, tmp_path, capsys
    ):
        recording = tmp_path / "chaos.tsrec"
        rc = main([
            "chaos", "--seed", "7", "--trials", "20",
            "--record", str(recording), "--fail-on-critical",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "telemetry:" in out
        assert "0 critical firing(s)" in out

        rc = main(["slo", "--record", str(recording)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "frame" in out

    def test_chaos_fail_on_critical_requires_record(self, capsys):
        rc = main(["chaos", "--trials", "5", "--fail-on-critical"])
        capsys.readouterr()
        assert rc == 2
