"""Tests for flow specs and statistics."""

import pytest

from repro.net.flows import FlowSpec, FlowStats
from repro.net.packet import DSCP


class TestFlowSpec:
    def test_derived_rates(self):
        spec = FlowSpec("f", "a", "b", rate_mbps=12.0)
        assert spec.rate_bps == 12e6
        assert spec.packets_per_second == pytest.approx(1000.0)

    def test_dscp_default_be(self):
        assert FlowSpec("f", "a", "b", 1.0).dscp is DSCP.BE


class TestFlowStats:
    def make(self):
        st = FlowStats("f")
        for i in range(10):
            st.on_send(12_000, now=float(i))
            st.on_deliver(12_000, created=float(i), now=float(i) + 0.01 * (i + 1))
        return st

    def test_counters(self):
        st = self.make()
        assert st.sent_packets == st.delivered_packets == 10
        assert st.delivery_ratio == 1.0
        assert st.loss_ratio == 0.0
        assert st.first_send == 0.0
        assert st.last_delivery == pytest.approx(9.1)

    def test_drops_and_downgrades(self):
        st = FlowStats("f")
        st.on_send(1000, 0.0)
        st.on_drop()
        st.on_downgrade()
        assert st.loss_ratio == 1.0
        assert st.downgraded_packets == 1

    def test_mean_delay(self):
        st = self.make()
        # delays are 0.01, 0.02, ..., 0.10 -> mean 0.055.
        assert st.mean_delay_s == pytest.approx(0.055)

    def test_goodput(self):
        st = self.make()
        assert st.goodput_mbps(10.0) == pytest.approx(0.012)
        assert st.goodput_mbps(0.0) == 0.0

    def test_delay_percentiles(self):
        st = self.make()
        pcts = st.delay_percentiles((50.0, 100.0))
        assert pcts[50.0] == pytest.approx(0.055)
        assert pcts[100.0] == pytest.approx(0.10)

    def test_delay_percentiles_empty(self):
        assert FlowStats("f").delay_percentiles() == {}

    def test_jitter(self):
        st = self.make()
        assert st.jitter_s() > 0.0
        assert FlowStats("f").jitter_s() == 0.0

    def test_zero_sent_ratios(self):
        st = FlowStats("f")
        assert st.loss_ratio == 0.0
        assert st.delivery_ratio == 0.0
        assert st.mean_delay_s == 0.0
