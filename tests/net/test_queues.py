"""Tests for drop-tail queues and the strict-priority scheduler."""

from repro.net.packet import DSCP, PHB, Packet, phb_for_dscp
from repro.net.queues import DropTailQueue, PriorityScheduler


def mk(dscp=DSCP.BE, size=1000, flow="f"):
    return Packet(flow_id=flow, src="a", dst="b", size_bits=size, dscp=dscp)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        p1, p2 = mk(), mk()
        assert q.offer(p1) and q.offer(p2)
        assert q.poll() is p1
        assert q.poll() is p2
        assert q.poll() is None

    def test_occupancy_tracking(self):
        q = DropTailQueue(10_000)
        q.offer(mk(size=4000))
        assert q.occupancy_bits == 4000
        q.poll()
        assert q.occupancy_bits == 0

    def test_overflow_drops(self):
        q = DropTailQueue(5000)
        assert q.offer(mk(size=4000))
        assert not q.offer(mk(size=2000))
        assert q.drops == 1
        assert q.enqueued == 1

    def test_len(self):
        q = DropTailQueue(10_000)
        q.offer(mk())
        assert len(q) == 1


class TestPhbMapping:
    def test_ef_is_expedited(self):
        assert phb_for_dscp(DSCP.EF) is PHB.EXPEDITED

    def test_af_classes_assured(self):
        for d in (DSCP.AF41, DSCP.AF42, DSCP.AF43):
            assert phb_for_dscp(d) is PHB.ASSURED

    def test_be_default(self):
        assert phb_for_dscp(DSCP.BE) is PHB.DEFAULT


class TestPriorityScheduler:
    def test_ef_served_first(self):
        s = PriorityScheduler()
        be = mk(DSCP.BE)
        ef = mk(DSCP.EF)
        af = mk(DSCP.AF41)
        s.offer(be)
        s.offer(af)
        s.offer(ef)
        assert s.poll() is ef
        assert s.poll() is af
        assert s.poll() is be
        assert s.poll() is None

    def test_fifo_within_class(self):
        s = PriorityScheduler()
        a, b = mk(DSCP.EF, flow="a"), mk(DSCP.EF, flow="b")
        s.offer(a)
        s.offer(b)
        assert s.poll() is a
        assert s.poll() is b

    def test_per_class_capacity(self):
        s = PriorityScheduler(capacity_bits_per_class=1500)
        assert s.offer(mk(DSCP.EF, size=1000))
        assert not s.offer(mk(DSCP.EF, size=1000))  # EF queue full
        assert s.offer(mk(DSCP.BE, size=1000))  # BE queue independent
        assert s.total_drops == 1

    def test_backlog_and_len(self):
        s = PriorityScheduler()
        s.offer(mk(DSCP.EF, size=1000))
        s.offer(mk(DSCP.BE, size=2000))
        assert s.backlog_bits == 3000
        assert len(s) == 2
        s.poll()
        assert s.backlog_bits == 2000


class TestAFDropPrecedence:
    """RFC 2597 semantics inside the assured class."""

    def test_af43_dropped_first(self):
        s = PriorityScheduler(capacity_bits_per_class=10_000)
        # Fill the assured queue to 50% with AF41.
        for _ in range(5):
            assert s.offer(mk(DSCP.AF41, size=1000))
        # AF43 arrivals now hit the 50% threshold...
        assert not s.offer(mk(DSCP.AF43, size=1000))
        # ...while AF42 and AF41 still get in.
        assert s.offer(mk(DSCP.AF42, size=1000))
        assert s.offer(mk(DSCP.AF41, size=1000))
        assert s.precedence_drops == 1

    def test_af42_dropped_at_higher_threshold(self):
        s = PriorityScheduler(capacity_bits_per_class=10_000)
        for _ in range(8):
            assert s.offer(mk(DSCP.AF41, size=1000))
        assert not s.offer(mk(DSCP.AF42, size=1000))
        assert s.offer(mk(DSCP.AF41, size=1000))

    def test_af41_survives_to_tail_drop(self):
        s = PriorityScheduler(capacity_bits_per_class=10_000)
        for _ in range(10):
            assert s.offer(mk(DSCP.AF41, size=1000))
        assert not s.offer(mk(DSCP.AF41, size=1000))  # genuine tail drop
        assert s.precedence_drops == 0

    def test_ef_and_be_unaffected_by_thresholds(self):
        s = PriorityScheduler(capacity_bits_per_class=10_000)
        for _ in range(9):
            s.offer(mk(DSCP.EF, size=1000))
            s.offer(mk(DSCP.BE, size=1000))
        assert s.offer(mk(DSCP.EF, size=1000))
        assert s.offer(mk(DSCP.BE, size=1000))
