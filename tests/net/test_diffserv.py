"""Integration tests for the DiffServ data plane."""

import random

import pytest

from repro.errors import RoutingError, SimulationError
from repro.net.diffserv import ExceedAction, NetworkModel, TrafficProfile
from repro.net.flows import FlowSpec
from repro.net.packet import DSCP, Packet
from repro.net.simulator import Simulator
from repro.net.topology import linear_domain_chain
from repro.net.trafficgen import CBRSource, OnOffSource, PoissonSource


def make_model(**kwargs):
    topo = linear_domain_chain(["A", "B", "C"], hosts_per_domain=2, **kwargs)
    return NetworkModel(topo, Simulator())


def run_cbr(model, spec, duration=1.0, start=0.0):
    CBRSource(model, spec, start_time=start, stop_time=start + duration).start()
    model.sim.run()
    return model.stats_for(spec.flow_id)


class TestDelivery:
    def test_cbr_flow_delivered(self):
        model = make_model()
        spec = FlowSpec("f1", "h0.A", "h0.C", rate_mbps=10.0)
        stats = run_cbr(model, spec, duration=1.0)
        assert stats.sent_packets > 0
        assert stats.delivered_packets == stats.sent_packets
        assert stats.loss_ratio == 0.0
        assert stats.goodput_mbps(1.0) == pytest.approx(10.0, rel=0.05)

    def test_delay_includes_propagation(self):
        model = make_model()
        spec = FlowSpec("f1", "h0.A", "h0.C", rate_mbps=1.0)
        stats = run_cbr(model, spec, duration=0.1)
        # Path: h-core-edge | edge-core-edge | edge-core-h: 4 intra (0.5ms)
        # hops... at minimum the 2 inter-domain 5ms links dominate: > 10ms.
        assert stats.mean_delay_s > 0.010

    def test_intradomain_flow(self):
        model = make_model()
        spec = FlowSpec("f1", "h0.A", "h1.A", rate_mbps=5.0)
        stats = run_cbr(model, spec, duration=0.5)
        assert stats.delivered_packets == stats.sent_packets

    def test_inject_from_router_rejected(self):
        model = make_model()
        pkt = Packet("f", "core.A", "h0.C", 1000)
        with pytest.raises(RoutingError):
            model.inject(pkt)


class TestFirstHopPolicing:
    def test_unreserved_ef_remarked_to_be(self):
        model = make_model()
        spec = FlowSpec("cheat", "h0.A", "h0.C", rate_mbps=5.0, dscp=DSCP.EF)
        stats = run_cbr(model, spec, duration=0.2)
        # Every packet downgraded at the first router.
        assert stats.downgraded_packets == stats.sent_packets

    def test_reserved_flow_marked_ef(self):
        model = make_model()
        model.install_flow_policer(
            "core.A", "good", TrafficProfile(rate_mbps=10.0), mark=DSCP.EF
        )
        # Provision ingress aggregates downstream so EF survives.
        model.set_aggregate_rate("edge.B.left", DSCP.EF, 10.0)
        model.set_aggregate_rate("edge.C.left", DSCP.EF, 10.0)
        spec = FlowSpec("good", "h0.A", "h0.C", rate_mbps=8.0, dscp=DSCP.EF)
        stats = run_cbr(model, spec, duration=0.5)
        assert stats.downgraded_packets == 0
        assert stats.delivered_packets == stats.sent_packets
        policer = model.flow_policer("core.A", "good")
        assert policer.conformed == stats.sent_packets

    def test_flow_exceeding_profile_downgraded(self):
        model = make_model()
        model.install_flow_policer(
            "core.A",
            "greedy",
            TrafficProfile(rate_mbps=5.0, burst_bits=24_000),
            mark=DSCP.EF,
            exceed=ExceedAction.DOWNGRADE,
        )
        spec = FlowSpec("greedy", "h0.A", "h0.C", rate_mbps=10.0, dscp=DSCP.EF)
        stats = run_cbr(model, spec, duration=1.0)
        # Roughly half the traffic exceeds the 5 Mb/s profile.
        assert stats.downgraded_packets > 0.3 * stats.sent_packets
        assert stats.delivered_packets == stats.sent_packets  # downgraded, not lost

    def test_flow_exceeding_profile_dropped(self):
        model = make_model()
        model.install_flow_policer(
            "core.A",
            "greedy",
            TrafficProfile(rate_mbps=5.0, burst_bits=24_000),
            mark=DSCP.EF,
            exceed=ExceedAction.DROP,
        )
        spec = FlowSpec("greedy", "h0.A", "h0.C", rate_mbps=10.0, dscp=DSCP.EF)
        stats = run_cbr(model, spec, duration=1.0)
        assert stats.dropped_packets > 0.3 * stats.sent_packets
        assert model.total_drops("flow-policer") == stats.dropped_packets

    def test_remove_flow_policer(self):
        model = make_model()
        model.install_flow_policer("core.A", "f", TrafficProfile(1.0))
        model.remove_flow_policer("core.A", "f")
        assert model.flow_policer("core.A", "f") is None
        with pytest.raises(SimulationError):
            model.remove_flow_policer("core.A", "f")

    def test_policer_on_host_rejected(self):
        model = make_model()
        with pytest.raises(RoutingError):
            model.install_flow_policer("h0.A", "f", TrafficProfile(1.0))


class TestIngressAggregatePolicing:
    def test_unprovisioned_ingress_strips_marks(self):
        model = make_model()
        model.install_flow_policer("core.A", "f", TrafficProfile(10.0), mark=DSCP.EF)
        spec = FlowSpec("f", "h0.A", "h0.C", rate_mbps=5.0, dscp=DSCP.EF)
        stats = run_cbr(model, spec, duration=0.2)
        # Stripped at edge.B.left (no aggregate provisioned there).
        assert stats.downgraded_packets == stats.sent_packets

    def test_aggregate_admits_within_rate(self):
        model = make_model()
        model.install_flow_policer("core.A", "f", TrafficProfile(10.0), mark=DSCP.EF)
        model.set_aggregate_rate("edge.B.left", DSCP.EF, 10.0)
        model.set_aggregate_rate("edge.C.left", DSCP.EF, 10.0)
        spec = FlowSpec("f", "h0.A", "h0.C", rate_mbps=9.0, dscp=DSCP.EF)
        stats = run_cbr(model, spec, duration=1.0)
        assert stats.dropped_packets == 0
        assert stats.downgraded_packets == 0

    def test_aggregate_drops_excess(self):
        """Two 10 Mb/s EF flows hit an ingress provisioned for 10 Mb/s:
        about half the aggregate is dropped — the Figure 4 mechanism."""
        model = make_model()
        model.install_flow_policer("core.A", "alice", TrafficProfile(10.0), mark=DSCP.EF)
        model.install_flow_policer("core.A", "david", TrafficProfile(10.0), mark=DSCP.EF)
        model.set_aggregate_rate("edge.B.left", DSCP.EF, 20.0)
        model.set_aggregate_rate("edge.C.left", DSCP.EF, 10.0)  # C expects only Alice
        for seed, (fid, host) in enumerate([("alice", "h0.A"), ("david", "h1.A")]):
            PoissonSource(
                model,
                FlowSpec(fid, host, "h0.C", rate_mbps=10.0, dscp=DSCP.EF),
                rng=random.Random(seed),
                stop_time=1.0,
            ).start()
        model.sim.run()
        alice = model.stats_for("alice")
        david = model.stats_for("david")
        total_sent = alice.sent_packets + david.sent_packets
        total_dropped = alice.dropped_packets + david.dropped_packets
        assert total_dropped == pytest.approx(total_sent / 2, rel=0.25)
        # Crucially, Alice suffers even though SHE reserved correctly.
        assert alice.dropped_packets > 0.2 * alice.sent_packets

    def test_aggregate_reconfigure(self):
        model = make_model()
        p1 = model.set_aggregate_rate("edge.B.left", DSCP.EF, 10.0)
        p2 = model.set_aggregate_rate("edge.B.left", DSCP.EF, 20.0)
        assert p1 is p2
        assert p1.bucket.rate_bps == 20e6

    def test_aggregate_on_core_router_rejected(self):
        model = make_model()
        with pytest.raises(RoutingError):
            model.set_aggregate_rate("core.A", DSCP.EF, 10.0)


class TestPriorityUnderCongestion:
    def test_ef_protected_from_be_flood(self):
        """An EF flow keeps its goodput across a congested interdomain link
        while best-effort traffic starves — the DiffServ value proposition."""
        model = make_model(inter_capacity_mbps=20.0)
        model.install_flow_policer("core.A", "ef", TrafficProfile(10.0), mark=DSCP.EF)
        model.set_aggregate_rate("edge.B.left", DSCP.EF, 10.0)
        model.set_aggregate_rate("edge.C.left", DSCP.EF, 10.0)
        CBRSource(
            model, FlowSpec("ef", "h0.A", "h0.C", 9.0, dscp=DSCP.EF), stop_time=1.0
        ).start()
        # 30 Mb/s of BE over a 20 Mb/s link.
        CBRSource(model, FlowSpec("be", "h1.A", "h1.C", 30.0), stop_time=1.0).start()
        model.sim.run()
        ef = model.stats_for("ef")
        be = model.stats_for("be")
        assert ef.delivery_ratio > 0.99
        assert be.delivery_ratio < 0.75
        assert model.total_drops("queue-overflow") > 0


class TestGenerators:
    def test_poisson_mean_rate(self):
        model = make_model()
        spec = FlowSpec("p", "h0.A", "h0.C", rate_mbps=10.0)
        PoissonSource(model, spec, rng=random.Random(7), stop_time=2.0).start()
        model.sim.run()
        stats = model.stats_for("p")
        assert stats.goodput_mbps(2.0) == pytest.approx(10.0, rel=0.15)

    def test_onoff_long_run_rate(self):
        model = make_model()
        spec = FlowSpec("o", "h0.A", "h0.C", rate_mbps=10.0)
        OnOffSource(model, spec, rng=random.Random(7), stop_time=4.0).start()
        model.sim.run()
        stats = model.stats_for("o")
        assert stats.goodput_mbps(4.0) == pytest.approx(10.0, rel=0.35)

    def test_source_cannot_start_twice(self):
        model = make_model()
        src = CBRSource(model, FlowSpec("f", "h0.A", "h0.C", 1.0), stop_time=0.1)
        src.start()
        with pytest.raises(SimulationError):
            src.start()

    def test_zero_rate_rejected(self):
        model = make_model()
        with pytest.raises(SimulationError):
            CBRSource(model, FlowSpec("f", "h0.A", "h0.C", 0.0))
