"""Tests for periodic measurement probes."""

import pytest

from repro.errors import SimulationError
from repro.net.diffserv import NetworkModel
from repro.net.flows import FlowSpec
from repro.net.probes import BacklogProbe, DropProbe, GoodputProbe
from repro.net.simulator import Simulator
from repro.net.topology import linear_domain_chain
from repro.net.trafficgen import CBRSource


@pytest.fixture()
def model():
    topo = linear_domain_chain(["A", "B"], hosts_per_domain=2,
                               inter_capacity_mbps=20.0)
    return NetworkModel(topo, Simulator())


class TestGoodputProbe:
    def test_tracks_cbr_rate(self, model):
        CBRSource(model, FlowSpec("f", "h0.A", "h0.B", 10.0),
                  stop_time=1.0).start()
        probe = GoodputProbe(model, "f", interval_s=0.1, stop_time=1.0)
        trace = probe.start()
        model.sim.run()
        assert len(trace) >= 9
        # Steady-state samples sit near 10 Mb/s.
        steady = trace.values[2:-1]
        assert sum(steady) / len(steady) == pytest.approx(10.0, rel=0.1)

    def test_zero_before_traffic(self, model):
        probe = GoodputProbe(model, "quiet", interval_s=0.1, stop_time=0.5)
        trace = probe.start()
        model.sim.run()
        assert all(v == 0.0 for v in trace.values)

    def test_cannot_start_twice(self, model):
        probe = GoodputProbe(model, "f", interval_s=0.1, stop_time=0.2)
        probe.start()
        with pytest.raises(SimulationError):
            probe.start()

    def test_invalid_interval(self, model):
        with pytest.raises(SimulationError):
            GoodputProbe(model, "f", interval_s=0.0)


class TestBacklogProbe:
    def test_backlog_grows_under_overload(self, model):
        # 40 Mb/s offered over a 20 Mb/s link: queue builds then drops.
        CBRSource(model, FlowSpec("f1", "h0.A", "h0.B", 20.0),
                  stop_time=0.5).start()
        CBRSource(model, FlowSpec("f2", "h1.A", "h1.B", 20.0),
                  stop_time=0.5).start()
        probe = BacklogProbe(model, "edge.A.right", "edge.B.left",
                             interval_s=0.05, stop_time=0.5)
        trace = probe.start()
        model.sim.run()
        assert max(trace.values) > 0.0

    def test_unknown_port_rejected(self, model):
        with pytest.raises(SimulationError):
            BacklogProbe(model, "nope", "h0.B")


class TestDropProbe:
    def test_counts_drops_per_interval(self, model):
        CBRSource(model, FlowSpec("f1", "h0.A", "h0.B", 30.0),
                  stop_time=0.5).start()
        CBRSource(model, FlowSpec("f2", "h1.A", "h1.B", 30.0),
                  stop_time=0.5).start()
        probe = DropProbe(model, reason="queue-overflow",
                          interval_s=0.1, stop_time=0.6)
        trace = probe.start()
        model.sim.run()
        assert trace.total() == model.total_drops("queue-overflow")
        assert trace.total() > 0
