"""Tests for multi-domain topology construction and path queries."""

import pytest

from repro.errors import NoRouteError, RoutingError
from repro.net.topology import NodeKind, Topology, linear_domain_chain


class TestConstruction:
    def test_add_nodes_and_links(self):
        t = Topology()
        t.add_host("h1", "A")
        t.add_core_router("r1", "A")
        t.add_link("h1", "r1", capacity_mbps=100.0)
        assert t.node("h1").kind is NodeKind.HOST
        assert t.node("r1").is_router
        assert t.link_attrs("h1", "r1")["capacity_mbps"] == 100.0

    def test_duplicate_node_rejected(self):
        t = Topology()
        t.add_host("h1", "A")
        with pytest.raises(RoutingError):
            t.add_host("h1", "B")

    def test_link_to_unknown_node_rejected(self):
        t = Topology()
        t.add_host("h1", "A")
        with pytest.raises(RoutingError):
            t.add_link("h1", "ghost", capacity_mbps=10.0)

    def test_bad_link_attrs_rejected(self):
        t = Topology()
        t.add_host("h1", "A")
        t.add_host("h2", "A")
        with pytest.raises(RoutingError):
            t.add_link("h1", "h2", capacity_mbps=0.0)
        with pytest.raises(RoutingError):
            t.add_link("h1", "h2", capacity_mbps=1.0, delay_s=-1.0)

    def test_unknown_node_lookup(self):
        with pytest.raises(RoutingError):
            Topology().node("nope")

    def test_contains(self):
        t = Topology()
        t.add_host("h1", "A")
        assert "h1" in t
        assert "h2" not in t


class TestLinearChain:
    def test_three_domain_chain(self):
        t = linear_domain_chain(["A", "B", "C"], hosts_per_domain=2)
        assert set(t.domains()) == {"A", "B", "C"}
        assert len(t.hosts_in_domain("A")) == 2
        assert t.node("core.B").kind is NodeKind.CORE_ROUTER
        assert t.node("edge.A.right").kind is NodeKind.EDGE_ROUTER

    def test_interdomain_links(self):
        t = linear_domain_chain(["A", "B", "C"])
        inter = t.interdomain_links()
        assert len(inter) == 2
        domains = {
            frozenset({t.node(a).domain, t.node(b).domain}) for a, b in inter
        }
        assert domains == {frozenset({"A", "B"}), frozenset({"B", "C"})}

    def test_border_routers(self):
        t = linear_domain_chain(["A", "B", "C"])
        assert t.border_routers("B", "A") == ("edge.B.left",)
        assert t.border_routers("B", "C") == ("edge.B.right",)
        assert t.border_routers("A", "C") == ()

    def test_single_domain(self):
        t = linear_domain_chain(["A"])
        assert t.domains() == ("A",)
        assert t.interdomain_links() == []

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            linear_domain_chain([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(RoutingError):
            linear_domain_chain(["A", "A"])


class TestPaths:
    def test_host_to_host_path_crosses_domains(self):
        t = linear_domain_chain(["A", "B", "C"])
        path = t.shortest_path("h0.A", "h0.C")
        assert path[0] == "h0.A"
        assert path[-1] == "h0.C"
        domains = [t.node(n).domain for n in path]
        # Domain sequence must be A+ B+ C+.
        assert domains == sorted(domains, key="ABC".index)
        assert {"A", "B", "C"} <= set(domains)

    def test_domain_path(self):
        t = linear_domain_chain(["A", "B", "C", "D"])
        assert t.domain_path("A", "D") == ["A", "B", "C", "D"]
        assert t.domain_path("B", "B") == ["B"]

    def test_no_route(self):
        t = Topology()
        t.add_host("h1", "A")
        t.add_host("h2", "B")
        with pytest.raises(NoRouteError):
            t.shortest_path("h1", "h2")

    def test_domain_path_unknown_domain(self):
        t = linear_domain_chain(["A", "B"])
        with pytest.raises(RoutingError):
            t.domain_path("A", "Z")

    def test_domain_graph(self):
        t = linear_domain_chain(["A", "B", "C"])
        g = t.domain_graph()
        assert set(g.nodes) == {"A", "B", "C"}
        assert g.has_edge("A", "B") and g.has_edge("B", "C")
        assert not g.has_edge("A", "C")
