"""Tests for star and mesh domain topologies + signalling across them."""

import pytest

from repro.core.testbed import build_mesh_testbed, build_star_testbed
from repro.errors import RoutingError
from repro.net.topology import mesh_domains, star_domains


class TestStarTopology:
    def test_structure(self):
        topo = star_domains("ISP", ["A", "B", "C"], hosts_per_domain=2)
        assert set(topo.domains()) == {"ISP", "A", "B", "C"}
        g = topo.domain_graph()
        assert g.degree["ISP"] == 3
        for leaf in "ABC":
            assert g.degree[leaf] == 1
        assert len(topo.hosts_in_domain("A")) == 2

    def test_leaf_to_leaf_path_via_hub(self):
        topo = star_domains("ISP", ["A", "B"])
        assert topo.domain_path("A", "B") == ["A", "ISP", "B"]

    def test_border_routers_named_per_peer(self):
        topo = star_domains("ISP", ["A", "B"])
        assert topo.border_routers("ISP", "A") == ("edge.ISP.to-A",)
        assert topo.border_routers("A", "ISP") == ("edge.A.to-ISP",)

    def test_validation(self):
        with pytest.raises(RoutingError):
            star_domains("ISP", [])
        with pytest.raises(RoutingError):
            star_domains("ISP", ["ISP"])


class TestMeshTopology:
    def test_structure(self):
        topo = mesh_domains(["A", "B", "C", "D"])
        g = topo.domain_graph()
        for d in "ABCD":
            assert g.degree[d] == 3

    def test_all_paths_direct(self):
        topo = mesh_domains(["A", "B", "C"])
        assert topo.domain_path("A", "C") == ["A", "C"]
        assert topo.domain_path("B", "C") == ["B", "C"]

    def test_validation(self):
        with pytest.raises(RoutingError):
            mesh_domains(["A"])
        with pytest.raises(RoutingError):
            mesh_domains(["A", "A"])


class TestStarTestbed:
    def test_leaf_to_leaf_reservation(self):
        tb = build_star_testbed("ISP", ["A", "B", "C"])
        alice = tb.add_user("A", "Alice")
        outcome = tb.reserve(
            alice, source="A", destination="B", bandwidth_mbps=10.0
        )
        assert outcome.granted
        assert outcome.path == ("A", "ISP", "B")
        assert set(outcome.handles) == {"A", "ISP", "B"}

    def test_hub_capacity_shared_across_leaf_pairs(self):
        tb = build_star_testbed("ISP", ["A", "B", "C"],
                                inter_capacity_mbps=100.0)
        alice = tb.add_user("A", "Alice")
        carol = tb.add_user("C", "Carol")
        # Both reservations transit the hub but use different hub links:
        # A->ISP->B and C->ISP->B share only ISP's intra capacity.
        o1 = tb.reserve(alice, source="A", destination="B",
                        bandwidth_mbps=90.0)
        o2 = tb.reserve(carol, source="C", destination="B",
                        bandwidth_mbps=90.0)
        assert o1.granted
        # The second exceeds ISP->B egress (100 Mb/s shared).
        assert not o2.granted
        assert o2.denial_domain == "ISP"

    def test_tunnel_across_star(self):
        tb = build_star_testbed("ISP", ["A", "B"])
        alice = tb.add_user("A", "Alice")
        request = tb.make_request(
            source="A", destination="B", bandwidth_mbps=50.0
        )
        tunnel, outcome = tb.tunnels.establish(alice, request)
        assert outcome.granted
        assert tunnel.direct_channel is not None
        _, _, msgs = tb.tunnels.allocate_flow(tunnel.tunnel_id, alice, 1.0)
        assert msgs == 4


class TestMeshTestbed:
    def test_every_pair_two_domains(self):
        tb = build_mesh_testbed(["A", "B", "C"])
        alice = tb.add_user("A", "Alice")
        for dst in ("B", "C"):
            outcome = tb.reserve(
                alice, source="A", destination=dst, bandwidth_mbps=5.0
            )
            assert outcome.granted
            assert len(outcome.path) == 2

    def test_mesh_channels_pairwise(self):
        tb = build_mesh_testbed(["A", "B", "C"])
        for a in "ABC":
            for b in "ABC":
                if a < b:
                    assert tb.channels.has(
                        tb.brokers[a].dn, tb.brokers[b].dn
                    )
