"""Tests for the discrete-event simulation engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.net.simulator import Simulator, Trace


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_preserve_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_at_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        result = []

        def outer():
            sim.schedule(1.0, lambda: result.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert result == [2.0]

    def test_cancel(self):
        sim = Simulator()
        hits = []
        event = sim.schedule(1.0, lambda: hits.append(1))
        event.cancel()
        sim.run()
        assert hits == []
        assert sim.pending == 0

    def test_run_until(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(5))
        sim.run(until=3.0)
        assert hits == [1]
        assert sim.now == 3.0
        sim.run()
        assert hits == [1, 5]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: hits.append(i))
        sim.run(max_events=4)
        assert hits == [0, 1, 2, 3]

    def test_step(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        assert sim.step() is True
        assert sim.step() is False
        assert hits == [1]

    def test_not_reentrant(self):
        sim = Simulator()
        caught = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                caught.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(caught) == 1

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=40))
def test_monotonic_time_property(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


class TestTrace:
    def test_record_and_total(self):
        tr = Trace("bits")
        tr.record(0.0, 10.0)
        tr.record(1.0, 20.0)
        assert tr.total() == 30.0
        assert len(tr) == 2
        assert tr.samples() == [(0.0, 10.0), (1.0, 20.0)]

    def test_time_monotonicity_enforced(self):
        tr = Trace()
        tr.record(5.0, 1.0)
        with pytest.raises(SimulationError):
            tr.record(4.0, 1.0)

    def test_rate_over(self):
        tr = Trace()
        for t in range(10):
            tr.record(float(t), 100.0)
        assert tr.rate_over(0.0, 10.0) == pytest.approx(100.0)
        assert tr.rate_over(0.0, 5.0) == pytest.approx(100.0)

    def test_rate_window_validation(self):
        with pytest.raises(SimulationError):
            Trace().rate_over(1.0, 1.0)
