"""Tests for the AIMD adaptive source."""

import pytest

from repro.errors import SimulationError
from repro.net.diffserv import NetworkModel, TrafficProfile
from repro.net.flows import FlowSpec
from repro.net.packet import DSCP
from repro.net.simulator import Simulator
from repro.net.topology import linear_domain_chain
from repro.net.trafficgen import AIMDSource, CBRSource


def make_model(inter=20.0):
    topo = linear_domain_chain(["A", "B"], hosts_per_domain=2,
                               inter_capacity_mbps=inter)
    return NetworkModel(topo, Simulator())


class TestAIMD:
    def test_unconstrained_ramps_to_ceiling(self):
        model = make_model(inter=1000.0)
        src = AIMDSource(
            model, FlowSpec("a", "h0.A", "h0.B", rate_mbps=10.0),
            start_rate_mbps=1.0, stop_time=2.0,
        )
        src.start()
        model.sim.run()
        # No drops anywhere: additive increase reaches the 10 Mb/s cap.
        assert src.rate_mbps == pytest.approx(10.0)
        stats = model.stats_for("a")
        assert stats.dropped_packets == 0

    def test_backs_off_under_congestion(self):
        model = make_model(inter=20.0)
        src = AIMDSource(
            model, FlowSpec("a", "h0.A", "h0.B", rate_mbps=100.0),
            start_rate_mbps=80.0, stop_time=2.0,
        )
        src.start()
        model.sim.run()
        # The 20 Mb/s bottleneck forces multiplicative decreases: the
        # final rate ends far below the ceiling, and the rate history
        # shows at least one halving.
        assert src.rate_mbps < 50.0
        halvings = sum(
            1 for (t1, r1), (t2, r2) in zip(src.rate_history,
                                            src.rate_history[1:])
            if r2 < r1 * 0.75
        )
        assert halvings >= 1

    def test_adaptive_yields_to_reserved_ef(self):
        """The [20] scenario: an EF reservation keeps its bandwidth; the
        adaptive best-effort flow converges to roughly the leftover."""
        model = make_model(inter=20.0)
        model.install_flow_policer(
            "core.A", "ef", TrafficProfile(12.0), mark=DSCP.EF
        )
        model.set_aggregate_rate("edge.B.left", DSCP.EF, 12.0)
        CBRSource(
            model, FlowSpec("ef", "h0.A", "h0.B", 11.0, dscp=DSCP.EF),
            stop_time=4.0,
        ).start()
        aimd = AIMDSource(
            model, FlowSpec("tcp", "h1.A", "h1.B", rate_mbps=40.0),
            start_rate_mbps=20.0, stop_time=4.0,
        )
        aimd.start()
        model.sim.run()
        ef = model.stats_for("ef")
        tcp = model.stats_for("tcp")
        assert ef.delivery_ratio > 0.99  # priority untouched by the probe
        # The adaptive flow's goodput sits near the ~9 Mb/s leftover, far
        # below its 40 Mb/s ceiling.
        goodput = tcp.goodput_mbps(4.0)
        assert 3.0 < goodput < 14.0

    def test_invalid_decrease_factor(self):
        model = make_model()
        with pytest.raises(SimulationError):
            AIMDSource(
                model, FlowSpec("a", "h0.A", "h0.B", 10.0),
                decrease_factor=1.5,
            )

    def test_floor_respected(self):
        model = make_model(inter=1.0)
        src = AIMDSource(
            model, FlowSpec("a", "h0.A", "h0.B", rate_mbps=50.0),
            start_rate_mbps=50.0, floor_mbps=2.0, stop_time=2.0,
        )
        src.start()
        model.sim.run()
        assert min(r for _, r in src.rate_history) >= 2.0
