"""Tests for token buckets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.net.tokenbucket import TokenBucket


class TestBasics:
    def test_starts_full(self):
        tb = TokenBucket(rate_bps=1e6, burst_bits=10_000)
        assert tb.tokens == 10_000

    def test_consume_within_burst(self):
        tb = TokenBucket(1e6, 10_000)
        assert tb.consume(8_000, now=0.0)
        assert tb.tokens == pytest.approx(2_000)

    def test_consume_beyond_burst_fails(self):
        tb = TokenBucket(1e6, 10_000)
        assert not tb.consume(20_000, now=0.0)
        assert tb.tokens == 10_000  # untouched

    def test_refill_at_rate(self):
        tb = TokenBucket(1e6, 10_000)
        assert tb.consume(10_000, now=0.0)
        assert not tb.consume(6_000, now=0.005)  # only 5000 refilled
        assert tb.consume(6_000, now=0.006)

    def test_refill_capped_at_burst(self):
        tb = TokenBucket(1e6, 10_000)
        tb.consume(10_000, now=0.0)
        tb._refill(now=100.0)
        assert tb.tokens == 10_000

    def test_conforms_is_pure(self):
        tb = TokenBucket(1e6, 10_000)
        before = tb.tokens
        assert tb.conforms(5_000, now=0.0)
        assert tb.tokens == before

    def test_time_backwards_rejected(self):
        tb = TokenBucket(1e6, 10_000)
        tb.consume(1_000, now=5.0)
        with pytest.raises(SimulationError):
            tb.consume(1_000, now=4.0)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            TokenBucket(-1.0, 100)
        with pytest.raises(SimulationError):
            TokenBucket(1e6, 0)

    def test_zero_rate_never_refills(self):
        tb = TokenBucket(0.0, 10_000)
        assert tb.consume(10_000, now=0.0)
        assert not tb.consume(1, now=1e9)


class TestDelayUntilConformant:
    def test_zero_when_available(self):
        tb = TokenBucket(1e6, 10_000)
        assert tb.delay_until_conformant(5_000, now=0.0) == 0.0

    def test_positive_when_draining(self):
        tb = TokenBucket(1e6, 10_000)
        tb.consume(10_000, now=0.0)
        assert tb.delay_until_conformant(5_000, now=0.0) == pytest.approx(0.005)

    def test_infinite_for_oversized(self):
        tb = TokenBucket(1e6, 10_000)
        assert tb.delay_until_conformant(20_000, now=0.0) == float("inf")

    def test_infinite_for_zero_rate(self):
        tb = TokenBucket(0.0, 10_000)
        tb.consume(10_000, now=0.0)
        assert tb.delay_until_conformant(1, now=0.0) == float("inf")


class TestReconfigure:
    def test_rate_change(self):
        tb = TokenBucket(1e6, 10_000)
        tb.consume(10_000, now=0.0)
        tb.reconfigure(rate_bps=2e6, now=0.0)
        assert tb.consume(2_000, now=0.001)  # 2 Mb/s * 1 ms = 2000 bits

    def test_burst_shrink_clamps_tokens(self):
        tb = TokenBucket(1e6, 10_000)
        tb.reconfigure(burst_bits=4_000)
        assert tb.tokens == 4_000

    def test_invalid_reconfigure(self):
        tb = TokenBucket(1e6, 10_000)
        with pytest.raises(SimulationError):
            tb.reconfigure(rate_bps=-5)
        with pytest.raises(SimulationError):
            tb.reconfigure(burst_bits=0)


@given(
    rate=st.floats(min_value=1e3, max_value=1e9),
    burst=st.floats(min_value=1e3, max_value=1e6),
    sizes=st.lists(st.floats(min_value=1.0, max_value=2e4), max_size=50),
)
def test_long_run_rate_never_exceeded(rate, burst, sizes):
    """Property: accepted traffic over [0, T] never exceeds burst + rate*T."""
    tb = TokenBucket(rate, burst)
    now = 0.0
    accepted = 0.0
    for i, size in enumerate(sizes):
        now += 0.001
        if tb.consume(size, now):
            accepted += size
    assert accepted <= burst + rate * now + 1e-6
