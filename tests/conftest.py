"""Shared fixtures for the test suite.

RSA key generation is the only genuinely expensive operation in the
library, so session-scoped fixtures pre-generate a small pool of key pairs
and most tests default to 512-bit keys (plenty for tamper-evidence tests,
fast to mint).  All randomness is seeded for reproducibility.
"""

import logging
import random
import zlib

import pytest

from repro.crypto.keys import RSAScheme, SimulatedScheme


@pytest.fixture(autouse=True)
def _isolate_repro_logging():
    """Undo any ``repro.obs.configure_logging`` a test (usually via the
    CLI entry point) performed: a leaked INFO level puts log formatting
    on the signalling hot path of every later test, which the shuffled
    runs surface as timing-sensitive failures."""
    logger = logging.getLogger("repro")
    saved = (logger.level, list(logger.handlers), logger.propagate)
    yield
    logger.setLevel(saved[0])
    logger.handlers[:] = saved[1]
    logger.propagate = saved[2]


def pytest_addoption(parser):
    parser.addoption(
        "--shuffle-seed",
        type=int,
        default=None,
        help="shuffle test collection order with this seed (flushes "
             "hidden inter-test order dependence; same seed = same order)",
    )
    parser.addoption(
        "--lock-witness",
        action="store_true",
        default=False,
        help="wrap every lock created during the session in the runtime "
             "lock witness and fail at the end if the observed "
             "acquisition orders contradict the static lock-order graph "
             "(repro lint --concurrency)",
    )
    parser.addoption(
        "--slow-path",
        action="store_true",
        default=False,
        help="run the whole suite on the legacy verification miss path "
             "(nested envelope chains, eager two-pass codec, sequential "
             "verification) — CI runs tier-1 both ways so the fast path "
             "is proven behaviour-identical (docs/PERFORMANCE.md)",
    )


@pytest.fixture(scope="session", autouse=True)
def _session_fastpath(request):
    """Arm the fast or the legacy miss path for the whole session.

    Default is the fast configuration (same as production defaults);
    ``pytest --slow-path`` flips every feature off, so a green run under
    both flags is a suite-wide differential proof.
    """
    from repro.core import fastpath

    if request.config.getoption("--slow-path"):
        fastpath.configure(fastpath.FastPathConfig().slow())
    try:
        yield fastpath.get_config()
    finally:
        fastpath.reset()


@pytest.fixture(scope="session", autouse=True)
def _session_lock_witness(request):
    """Opt-in ThreadSanitizer-lite: ``pytest --lock-witness``.

    Locks created at import time (module globals) predate the patch and
    are not observed; every broker/registry/cache the tests construct is.
    """
    if not request.config.getoption("--lock-witness"):
        yield None
        return
    from repro.analysis.concurrency.witness import LockWitness

    witness = LockWitness().install()
    try:
        yield witness
    finally:
        witness.uninstall()
    from repro.analysis.concurrency import analyze_paths

    static = analyze_paths(rules=())
    problems = witness.check_against(static.graph)
    print(f"\n{witness.summary()}")
    if problems:
        pytest.fail(
            "lock witness saw acquisition orders the static graph "
            "does not model:\n  " + "\n  ".join(problems)
        )


def pytest_collection_modifyitems(config, items):
    seed = config.getoption("--shuffle-seed")
    if seed is None:
        return
    # Keyed by nodeid through crc32 so the order is stable across runs
    # and machines for a given seed (hash() is salted per process).
    rng = random.Random(seed)
    salt = rng.getrandbits(32)
    items.sort(
        key=lambda item: zlib.crc32(f"{salt}:{item.nodeid}".encode())
    )


@pytest.fixture(scope="session")
def rsa512():
    return RSAScheme(bits=512)


@pytest.fixture(scope="session")
def simulated():
    return SimulatedScheme()


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture(scope="session")
def keypool(rsa512):
    """Twelve pre-generated 512-bit RSA key pairs for reuse across tests."""
    gen = random.Random(99)
    return [rsa512.generate(gen) for _ in range(12)]
