"""Shared fixtures for the test suite.

RSA key generation is the only genuinely expensive operation in the
library, so session-scoped fixtures pre-generate a small pool of key pairs
and most tests default to 512-bit keys (plenty for tamper-evidence tests,
fast to mint).  All randomness is seeded for reproducibility.
"""

import random

import pytest

from repro.crypto.keys import RSAScheme, SimulatedScheme


@pytest.fixture(scope="session")
def rsa512():
    return RSAScheme(bits=512)


@pytest.fixture(scope="session")
def simulated():
    return SimulatedScheme()


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture(scope="session")
def keypool(rsa512):
    """Twelve pre-generated 512-bit RSA key pairs for reuse across tests."""
    gen = random.Random(99)
    return [rsa512.generate(gen) for _ in range(12)]
