"""Shared fixtures for the test suite.

RSA key generation is the only genuinely expensive operation in the
library, so session-scoped fixtures pre-generate a small pool of key pairs
and most tests default to 512-bit keys (plenty for tamper-evidence tests,
fast to mint).  All randomness is seeded for reproducibility.
"""

import logging
import random
import zlib

import pytest

from repro.crypto.keys import RSAScheme, SimulatedScheme


@pytest.fixture(autouse=True)
def _isolate_repro_logging():
    """Undo any ``repro.obs.configure_logging`` a test (usually via the
    CLI entry point) performed: a leaked INFO level puts log formatting
    on the signalling hot path of every later test, which the shuffled
    runs surface as timing-sensitive failures."""
    logger = logging.getLogger("repro")
    saved = (logger.level, list(logger.handlers), logger.propagate)
    yield
    logger.setLevel(saved[0])
    logger.handlers[:] = saved[1]
    logger.propagate = saved[2]


def pytest_addoption(parser):
    parser.addoption(
        "--shuffle-seed",
        type=int,
        default=None,
        help="shuffle test collection order with this seed (flushes "
             "hidden inter-test order dependence; same seed = same order)",
    )


def pytest_collection_modifyitems(config, items):
    seed = config.getoption("--shuffle-seed")
    if seed is None:
        return
    # Keyed by nodeid through crc32 so the order is stable across runs
    # and machines for a given seed (hash() is salted per process).
    rng = random.Random(seed)
    salt = rng.getrandbits(32)
    items.sort(
        key=lambda item: zlib.crc32(f"{salt}:{item.nodeid}".encode())
    )


@pytest.fixture(scope="session")
def rsa512():
    return RSAScheme(bits=512)


@pytest.fixture(scope="session")
def simulated():
    return SimulatedScheme()


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture(scope="session")
def keypool(rsa512):
    """Twelve pre-generated 512-bit RSA key pairs for reuse across tests."""
    gen = random.Random(99)
    return [rsa512.generate(gen) for _ in range(12)]
