"""Tests for CPU/disk slot managers."""

import pytest

from repro.crypto.dn import DN
from repro.errors import (
    CapacityExceededError,
    GaraError,
    ReservationStateError,
    UnknownReservationError,
)
from repro.gara.resources import CPUManager, DiskManager

ALICE = DN.make("Grid", "C", "Alice")


@pytest.fixture()
def cpus():
    return CPUManager("cluster-C", 64.0, domain="C")


class TestSlotManager:
    def test_reserve_and_query(self, cpus):
        resv = cpus.reserve(16.0, 0.0, 3600.0, owner=ALICE)
        assert resv.state == "granted"
        assert resv.handle.startswith("CPU-cluster-C-")
        assert cpus.available(0.0, 3600.0) == 48.0
        assert cpus.get(resv.handle) is resv

    def test_capacity_enforced(self, cpus):
        cpus.reserve(60.0, 0.0, 100.0)
        with pytest.raises(CapacityExceededError):
            cpus.reserve(10.0, 50.0, 80.0)
        cpus.reserve(10.0, 100.0, 200.0)  # disjoint window fits

    def test_claim_lifecycle(self, cpus):
        resv = cpus.reserve(8.0, 0.0, 100.0)
        cpus.claim(resv.handle)
        assert resv.state == "active"
        with pytest.raises(ReservationStateError):
            cpus.claim(resv.handle)

    def test_cancel_releases(self, cpus):
        resv = cpus.reserve(64.0, 0.0, 100.0)
        cpus.cancel(resv.handle)
        assert cpus.available(0.0, 100.0) == 64.0
        with pytest.raises(ReservationStateError):
            cpus.cancel(resv.handle)

    def test_modify_grow(self, cpus):
        resv = cpus.reserve(16.0, 0.0, 100.0)
        cpus.modify(resv.handle, amount=32.0)
        assert resv.amount == 32.0
        assert cpus.available(0.0, 100.0) == 32.0

    def test_modify_failure_restores(self, cpus):
        resv = cpus.reserve(16.0, 0.0, 100.0)
        cpus.reserve(40.0, 0.0, 100.0)
        with pytest.raises(CapacityExceededError):
            cpus.modify(resv.handle, amount=32.0)
        assert resv.amount == 16.0
        assert cpus.available(0.0, 100.0) == pytest.approx(8.0)

    def test_validation(self, cpus):
        with pytest.raises(GaraError):
            cpus.reserve(0.0, 0.0, 100.0)
        with pytest.raises(GaraError):
            cpus.reserve(1.0, 100.0, 100.0)
        with pytest.raises(UnknownReservationError):
            cpus.get("ghost")

    def test_is_valid(self, cpus):
        resv = cpus.reserve(8.0, 100.0, 200.0)
        assert cpus.is_valid(resv.handle)
        assert not cpus.is_valid(resv.handle, at_time=50.0)
        assert cpus.is_valid(resv.handle, at_time=150.0)
        cpus.cancel(resv.handle)
        assert not cpus.is_valid(resv.handle)
        assert not cpus.is_valid("ghost")

    def test_disk_manager_kind(self):
        disks = DiskManager("raid-C", 400.0, domain="C")
        resv = disks.reserve(100.0, 0.0, 10.0)
        assert resv.handle.startswith("DISK-raid-C-")
