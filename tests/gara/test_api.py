"""Tests for the uniform GARA API and co-reservation (Figures 5/6)."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import CoReservationError, GaraError, UnknownReservationError
from repro.gara.api import GaraAPI, ResourceSpec
from repro.gara.coreservation import CoReservationAgent
from repro.gara.resources import CPUManager, DiskManager


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def api(testbed):
    api = GaraAPI(testbed.hop_by_hop)
    api.register_cpu_manager(CPUManager("cluster-C", 64.0, domain="C"))
    api.register_disk_manager(DiskManager("raid-C", 400.0, domain="C"))
    return api


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


def network_spec(**kwargs):
    defaults = dict(
        source_host="h0.A",
        destination_host="h0.C",
        source_domain="A",
        destination_domain="C",
        rate_mbps=10.0,
        start=0.0,
        end=3600.0,
    )
    defaults.update(kwargs)
    return ResourceSpec.make("network", **defaults)


class TestResourceSpec:
    def test_make_and_params(self):
        spec = ResourceSpec.make("cpu", domain="C", cpus=8.0, start=0.0, end=10.0)
        assert spec.param("cpus") == 8.0
        assert spec.param("missing", 1) == 1
        assert spec.as_dict()["domain"] == "C"

    def test_unknown_type_rejected(self):
        with pytest.raises(GaraError):
            ResourceSpec.make("gpu", domain="C")


class TestUniformAPI:
    def test_network_reservation(self, api, alice):
        resv = api.reserve(alice, network_spec())
        assert resv.resource_type == "network"
        assert set(resv.backend_handles) == {"A", "B", "C"}
        assert api.status(resv.handle) == "granted"

    def test_cpu_reservation(self, api, alice):
        spec = ResourceSpec.make("cpu", domain="C", cpus=16.0, start=0.0, end=3600.0)
        resv = api.reserve(alice, spec)
        assert resv.resource_type == "cpu"
        assert api.cpu_manager("C").available(0.0, 3600.0) == 48.0

    def test_disk_reservation(self, api, alice):
        spec = ResourceSpec.make(
            "disk", domain="C", bandwidth_mbs=100.0, start=0.0, end=3600.0
        )
        resv = api.reserve(alice, spec)
        assert resv.resource_type == "disk"

    def test_network_denial_raises_with_reason(self, api, alice, testbed):
        testbed.set_policy("B", "Return DENY")
        with pytest.raises(GaraError, match="denied by B"):
            api.reserve(alice, network_spec())

    def test_claim_and_cancel_uniform(self, api, alice):
        net = api.reserve(alice, network_spec())
        cpu = api.reserve(
            alice, ResourceSpec.make("cpu", domain="C", cpus=8.0, start=0.0, end=10.0)
        )
        for handle in (net.handle, cpu.handle):
            api.claim(handle)
            assert api.status(handle) == "active"
            api.cancel(handle)
            assert api.status(handle) == "cancelled"
        with pytest.raises(GaraError):
            api.cancel(net.handle)

    def test_modify_cpu(self, api, alice):
        cpu = api.reserve(
            alice, ResourceSpec.make("cpu", domain="C", cpus=8.0, start=0.0, end=10.0)
        )
        api.modify(cpu.handle, cpus=16.0)
        assert api.cpu_manager("C").available(0.0, 10.0) == 48.0

    def test_modify_network_rejected(self, api, alice):
        net = api.reserve(alice, network_spec())
        with pytest.raises(GaraError, match="cancel"):
            api.modify(net.handle, rate_mbps=20.0)

    def test_unknown_handle(self, api):
        with pytest.raises(UnknownReservationError):
            api.get("GARA-99999")

    def test_duplicate_manager_rejected(self, api):
        with pytest.raises(GaraError):
            api.register_cpu_manager(CPUManager("other", 4.0, domain="C"))

    def test_network_handle_lookup(self, api, alice):
        net = api.reserve(alice, network_spec())
        assert api.network_handle(net.handle, "B").startswith("RES-B-")
        with pytest.raises(GaraError):
            api.network_handle(net.handle, "Z")


class TestCoReservation:
    """The Figure 5 scenario: network A->C coupled with CPUs in C."""

    CPU_POLICY_C = (
        "If HasValidCPUResv(RAR)\n    Return GRANT\nReturn DENY"
    )

    def test_coupled_reservation_with_policy(self, api, alice, testbed):
        # C only grants network bandwidth to requests with a valid CPU resv.
        testbed.set_policy("C", self.CPU_POLICY_C)
        agent = CoReservationAgent(api)
        bundle = agent.reserve_all(
            alice,
            [
                ResourceSpec.make(
                    "cpu", domain="C", cpus=16.0, start=0.0, end=3600.0
                ),
                network_spec(),
            ],
        )
        assert len(bundle.reservations) == 2
        net = bundle.by_type("network")[0]
        assert net.outcome is not None and net.outcome.granted

    def test_network_alone_denied_by_cpu_policy(self, api, alice, testbed):
        testbed.set_policy("C", self.CPU_POLICY_C)
        with pytest.raises(GaraError, match="denied by C"):
            api.reserve(alice, network_spec())

    def test_rollback_on_failure(self, api, alice, testbed):
        testbed.set_policy("B", "Return DENY")
        agent = CoReservationAgent(api)
        with pytest.raises(CoReservationError):
            agent.reserve_all(
                alice,
                [
                    ResourceSpec.make(
                        "cpu", domain="C", cpus=16.0, start=0.0, end=3600.0
                    ),
                    network_spec(),
                ],
            )
        # The CPU reservation must have been rolled back.
        assert api.cpu_manager("C").available(0.0, 3600.0) == 64.0

    def test_claim_all(self, api, alice):
        agent = CoReservationAgent(api)
        bundle = agent.reserve_all(
            alice,
            [
                ResourceSpec.make("cpu", domain="C", cpus=8.0, start=0.0, end=10.0),
                network_spec(),
            ],
        )
        agent.claim_all(bundle)
        for resv in bundle.reservations:
            assert api.status(resv.handle) == "active"
        agent.release_all(bundle)
        for resv in bundle.reservations:
            assert api.status(resv.handle) == "cancelled"

    def test_empty_specs_rejected(self, api, alice):
        with pytest.raises(CoReservationError):
            CoReservationAgent(api).reserve_all(alice, [])
