"""Single-fault exhaustiveness (satellite of the robustness tentpole).

One test per cell of the full single-fault matrix over a four-domain
path: every channel (user link and each inter-BB link), every broker,
every policy server, and the certificate repository, each broken in
every valid way at every early operation offset — plus the persistent
variant of every one-shot fault, which forces retry exhaustion and the
denial/unwind paths.  Whatever the protocol decides (grant after
retries, or a clean denial), the safety invariants must hold afterwards:
no capacity leak, no reservation stuck in a live state.
"""

import pytest

from repro.faults.chaos import _run_trial
from repro.faults.plan import FaultSpec, single_fault_matrix

DOMAINS = ("A", "B", "C", "D")
REPOSITORY = "ldap.grid"


def _full_matrix():
    user_link = "|".join(sorted((DOMAINS[0], "Alice")))
    inter_links = [
        "|".join(sorted((a, b))) for a, b in zip(DOMAINS, DOMAINS[1:])
    ]
    matrix = single_fault_matrix(
        channel_links=[user_link, *inter_links],
        broker_domains=DOMAINS,
        policy_domains=DOMAINS,
        repository_names=[REPOSITORY],
    )
    matrix.extend(
        FaultSpec(
            s.target_kind, s.target, s.kind,
            start_op=s.start_op, ops=None, delay_s=s.delay_s,
        )
        for s in list(matrix)
        if s.ops == 1
    )
    return matrix


MATRIX = _full_matrix()


@pytest.mark.parametrize(
    "spec", MATRIX, ids=[s.describe().replace(" ", "_") for s in MATRIX]
)
def test_single_fault_leaves_no_leak_or_stuck_state(spec):
    result = _run_trial(
        0,
        spec,
        seed=7,
        domains=DOMAINS,
        rate_mbps=10.0,
        deadline_s=30.0,
        soft_state_ttl_s=60.0,
        repository_name=REPOSITORY,
    )
    assert result.violations == ()


def test_matrix_is_exhaustive_over_hops_and_phases():
    """Guard against the matrix silently shrinking: every hop's channel,
    broker, and policy server appears, as does the repository."""
    targets = {(s.target_kind.value, s.target) for s in MATRIX}
    assert ("channel", "A|Alice") in targets
    for a, b in zip(DOMAINS, DOMAINS[1:]):
        assert ("channel", "|".join(sorted((a, b)))) in targets
    for domain in DOMAINS:
        assert ("broker", domain) in targets
        assert ("policy", domain) in targets
    assert ("repository", REPOSITORY) in targets
