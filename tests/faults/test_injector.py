"""The runtime injector: op counting, each fault kind, channel wiring.

The channel-integration tests double as the regression suite for the
accounting contract: a dropped message is *not* a delivered message, so
``SecureChannel.transmit`` must raise and leave ``messages``/``bytes``
untouched while bumping ``drops``.
"""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import (
    BrokerUnavailableError,
    MessageDroppedError,
    PolicyUnavailableError,
    RepositoryUnavailableError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, TargetKind


def injector_for(*specs):
    return FaultInjector(FaultPlan(tuple(specs), seed=1))


class _Payload:
    """Duck-typed signed payload for CORRUPT faults."""

    def __init__(self):
        self.tampered = None

    def with_tampered_field(self, field, value):
        clone = _Payload()
        clone.tampered = (field, value)
        return clone


class TestOpCounting:
    def test_counters_are_per_target(self):
        injector = injector_for()
        injector.channel_transmit("A|B", "m")
        injector.channel_transmit("A|B", "m")
        injector.channel_transmit("B|C", "m")
        injector.broker_op("A")
        assert injector.op_count(TargetKind.CHANNEL, "A|B") == 2
        assert injector.op_count(TargetKind.CHANNEL, "B|C") == 1
        assert injector.op_count(TargetKind.BROKER, "A") == 1
        assert injector.op_count(TargetKind.BROKER, "B") == 0

    def test_window_selects_exactly_one_op(self):
        spec = FaultSpec(
            TargetKind.CHANNEL, "A|B", FaultKind.DROP, start_op=1, ops=1
        )
        injector = injector_for(spec)
        injector.channel_transmit("A|B", "first")  # op 0: clean
        with pytest.raises(MessageDroppedError):
            injector.channel_transmit("A|B", "second")  # op 1: dropped
        injector.channel_transmit("A|B", "third")  # op 2: clean again
        assert injector.triggered == [(spec, 1)]

    def test_persistent_fault_fires_forever(self):
        spec = FaultSpec(
            TargetKind.BROKER, "A", FaultKind.CRASH, start_op=0, ops=None
        )
        injector = injector_for(spec)
        for _ in range(5):
            with pytest.raises(BrokerUnavailableError):
                injector.broker_op("A")
        assert len(injector.triggered) == 5


class TestFaultKinds:
    def test_delay_returns_extra_latency(self):
        injector = injector_for(
            FaultSpec(
                TargetKind.CHANNEL, "A|B", FaultKind.DELAY, delay_s=0.75
            )
        )
        message, delay = injector.channel_transmit("A|B", "m")
        assert message == "m"
        assert delay == 0.75

    def test_corrupt_tampering_is_flagged(self):
        injector = injector_for(
            FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.CORRUPT)
        )
        out, delay = injector.channel_transmit("A|B", _Payload())
        assert delay == 0.0
        assert out.tampered is not None
        assert out.tampered[0] == "capability_certs"

    def test_corrupt_tolerates_untamperable_payloads(self):
        injector = injector_for(
            FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.CORRUPT)
        )
        out, _ = injector.channel_transmit("A|B", "plain string")
        assert out == "plain string"

    def test_policy_and_repository_outages(self):
        injector = injector_for(
            FaultSpec(TargetKind.POLICY, "B", FaultKind.TIMEOUT),
            FaultSpec(TargetKind.REPOSITORY, "ldap", FaultKind.UNAVAILABLE),
        )
        with pytest.raises(PolicyUnavailableError, match="timed out"):
            injector.policy_op("B")
        with pytest.raises(RepositoryUnavailableError, match="unavailable"):
            injector.repository_op("ldap")
        injector.policy_op("B")  # window over: healthy again


class TestChannelIntegration:
    @pytest.fixture()
    def testbed(self):
        return build_linear_testbed(["A", "B"])

    @pytest.fixture()
    def channel(self, testbed):
        return testbed.channels.between(
            testbed.brokers["A"].dn, testbed.brokers["B"].dn
        )

    def test_drop_fault_raises_and_does_not_count_delivery(
        self, testbed, channel
    ):
        testbed.attach_injector(
            injector_for(
                FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.DROP)
            )
        )
        sender = testbed.brokers["A"].dn
        with pytest.raises(MessageDroppedError):
            channel.transmit(sender, "lost")
        assert channel.messages == 0
        assert channel.bytes == 0
        assert channel.drops == 1
        # The window was one op; the next message is delivered and counted.
        channel.transmit(sender, "delivered")
        assert channel.messages == 1
        assert channel.drops == 1

    def test_tamper_hook_drop_raises_too(self, testbed, channel):
        channel.tamper_hook = lambda message: None
        with pytest.raises(MessageDroppedError):
            channel.transmit(testbed.brokers["A"].dn, "swallowed")
        assert channel.messages == 0
        assert channel.drops == 1

    def test_delay_fault_recorded_on_channel(self, testbed, channel):
        testbed.attach_injector(
            injector_for(
                FaultSpec(
                    TargetKind.CHANNEL, "A|B", FaultKind.DELAY, delay_s=0.4
                )
            )
        )
        sender = testbed.brokers["A"].dn
        channel.transmit(sender, "late")
        assert channel.last_delay_s == 0.4
        channel.transmit(sender, "on time")
        assert channel.last_delay_s == 0.0

    def test_attach_detach_covers_all_channels(self, testbed):
        injector = injector_for()
        testbed.attach_injector(injector)
        assert all(c.injector is injector for c in testbed.channels.all())
        testbed.detach_injector()
        assert all(c.injector is None for c in testbed.channels.all())
