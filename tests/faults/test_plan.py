"""Fault-plan data model: validation, windows, digests, the matrix."""

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    TargetKind,
    single_fault_matrix,
)


class TestSpecValidation:
    def test_kind_must_match_target_kind(self):
        with pytest.raises(FaultPlanError, match="not valid"):
            FaultSpec(TargetKind.BROKER, "A", FaultKind.DROP)
        with pytest.raises(FaultPlanError, match="not valid"):
            FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.CRASH)
        with pytest.raises(FaultPlanError, match="not valid"):
            FaultSpec(TargetKind.POLICY, "A", FaultKind.CORRUPT)

    def test_target_must_be_non_empty(self):
        with pytest.raises(FaultPlanError, match="non-empty"):
            FaultSpec(TargetKind.BROKER, "", FaultKind.CRASH)

    def test_window_bounds_validated(self):
        with pytest.raises(FaultPlanError, match="start_op"):
            FaultSpec(TargetKind.BROKER, "A", FaultKind.CRASH, start_op=-1)
        with pytest.raises(FaultPlanError, match="ops"):
            FaultSpec(TargetKind.BROKER, "A", FaultKind.CRASH, ops=0)

    def test_delay_needs_positive_delay_s(self):
        with pytest.raises(FaultPlanError, match="delay_s"):
            FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.DELAY)
        spec = FaultSpec(
            TargetKind.CHANNEL, "A|B", FaultKind.DELAY, delay_s=0.5
        )
        assert spec.delay_s == 0.5


class TestWindow:
    def test_finite_window(self):
        spec = FaultSpec(
            TargetKind.BROKER, "A", FaultKind.CRASH, start_op=2, ops=2
        )
        hits = [op for op in range(6) if spec.window_contains(op)]
        assert hits == [2, 3]

    def test_persistent_window(self):
        spec = FaultSpec(
            TargetKind.BROKER, "A", FaultKind.CRASH, start_op=3, ops=None
        )
        assert not spec.window_contains(2)
        assert spec.window_contains(3)
        assert spec.window_contains(10_000)

    def test_describe_distinguishes_windows(self):
        finite = FaultSpec(TargetKind.BROKER, "A", FaultKind.CRASH, ops=2)
        forever = FaultSpec(TargetKind.BROKER, "A", FaultKind.CRASH, ops=None)
        assert "ops[0,2)" in finite.describe()
        assert "op>=0" in forever.describe()


class TestPlan:
    def test_for_target_filters(self):
        a = FaultSpec(TargetKind.BROKER, "A", FaultKind.CRASH)
        b = FaultSpec(TargetKind.BROKER, "B", FaultKind.CRASH)
        c = FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.DROP)
        plan = FaultPlan((a, b, c), seed=1)
        assert plan.for_target(TargetKind.BROKER, "A") == (a,)
        assert plan.for_target(TargetKind.CHANNEL, "A|B") == (c,)
        assert plan.for_target(TargetKind.POLICY, "A") == ()

    def test_digest_is_deterministic(self):
        spec = FaultSpec(TargetKind.BROKER, "A", FaultKind.CRASH)
        assert (
            FaultPlan((spec,), seed=7).digest()
            == FaultPlan((spec,), seed=7).digest()
        )

    def test_digest_sensitive_to_seed_and_specs(self):
        spec = FaultSpec(TargetKind.BROKER, "A", FaultKind.CRASH)
        other = FaultSpec(TargetKind.BROKER, "B", FaultKind.CRASH)
        base = FaultPlan((spec,), seed=7).digest()
        assert FaultPlan((spec,), seed=8).digest() != base
        assert FaultPlan((other,), seed=7).digest() != base


class TestMatrix:
    def test_covers_every_target_kind_and_fault_kind(self):
        matrix = single_fault_matrix(
            channel_links=["A|B"],
            broker_domains=["A"],
            policy_domains=["A"],
            repository_names=["ldap"],
            start_ops=(0, 1),
        )
        seen = {(s.target_kind, s.kind) for s in matrix}
        assert seen == {
            (TargetKind.CHANNEL, FaultKind.DROP),
            (TargetKind.CHANNEL, FaultKind.DELAY),
            (TargetKind.CHANNEL, FaultKind.CORRUPT),
            (TargetKind.BROKER, FaultKind.CRASH),
            (TargetKind.POLICY, FaultKind.TIMEOUT),
            (TargetKind.POLICY, FaultKind.UNAVAILABLE),
            (TargetKind.REPOSITORY, FaultKind.TIMEOUT),
            (TargetKind.REPOSITORY, FaultKind.UNAVAILABLE),
        }
        # Every start offset appears for every (target, kind) pair.
        for spec in matrix:
            assert spec.start_op in (0, 1)

    def test_matrix_sizes(self):
        matrix = single_fault_matrix(
            channel_links=["A|B", "B|C"],
            broker_domains=["A", "B"],
            start_ops=(0, 1, 2),
        )
        # channels: 2 links x 3 kinds x 3 offsets; brokers: 2 x 3 x 2 window lengths
        assert len(matrix) == 2 * 3 * 3 + 2 * 3 * 2
