"""Chaos under concurrency: faults + parallel signalling + invariants.

Extends the chaos harness to the :class:`ConcurrentSignaller`: a batch
of contended reservations runs on a thread pool while the fault
injector drops messages, crashes a broker window and makes a policy
server unavailable.  Afterwards the run must satisfy exactly the
invariants ``repro chaos`` enforces for the serial engine — every
failure path released its capacity, no reservation is stuck mid-state,
and the injector is detached.
"""

from repro.core.concurrent import ConcurrentSignaller, ReservationJob
from repro.core.testbed import build_linear_testbed
from repro.faults.chaos import _check_invariants
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, TargetKind

DOMAINS = ["A", "B", "C", "D"]


def build_world():
    tb = build_linear_testbed(DOMAINS, soft_state_ttl_s=120.0)
    users = {d: tb.add_user(d, f"user-{d}") for d in DOMAINS}
    return tb, users


def make_jobs(tb, users, m):
    jobs = []
    for i in range(m):
        src = DOMAINS[i % len(DOMAINS)]
        dst = DOMAINS[(i + 1 + i % 3) % len(DOMAINS)]
        if src == dst:
            dst = DOMAINS[(DOMAINS.index(src) + 1) % len(DOMAINS)]
        jobs.append(
            ReservationJob(
                user=users[src],
                request=tb.make_request(
                    source=src, destination=dst, bandwidth_mbps=40.0,
                    start=0.0, duration=3600.0,
                ),
                deadline_s=30.0,
            )
        )
    return jobs


def chaos_plan():
    return FaultPlan(
        specs=(
            # Lose a few messages on the busiest inter-domain link.
            FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.DROP,
                      start_op=2, ops=2),
            FaultSpec(TargetKind.CHANNEL, "B|C", FaultKind.DROP,
                      start_op=5, ops=1),
            # Crash broker C for a window of operations.
            FaultSpec(TargetKind.BROKER, "C", FaultKind.CRASH,
                      start_op=3, ops=4),
            # Policy server B refuses a query.
            FaultSpec(TargetKind.POLICY, "B", FaultKind.UNAVAILABLE,
                      start_op=4, ops=2),
        ),
        seed=7,
    )


def run_trial(concurrency):
    tb, users = build_world()
    injector = FaultInjector(chaos_plan())
    tb.attach_injector(injector)
    try:
        batch = ConcurrentSignaller(
            tb.hop_by_hop, concurrency=concurrency
        ).run(make_jobs(tb, users, 16))
    finally:
        tb.detach_injector()
    return tb, injector, batch


def test_concurrent_chaos_trial_keeps_invariants():
    tb, injector, batch = run_trial(concurrency=8)
    # The trial must actually exercise faults and produce mixed results,
    # otherwise it proves nothing.
    assert injector.triggered
    assert 0 < batch.granted_count
    assert batch.granted_count < len(batch.scheduled)

    # Unwind: cancel surviving grants, then reclaim anything a failure
    # path left behind via the soft-state sweep.
    for item in batch.scheduled:
        if item.granted and item.outcome is not None:
            tb.hop_by_hop.cancel(item.outcome)
    tb.sweep_soft_state(tb.sim.now + 10_000.0)
    assert _check_invariants(tb) == []


def test_faulted_jobs_report_errors_not_crashes():
    """A worker hitting an injected fault records the failure on its own
    job; the batch itself always completes."""
    tb, injector, batch = run_trial(concurrency=4)
    assert len(batch.scheduled) == 16
    for item in batch.scheduled:
        if item.outcome is None:
            # Captured error, never a raised one.
            assert item.error, "job without outcome must carry its error"
    failed = [s for s in batch.scheduled if s.outcome is None]
    denied = [
        s for s in batch.scheduled
        if s.outcome is not None and not s.granted
    ]
    # The plan injects hard faults (drops + crash): at least one job
    # must have failed or been denied by them.
    assert failed or denied


def test_chaos_identical_serial_when_faults_exhausted():
    """After the fault windows pass, the same world signals cleanly:
    faults do not poison broker state for later traffic."""
    tb, injector, batch = run_trial(concurrency=8)
    for item in batch.scheduled:
        if item.granted and item.outcome is not None:
            tb.hop_by_hop.cancel(item.outcome)
    tb.sweep_soft_state(tb.sim.now + 10_000.0)

    users = {d: tb.users[f"user-{d}"] for d in DOMAINS}
    followup = ConcurrentSignaller(tb.hop_by_hop, concurrency=4).run(
        make_jobs(tb, users, 8)
    )
    assert all(s.error == "" for s in followup.scheduled), [
        s.error for s in followup.scheduled
    ]
    assert followup.granted_count > 0
    for item in followup.scheduled:
        if item.granted and item.outcome is not None:
            tb.hop_by_hop.cancel(item.outcome)
    tb.sweep_soft_state(tb.sim.now + 20_000.0)
    assert _check_invariants(tb) == []
