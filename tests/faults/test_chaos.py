"""The chaos harness: determinism, invariant checking, reporting."""

from repro.core.testbed import build_linear_testbed
from repro.faults.chaos import _check_invariants, run_chaos


class TestDeterminism:
    def test_same_seed_same_schedule_and_outcomes(self):
        first = run_chaos(seed=3, trials=12)
        second = run_chaos(seed=3, trials=12)
        assert first.schedule_digest == second.schedule_digest
        assert [
            (t.spec, t.granted, t.injected, t.retries, t.denial_reason)
            for t in first.trials
        ] == [
            (t.spec, t.granted, t.injected, t.retries, t.denial_reason)
            for t in second.trials
        ]

    def test_different_seed_different_schedule(self):
        assert (
            run_chaos(seed=3, trials=12).schedule_digest
            != run_chaos(seed=4, trials=12).schedule_digest
        )

    def test_no_violations_on_small_run(self):
        report = run_chaos(seed=11, trials=25)
        assert report.violations == []
        assert len(report.trials) == 25
        # A healthy matrix run must actually exercise faults and both
        # grant and deny at least once — otherwise it proves nothing.
        assert report.injected_count > 0
        assert 0 < report.granted_count < 25


class TestInvariantChecker:
    def test_clean_testbed_passes(self):
        testbed = build_linear_testbed(["A", "B"])
        assert _check_invariants(testbed) == []

    def test_detects_capacity_leak_and_stuck_reservation(self):
        testbed = build_linear_testbed(["A", "B"])
        alice = testbed.add_user("A", "Alice")
        outcome = testbed.reserve(
            alice, source="A", destination="B", bandwidth_mbps=10.0
        )
        assert outcome.granted
        violations = _check_invariants(testbed)
        assert any("capacity leak" in v for v in violations)
        assert any("stuck reservation" in v for v in violations)

    def test_detects_unreleased_injector(self):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        testbed = build_linear_testbed(["A", "B"])
        testbed.attach_injector(FaultInjector(FaultPlan()))
        violations = _check_invariants(testbed)
        assert any("injector" in v for v in violations)
        testbed.detach_injector()
        assert _check_invariants(testbed) == []


class TestReport:
    def test_summary_lines(self):
        report = run_chaos(seed=5, trials=6)
        text = report.summary()
        assert "seed=5" in text
        assert "trials=6" in text
        assert report.schedule_digest in text
        assert "violations      : 0" in text


class TestAudit:
    def test_audit_off_by_default(self):
        report = run_chaos(seed=5, trials=4)
        assert report.ledger is None
        assert report.audit_report is None
        assert report.audit_violations == []
        assert all(t.audit_violations == () for t in report.trials)

    def test_audited_run_reconciles_clean(self):
        report = run_chaos(seed=11, trials=30, audit=True)
        assert report.ledger is not None and len(report.ledger) > 0
        assert report.audit_report is not None
        assert report.audit_violations == [], report.audit_violations
        text = report.summary()
        assert "audit" in text
        # The campaign must exercise both outcomes for the ledger to
        # prove anything.
        assert 0 < report.granted_count < 30

    def test_audited_run_is_ledger_deterministic(self):
        first = run_chaos(seed=3, trials=10, audit=True)
        second = run_chaos(seed=3, trials=10, audit=True)

        def shape(ledger):
            return [
                (r.kind, r.domain, r.granted, r.reason_code, r.matched_rule)
                for r in ledger
            ]

        assert shape(first.ledger) == shape(second.ledger)
