"""Tests for end-to-end reservation modification (renegotiation)."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import SignallingError


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestModify:
    def test_grow_within_capacity(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        fresh = testbed.hop_by_hop.modify(alice, outcome, rate_mbps=50.0)
        assert fresh.granted
        load = testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0)
        assert load == 50.0

    def test_shrink(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=50.0
        )
        fresh = testbed.hop_by_hop.modify(alice, outcome, rate_mbps=5.0)
        assert fresh.granted
        load = testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0)
        assert load == 5.0

    def test_denied_modification_restores_original(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=100.0
        )
        other = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=50.0
        )
        # Growing to 120 would need 170 total on 155 Mb/s links: denied.
        fresh = testbed.hop_by_hop.modify(alice, outcome, rate_mbps=120.0)
        assert not fresh.granted
        # The original 100 Mb/s reservation is back in force.
        load = testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0)
        assert load == 150.0
        # And the caller's outcome holds valid handles.
        for domain, handle in outcome.handles.items():
            assert testbed.brokers[domain].validate_handle(handle)

    def test_modify_requires_granted(self, testbed, alice):
        testbed.set_policy("B", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        with pytest.raises(SignallingError):
            testbed.hop_by_hop.modify(alice, outcome, rate_mbps=5.0)

    def test_modify_subject_to_policy(self, testbed, alice):
        testbed.set_policy("B", "If BW <= 20Mb/s\n    Return GRANT\nReturn DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        fresh = testbed.hop_by_hop.modify(alice, outcome, rate_mbps=30.0)
        assert not fresh.granted
        assert fresh.denial_domain == "B"
        # Original intact.
        load = testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0)
        assert load == 10.0
