"""Stress and differential tests for the concurrent signalling engine.

Larger-scale companions of ``tests/proptest/test_concurrent_props.py``:
fixed (but contended) workloads at N threads x M reservations, checked
against a serial run of the same jobs on a structurally identical
testbed, plus soft-state lease integrity and cancel-all cleanup under
parallel callers.
"""

import threading

import pytest

from repro.core.concurrent import ConcurrentSignaller, ReservationJob, run_serial
from repro.core.testbed import build_linear_testbed
from repro.faults.chaos import _check_invariants

DOMAINS = ["A", "B", "C", "D", "E", "F"]


def build_world(*, soft_state_ttl_s=None):
    tb = build_linear_testbed(DOMAINS, soft_state_ttl_s=soft_state_ttl_s)
    users = {d: tb.add_user(d, f"user-{d}") for d in DOMAINS}
    return tb, users


def make_jobs(tb, users, m):
    """M reservations criss-crossing the chain; 60 Mb/s each against
    155 Mb/s links forces denials once paths contend."""
    jobs = []
    for i in range(m):
        src = DOMAINS[i % len(DOMAINS)]
        dst = DOMAINS[(i * 3 + 1) % len(DOMAINS)]
        if src == dst:
            dst = DOMAINS[(DOMAINS.index(src) + 1) % len(DOMAINS)]
        jobs.append(
            ReservationJob(
                user=users[src],
                request=tb.make_request(
                    source=src, destination=dst, bandwidth_mbps=60.0,
                    start=0.0, duration=3600.0,
                ),
            )
        )
    return jobs


def ledger(tb):
    state = {}
    for name, broker in tb.brokers.items():
        rows = []
        for resource in broker.admission.resources():
            for b in broker.admission.schedule(resource).bookings:
                rows.append((resource, b.start, b.end, b.rate_mbps))
        state[name] = sorted(rows)
    return state


@pytest.mark.parametrize("threads,m", [(2, 12), (4, 24), (8, 40)])
def test_matrix_matches_serial(threads, m):
    """N threads x M contended reservations: decisions, denial domains
    and every capacity ledger match the serial run exactly."""
    tb_serial, users_serial = build_world()
    tb_conc, users_conc = build_world()
    serial = run_serial(
        tb_serial.hop_by_hop, make_jobs(tb_serial, users_serial, m)
    )
    batch = ConcurrentSignaller(tb_conc.hop_by_hop, concurrency=threads).run(
        make_jobs(tb_conc, users_conc, m)
    )
    assert len(batch.scheduled) == m
    assert [s.granted for s in batch.scheduled] == [
        s.granted for s in serial.scheduled
    ]
    # The workload must actually contend, or the test proves nothing.
    assert 0 < batch.granted_count < m
    assert ledger(tb_conc) == ledger(tb_serial)
    # No link oversubscribed by any interleaving.
    for broker in tb_conc.brokers.values():
        for resource in broker.admission.resources():
            schedule = broker.admission.schedule(resource)
            assert (
                schedule.peak_load(0.0, 7200.0)
                <= schedule.capacity_mbps + 1e-9
            )


def test_handles_unique_at_scale():
    tb, users = build_world()
    batch = ConcurrentSignaller(tb.hop_by_hop, concurrency=8).run(
        make_jobs(tb, users, 40)
    )
    handles = [
        (domain, handle)
        for item in batch.scheduled if item.granted and item.outcome
        for domain, handle in item.outcome.handles.items()
    ]
    assert len(handles) == len(set(handles))


def test_no_lost_or_duplicated_leases():
    """Concurrent refreshes: every granted reservation keeps exactly one
    live lease, every lease lands at now + TTL, and the sweep reclaims
    each reservation exactly once after expiry."""
    ttl = 60.0
    tb, users = build_world(soft_state_ttl_s=ttl)
    batch = ConcurrentSignaller(tb.hop_by_hop, concurrency=8).run(
        make_jobs(tb, users, 24)
    )
    granted = [s.outcome for s in batch.scheduled if s.granted and s.outcome]
    assert granted

    # Hammer refresh from 8 threads, several rounds each.
    errors = []

    def refresher(outcomes):
        try:
            for _ in range(5):
                for outcome in outcomes:
                    tb.hop_by_hop.refresh(outcome)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    workers = [
        threading.Thread(target=refresher, args=(granted,)) for _ in range(8)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert errors == []

    now = tb.sim.now
    live = 0
    for outcome in granted:
        for domain in outcome.path:
            resv = tb.brokers[domain].reservations.get(
                outcome.handles[domain]
            )
            assert resv.expires_at == pytest.approx(now + ttl)
            live += 1
    # One lease per (reservation, domain) — nothing lost, nothing doubled.
    assert live == sum(len(o.path) for o in granted)
    assert tb.sweep_soft_state(now + ttl / 2) == 0
    assert tb.sweep_soft_state(now + ttl + 1.0) == live
    # A second sweep finds nothing: no duplicated reclamation.
    assert tb.sweep_soft_state(now + ttl + 2.0) == 0


def test_cancel_all_restores_clean_state():
    """Cancelling every grant from parallel threads leaves the chaos
    harness's invariants intact: no capacity leak, no stuck
    reservations, no leftover bookings."""
    tb, users = build_world()
    batch = ConcurrentSignaller(tb.hop_by_hop, concurrency=8).run(
        make_jobs(tb, users, 24)
    )
    granted = [s.outcome for s in batch.scheduled if s.granted and s.outcome]
    assert granted

    def cancel(outcomes):
        for outcome in outcomes:
            tb.hop_by_hop.cancel(outcome)

    # Partition the grants across threads (each cancelled exactly once).
    workers = [
        threading.Thread(target=cancel, args=(granted[i::4],))
        for i in range(4)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert _check_invariants(tb) == []
