"""Direct tests for signalling-path tracing (happy paths are covered in
the hop-by-hop integration tests; these cover structure and errors)."""

import pytest

from repro.core.envelope import seal
from repro.core.messages import make_approval, make_bb_rar, make_user_rar
from repro.core.tracing import trace_approval_chain, trace_request_path
from repro.bb.reservations import ReservationRequest
from repro.crypto.dn import DN
from repro.crypto.keys import SimulatedScheme
from repro.crypto.x509 import sign_certificate
from repro.errors import SignallingError

SCHEME = SimulatedScheme()
ALICE = DN.make("Grid", "A", "Alice")
BB_A = DN.make("Grid", "A", "BB-A")
BB_B = DN.make("Grid", "B", "BB-B")
BB_C = DN.make("Grid", "C", "BB-C")


def request():
    return ReservationRequest(
        source_host="h", destination_host="h'",
        source_domain="A", destination_domain="C",
        rate_mbps=1.0, start=0.0, end=1.0,
    )


@pytest.fixture()
def chain(rng):
    alice_kp = SCHEME.generate(rng)
    bb_a_kp = SCHEME.generate(rng)
    alice_cert = sign_certificate(
        serial=1, issuer=DN.make("Grid", "A", "CA"), subject=ALICE,
        public_key=alice_kp.public, signing_key=bb_a_kp.private,
    )
    rar_u = make_user_rar(
        request=request(), source_bb=BB_A, user=ALICE,
        user_key=alice_kp.private,
    )
    rar_a = make_bb_rar(
        inner=rar_u, introduced_cert=alice_cert, downstream=BB_B,
        bb=BB_A, bb_key=bb_a_kp.private,
    )
    return rar_u, rar_a, bb_a_kp


class TestRequestTrace:
    def test_travel_order(self, chain):
        _, rar_a, _ = chain
        trace = trace_request_path(rar_a)
        assert trace.signers == (ALICE, BB_A)
        assert trace.addressed_to == (BB_A, BB_B)
        assert trace.consistent

    def test_single_layer(self, chain):
        rar_u, _, _ = chain
        trace = trace_request_path(rar_u)
        assert trace.signers == (ALICE,)
        assert trace.consistent

    def test_inconsistent_path_flagged(self, chain, rng):
        """A chain whose user layer names a different BB than the one that
        actually forwarded it is structurally inconsistent."""
        rar_u, _, bb_a_kp = chain
        # Hand-build a wrapper whose signer does not match the user's
        # addressed downstream (signed by a key claiming to be BB-C).
        bb_c_kp = SCHEME.generate(rng)
        alice_cert = sign_certificate(
            serial=2, issuer=DN.make("Grid", "A", "CA"), subject=ALICE,
            public_key=SCHEME.generate(rng).public, signing_key=bb_c_kp.private,
        )
        wrapped = make_bb_rar(
            inner=rar_u, introduced_cert=alice_cert, downstream=BB_B,
            bb=BB_C, bb_key=bb_c_kp.private,  # not the BB the user named!
        )
        trace = trace_request_path(wrapped)
        assert not trace.consistent

    def test_non_rar_rejected(self, rng):
        kp = SCHEME.generate(rng)
        not_rar = seal({"type": "weird"}, signer=ALICE, key=kp.private)
        with pytest.raises(SignallingError):
            trace_request_path(not_rar)

    def test_depth_bounded(self, rng):
        """Regression: a maliciously deep RAR must raise, not walk forever.
        The tracer bounds the walk itself, like trace_approval_chain."""
        alice_kp = SCHEME.generate(rng)
        rar = make_user_rar(
            request=request(), source_bb=BB_A, user=ALICE,
            user_key=alice_kp.private,
        )
        bb_kp = SCHEME.generate(rng)
        for _ in range(70):
            rar = make_bb_rar(
                inner=rar, introduced_cert=None, downstream=BB_B,
                bb=BB_A, bb_key=bb_kp.private,
            )
        with pytest.raises(SignallingError, match="maximum depth"):
            trace_request_path(rar)


class TestApprovalTrace:
    def test_unwind_order(self, rng):
        kp = SCHEME.generate(rng)
        inner = make_approval(handle="H-C", domain="C", bb=BB_C,
                              bb_key=kp.private)
        mid = make_approval(handle="H-B", domain="B", inner=inner,
                            bb=BB_B, bb_key=kp.private)
        outer = make_approval(handle="H-A", domain="A", inner=mid,
                              bb=BB_A, bb_key=kp.private)
        chain = trace_approval_chain(outer)
        assert [c[1] for c in chain] == ["A", "B", "C"]
        assert [c[2] for c in chain] == ["H-A", "H-B", "H-C"]
        assert [c[0] for c in chain] == [BB_A, BB_B, BB_C]

    def test_non_approval_rejected(self, rng):
        kp = SCHEME.generate(rng)
        denial = seal({"type": "denial"}, signer=BB_A, key=kp.private)
        with pytest.raises(SignallingError):
            trace_approval_chain(denial)
