"""Tests for tunnels: aggregate reservations with end-domain-only flows."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import TunnelError


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C", "D"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


@pytest.fixture()
def tunnel(testbed, alice):
    request = testbed.make_request(
        source="A", destination="D", bandwidth_mbps=50.0, duration=7200.0
    )
    tunnel, outcome = testbed.tunnels.establish(alice, request)
    assert outcome.granted
    return tunnel


class TestEstablishment:
    def test_tunnel_created_with_handles(self, tunnel):
        assert tunnel.capacity_mbps == 50.0
        assert set(tunnel.handles) == {"A", "B", "C", "D"}
        assert tunnel.owner.common_name == "Alice"

    def test_direct_channel_opened(self, testbed, tunnel):
        """The identity information propagated by the signalling protocol
        lets the non-adjacent end domains open a direct channel."""
        assert tunnel.direct_channel is not None
        assert testbed.channels.has(
            testbed.brokers["A"].dn, testbed.brokers["D"].dn
        )

    def test_denied_tunnel_returns_none(self, testbed, alice):
        testbed.set_policy("C", "Return DENY")
        request = testbed.make_request(
            source="A", destination="D", bandwidth_mbps=50.0
        )
        tunnel, outcome = testbed.tunnels.establish(alice, request)
        assert tunnel is None
        assert not outcome.granted

    def test_establishment_books_capacity(self, testbed, tunnel):
        assert testbed.brokers["B"].admission.schedule("intra").load_at(1.0) == 50.0


class TestFlowAllocation:
    def test_allocate_within_capacity(self, testbed, alice, tunnel):
        alloc, latency, messages = testbed.tunnels.allocate_flow(
            tunnel.tunnel_id, alice, 10.0
        )
        assert alloc.rate_mbps == 10.0
        assert messages == 4
        assert latency > 0
        assert tunnel.allocated_mbps(tunnel.start, tunnel.end) == 10.0

    def test_intermediate_domains_not_contacted(self, testbed, alice, tunnel):
        """The scalability property: per-flow signalling touches only the
        end domains."""
        bb_b, bb_c = testbed.brokers["B"], testbed.brokers["C"]
        inter_channels = [
            testbed.channels.between(testbed.brokers["A"].dn, bb_b.dn),
            testbed.channels.between(bb_b.dn, bb_c.dn),
            testbed.channels.between(bb_c.dn, testbed.brokers["D"].dn),
        ]
        before = [c.messages for c in inter_channels]
        for _ in range(10):
            testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 1.0)
        after = [c.messages for c in inter_channels]
        assert before == after

    def test_headroom_enforced(self, testbed, alice, tunnel):
        testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 45.0)
        with pytest.raises(TunnelError, match="headroom"):
            testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 10.0)
        # 5 Mb/s still fits.
        testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 5.0)

    def test_time_disjoint_allocations_share(self, testbed, alice, tunnel):
        mid = (tunnel.start + tunnel.end) / 2
        testbed.tunnels.allocate_flow(
            tunnel.tunnel_id, alice, 50.0, start=tunnel.start, end=mid
        )
        testbed.tunnels.allocate_flow(
            tunnel.tunnel_id, alice, 50.0, start=mid, end=tunnel.end
        )

    def test_release_restores_headroom(self, testbed, alice, tunnel):
        alloc, _, _ = testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 50.0)
        testbed.tunnels.release_flow(tunnel.tunnel_id, alloc.allocation_id)
        assert tunnel.headroom(tunnel.start, tunnel.end) == 50.0
        with pytest.raises(TunnelError):
            testbed.tunnels.release_flow(tunnel.tunnel_id, alloc.allocation_id)

    def test_authorization_required(self, testbed, tunnel):
        bob = testbed.add_user("A", "Bob")
        with pytest.raises(TunnelError, match="not authorized"):
            testbed.tunnels.allocate_flow(tunnel.tunnel_id, bob, 1.0)
        testbed.tunnels.authorize(tunnel.tunnel_id, bob.dn)
        alloc, _, _ = testbed.tunnels.allocate_flow(tunnel.tunnel_id, bob, 1.0)
        assert alloc.owner == bob.dn

    def test_window_enforced(self, testbed, alice, tunnel):
        with pytest.raises(TunnelError, match="window"):
            testbed.tunnels.allocate_flow(
                tunnel.tunnel_id, alice, 1.0, start=tunnel.end, end=tunnel.end + 10
            )

    def test_invalid_rate(self, testbed, alice, tunnel):
        with pytest.raises(TunnelError, match="positive"):
            testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 0.0)

    def test_unknown_tunnel(self, testbed, alice):
        with pytest.raises(TunnelError, match="unknown"):
            testbed.tunnels.allocate_flow("TUN-9999", alice, 1.0)


class TestScalability:
    def test_tunnel_beats_per_flow_messages(self, testbed, alice):
        """C2: for N flows over k domains, per-flow hop-by-hop signalling
        costs 2k messages each; with a tunnel each flow costs 4."""
        k = 4  # domains
        n = 20  # flows
        request = testbed.make_request(
            source="A", destination="D", bandwidth_mbps=40.0
        )
        tunnel, outcome = testbed.tunnels.establish(alice, request)
        setup_messages = outcome.messages
        per_flow_messages = 0
        for _ in range(n):
            _, _, msgs = testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 1.0)
            per_flow_messages += msgs
        tunnel_total = setup_messages + per_flow_messages

        # Per-flow baseline: each flow is its own hop-by-hop reservation.
        baseline_total = 0
        for _ in range(n):
            o = testbed.reserve(
                alice, source="A", destination="D", bandwidth_mbps=1.0
            )
            assert o.granted
            baseline_total += o.messages
        assert tunnel_total < baseline_total
        assert per_flow_messages == 4 * n
        assert baseline_total == 2 * k * n

    def test_teardown_releases_aggregate(self, testbed, alice):
        request = testbed.make_request(
            source="A", destination="D", bandwidth_mbps=50.0
        )
        tunnel, _ = testbed.tunnels.establish(alice, request)
        testbed.tunnels.teardown(tunnel.tunnel_id)
        assert testbed.brokers["B"].admission.schedule("intra").load_at(1.0) == 0.0
        with pytest.raises(TunnelError):
            testbed.tunnels.get(tunnel.tunnel_id)
