"""Tests for the wire codec: canonical decode + object round trips."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.reservations import ReservationRequest
from repro.core.codec import from_wire, pack, to_wire, unpack
from repro.core.messages import make_bb_rar, make_user_rar
from repro.core.testbed import build_linear_testbed
from repro.core.trust import verify_rar
from repro.crypto import canonical
from repro.crypto.dn import DN
from repro.crypto.keys import RSAScheme, SimulatedScheme
from repro.errors import EncodingError
from repro.net.packet import DSCP
from repro.policy.attributes import make_assertion


class TestCanonicalDecode:
    def test_scalar_roundtrips(self):
        for value in [None, True, False, 0, -42, 10**40, 1.5, -0.0,
                      "héllo", b"\x00\xff", "", b""]:
            assert canonical.decode(canonical.encode(value)) == value

    def test_container_roundtrips(self):
        value = {"a": [1, "two", {"b": b"3"}], "c": [], "d": {}}
        assert canonical.decode(canonical.encode(value)) == value

    def test_tuple_becomes_list(self):
        assert canonical.decode(canonical.encode((1, 2))) == [1, 2]

    def test_trailing_bytes_rejected(self):
        data = canonical.encode(1) + b"x"
        with pytest.raises(EncodingError, match="trailing"):
            canonical.decode(data)

    def test_truncation_rejected(self):
        data = canonical.encode("hello")
        with pytest.raises(EncodingError):
            canonical.decode(data[:-1])

    def test_bad_tag_rejected(self):
        with pytest.raises(EncodingError, match="tag"):
            canonical.decode(b"Z" + (0).to_bytes(4, "big"))

    def test_length_overrun_rejected(self):
        with pytest.raises(EncodingError):
            canonical.decode(b"S" + (10).to_bytes(4, "big") + b"abc")

    def test_malformed_int_payload(self):
        with pytest.raises(EncodingError):
            canonical.decode(b"I" + (3).to_bytes(4, "big") + b"abc")

    def test_non_string_map_key_rejected(self):
        inner = canonical.encode(1) + canonical.encode(2)
        data = b"M" + len(inner).to_bytes(4, "big") + inner
        with pytest.raises(EncodingError, match="key"):
            canonical.decode(data)

    _scalar = st.one_of(
        st.none(), st.booleans(),
        st.integers(min_value=-(10**20), max_value=10**20),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20), st.binary(max_size=20),
    )
    _value = st.recursive(
        _scalar,
        lambda ch: st.one_of(
            st.lists(ch, max_size=4),
            st.dictionaries(st.text(max_size=6), ch, max_size=4),
        ),
        max_leaves=20,
    )

    @settings(max_examples=150)
    @given(_value)
    def test_decode_encode_property(self, value):
        decoded = canonical.decode(canonical.encode(value))
        # Re-encoding the decoded value must reproduce the exact bytes.
        assert canonical.encode(decoded) == canonical.encode(value)


def request(**kwargs):
    defaults = dict(
        source_host="h0.A", destination_host="h0.C",
        source_domain="A", destination_domain="C",
        rate_mbps=10.0, start=0.0, end=3600.0,
        linked_reservations=(("cpu", "CPU-1"),),
        attributes=(("flow_id", "f1"), ("tunnel", True)),
    )
    defaults.update(kwargs)
    return ReservationRequest(**defaults)


class TestObjectRoundTrips:
    def test_dn(self):
        dn = DN.make("Grid", "A", "Alice")
        assert from_wire(to_wire(dn)) == dn

    def test_request(self):
        req = request()
        assert from_wire(to_wire(req)) == req

    def test_request_with_infinite_cost(self):
        req = request(cost_ceiling=float("inf"))
        back = from_wire(to_wire(req))
        assert back.cost_ceiling == float("inf")
        assert back == req

    def test_dscp_preserved(self):
        req = request(service_class=DSCP.AF41)
        assert from_wire(to_wire(req)).service_class is DSCP.AF41

    def test_certificate_roundtrip_rsa(self, keypool):
        from repro.crypto.x509 import CertificateAuthority

        ca = CertificateAuthority(
            DN.make("Grid", "A", "CA"), keypair=keypool[0], scheme="rsa"
        )
        _, cert = ca.issue_keypair(
            DN.make("Grid", "A", "BB-A"), rng=random.Random(1),
            extensions={"capabilities": ("x", "y")},
        )
        back = from_wire(to_wire(cert))
        assert back == cert
        # The signature still verifies on the decoded copy.
        assert back.verify_signature(keypool[0].public)

    def test_assertion_roundtrip(self, rng):
        keys = SimulatedScheme().generate(rng)
        a = make_assertion(
            issuer=DN.make("Grid", "HEP", "GS"),
            issuer_key=keys.private,
            subject=DN.make("Grid", "A", "Alice"),
            attributes={"group": "atlas", "level": 3},
        )
        back = from_wire(to_wire(a))
        assert back == a
        assert back.verify(keys.public)

    def test_unpackable_type_rejected(self):
        with pytest.raises(EncodingError):
            to_wire(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(EncodingError, match="unknown"):
            unpack({"__kind__": "alien"})

    def test_untagged_mapping_rejected(self):
        with pytest.raises(EncodingError, match="__kind__"):
            unpack({"a": 1})

    def test_plain_container_roundtrip(self):
        value = {"x": (1, "a"), "y": [True, None]}
        back = from_wire(to_wire(value))
        assert back == {"x": (1, "a"), "y": (True, None)}


class TestNestedRAROverTheWire:
    def test_nested_rar_survives_and_verifies(self, rng):
        """The crucial property: a full nested RAR crosses the byte
        boundary and every signature still verifies."""
        scheme = SimulatedScheme()
        alice_kp = scheme.generate(rng)
        bb_a_kp = scheme.generate(rng)
        alice = DN.make("Grid", "A", "Alice")
        bb_a = DN.make("Grid", "A", "BB-A")
        bb_b = DN.make("Grid", "B", "BB-B")
        from repro.crypto.x509 import sign_certificate

        alice_cert = sign_certificate(
            serial=1, issuer=DN.make("Grid", "A", "CA"), subject=alice,
            public_key=alice_kp.public, signing_key=bb_a_kp.private,
        )
        rar_u = make_user_rar(
            request=request(), source_bb=bb_a, user=alice,
            user_key=alice_kp.private,
        )
        rar_a = make_bb_rar(
            inner=rar_u, introduced_cert=alice_cert, downstream=bb_b,
            bb=bb_a, bb_key=bb_a_kp.private,
        )
        wire = to_wire(rar_a)
        assert isinstance(wire, bytes) and len(wire) > 500
        back = from_wire(wire)
        assert back == rar_a
        assert back.verify(bb_a_kp.public)
        assert back["inner_rar"].verify(alice_kp.public)

    def test_end_to_end_protocol_message_roundtrip(self):
        """Take the final RAR from a real testbed run through the codec and
        re-verify it with full transitive trust."""
        tb = build_linear_testbed(["A", "B", "C"])
        alice = tb.add_user("A", "Alice")
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted
        wire = to_wire(outcome.final_rar)
        back = from_wire(wire)
        bb_c = tb.brokers["C"]
        verified = verify_rar(
            back,
            verifier=bb_c.dn,
            peer_certificate=tb.brokers["B"].certificate,
            truststore=bb_c.truststore,
        )
        assert verified.user == alice.dn
        assert verified.request.rate_mbps == 10.0

    def test_tampered_wire_detected(self):
        tb = build_linear_testbed(["A", "B", "C"])
        alice = tb.add_user("A", "Alice")
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        wire = bytearray(to_wire(outcome.final_rar))
        # Flip a byte in the middle (inside some payload field).
        wire[len(wire) // 2] ^= 0x01
        from repro.errors import ReproError

        try:
            back = from_wire(bytes(wire))
        except ReproError:
            return  # structurally broken: also an acceptable detection
        # If it still parses, some signature must now fail.
        bb_c = tb.brokers["C"]
        with pytest.raises(ReproError):
            verify_rar(
                back,
                verifier=bb_c.dn,
                peer_certificate=tb.brokers["B"].certificate,
                truststore=bb_c.truststore,
            )


_req_strategy = st.builds(
    ReservationRequest,
    source_host=st.text(min_size=1, max_size=10,
                        alphabet="abcdefghij0123456789."),
    destination_host=st.text(min_size=1, max_size=10,
                             alphabet="abcdefghij0123456789."),
    source_domain=st.sampled_from(["A", "B", "C"]),
    destination_domain=st.sampled_from(["A", "B", "C"]),
    rate_mbps=st.floats(min_value=0.001, max_value=1e4),
    start=st.floats(min_value=0.0, max_value=1e6),
    end=st.floats(min_value=1e6 + 1.0, max_value=2e6),
    service_class=st.sampled_from(list(DSCP)),
    burst_bits=st.floats(min_value=1.0, max_value=1e6),
    cost_ceiling=st.one_of(
        st.just(float("inf")),
        st.floats(min_value=0.0, max_value=1e6),
    ),
    linked_reservations=st.lists(
        st.tuples(st.sampled_from(["cpu", "disk"]),
                  st.text(min_size=1, max_size=8)),
        max_size=3,
    ).map(tuple),
    attributes=st.lists(
        st.tuples(
            st.text(min_size=1, max_size=8),
            st.one_of(st.booleans(), st.text(max_size=8),
                      st.floats(allow_nan=False, allow_infinity=False)),
        ),
        max_size=3,
    ).map(tuple),
)


@settings(max_examples=60)
@given(_req_strategy)
def test_request_roundtrip_property(req):
    """Property: any well-formed reservation request survives the wire."""
    assert from_wire(to_wire(req)) == req
