"""Tests for cost negotiation (paper §6.1: the request carries 'a cost
that the user is willing to accept')."""

import pytest

from repro.core.testbed import build_linear_testbed


@pytest.fixture()
def testbed():
    tb = build_linear_testbed(["A", "B", "C"])
    # Tariffs: B charges 2, C charges 3 per Mb/s-hour of entering traffic.
    for sla in tb.brokers["B"].slas_in.values():
        sla.price_per_mbps_hour = 2.0
    for sla in tb.brokers["C"].slas_in.values():
        sla.price_per_mbps_hour = 3.0
    return tb


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestCostCeiling:
    def test_default_ceiling_is_unlimited(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            duration=3600.0,
        )
        assert outcome.granted
        # 10 Mb/s-hours x (2 + 3).
        assert outcome.cost == pytest.approx(50.0)

    def test_sufficient_ceiling_granted(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            duration=3600.0, cost_ceiling=50.0,
        )
        assert outcome.granted
        assert outcome.cost <= 50.0

    def test_ceiling_exceeded_at_expensive_domain(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            duration=3600.0, cost_ceiling=30.0,
        )
        assert not outcome.granted
        # B costs 20 (within), C pushes it to 50 (over): denied at C.
        assert outcome.denial_domain == "C"
        assert "cost ceiling exceeded" in outcome.denial_reason

    def test_ceiling_exceeded_early(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            duration=3600.0, cost_ceiling=10.0,
        )
        assert not outcome.granted
        assert outcome.denial_domain == "B"

    def test_denial_releases_partial_path(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            duration=3600.0, cost_ceiling=30.0,
        )
        assert not outcome.granted
        for domain in "ABC":
            schedule = testbed.brokers[domain].admission.schedule("intra")
            assert schedule.load_at(1.0) == 0.0

    def test_cheaper_request_fits_same_ceiling(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=5.0,
            duration=3600.0, cost_ceiling=30.0,
        )
        assert outcome.granted
        assert outcome.cost == pytest.approx(25.0)

    def test_shorter_duration_cheaper(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            duration=1800.0, cost_ceiling=30.0,
        )
        assert outcome.granted
        assert outcome.cost == pytest.approx(25.0)

    def test_intradomain_reservation_free_of_transit_cost(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="A", bandwidth_mbps=10.0,
            cost_ceiling=0.0,
        )
        assert outcome.granted
        assert outcome.cost == 0.0
