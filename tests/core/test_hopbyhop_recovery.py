"""Failure recovery in hop-by-hop signalling.

These tests drive the protocol through injected faults and assert both
the *liveness* half (transient faults are survived by retries) and the
*safety* half (any abort — expected or not — releases every admission
made so far, so a failed attempt never strands capacity).
"""

import pytest

from repro.bb.reservations import ReservationState
from repro.core.recovery import CircuitBreaker
from repro.core.testbed import build_linear_testbed
from repro.errors import SignallingError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, TargetKind


def inject(testbed, *specs):
    injector = FaultInjector(FaultPlan(tuple(specs), seed=1))
    testbed.attach_injector(injector)
    return injector


def assert_no_capacity_booked(testbed, at=1.0):
    for domain, broker in testbed.brokers.items():
        for name in broker.admission.resources():
            load = broker.admission.schedule(name).load_at(at)
            assert load == 0.0, f"{domain}/{name} still carries {load} Mb/s"
        assert not broker._booking_map
        assert not broker.reservations.in_state(
            ReservationState.PENDING,
            ReservationState.GRANTED,
            ReservationState.ACTIVE,
        )


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestTransientRecovery:
    def test_single_drop_survived_by_retry(self, testbed, alice):
        inject(
            testbed,
            FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.DROP, ops=1),
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted
        assert outcome.retries >= 1

    def test_corruption_survived_by_retransmission(self, testbed, alice):
        inject(
            testbed,
            FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.CORRUPT, ops=1),
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted
        assert outcome.retries >= 1

    def test_brief_broker_crash_survived(self, testbed, alice):
        inject(
            testbed,
            FaultSpec(TargetKind.BROKER, "B", FaultKind.CRASH, ops=1),
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted
        assert outcome.retries >= 1

    def test_retry_backoff_shows_up_in_latency(self, testbed, alice):
        clean = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=1.0
        )
        inject(
            testbed,
            FaultSpec(TargetKind.CHANNEL, "A|B", FaultKind.DROP, ops=1),
        )
        retried = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=1.0
        )
        assert retried.latency_s > clean.latency_s


class TestPermanentFailures:
    def test_dead_intermediate_broker_denies_and_releases(
        self, testbed, alice
    ):
        inject(
            testbed,
            FaultSpec(TargetKind.BROKER, "B", FaultKind.CRASH, ops=None),
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert "down" in outcome.denial_reason
        assert_no_capacity_booked(testbed)

    def test_unreachable_downstream_link_denies_and_releases(
        self, testbed, alice
    ):
        inject(
            testbed,
            FaultSpec(TargetKind.CHANNEL, "B|C", FaultKind.DROP, ops=None),
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "C"
        assert "unreachable" in outcome.denial_reason
        assert_no_capacity_booked(testbed)

    def test_policy_outage_denies_and_releases(self, testbed, alice):
        inject(
            testbed,
            FaultSpec(
                TargetKind.POLICY, "C", FaultKind.UNAVAILABLE, ops=None
            ),
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert_no_capacity_booked(testbed)

    def test_deadline_exceeded_denies_and_releases(self, testbed, alice):
        # A persistent one-second delay dwarfs the 0.25 s hop timeout, so
        # every attempt on A|B is declared lost and the retry budget burns
        # straight through the 0.4 s end-to-end deadline.
        inject(
            testbed,
            FaultSpec(
                TargetKind.CHANNEL, "A|B", FaultKind.DELAY,
                ops=None, delay_s=1.0,
            ),
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            deadline_s=0.4,
        )
        assert not outcome.granted
        assert "deadline" in outcome.denial_reason
        assert_no_capacity_booked(testbed)

    def test_breaker_opens_on_proven_dead_link(self, testbed, alice):
        inject(
            testbed,
            FaultSpec(TargetKind.CHANNEL, "B|C", FaultKind.DROP, ops=None),
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        breaker = testbed.hop_by_hop._breakers["B|C"]
        assert breaker.state == CircuitBreaker.OPEN


class TestAbortReleasesPartialPath:
    def test_unexpected_crash_between_admissions_releases_upstream(
        self, testbed, alice, monkeypatch
    ):
        """Regression: an exception thrown after some hops admitted must
        not strand their capacity (the ``finally`` unwind in ``_signal``)."""
        broker_c = testbed.brokers["C"]

        def explode(*args, **kwargs):
            raise RuntimeError("simulated crash between admissions")

        monkeypatch.setattr(broker_c, "admit", explode)
        with pytest.raises(RuntimeError, match="between admissions"):
            testbed.reserve(
                alice, source="A", destination="C", bandwidth_mbps=10.0
            )
        # A and B admitted before C exploded; both must be clean again.
        assert_no_capacity_booked(testbed)

    def test_modify_restores_old_reservation_on_abort(
        self, testbed, alice, monkeypatch
    ):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted
        broker_c = testbed.brokers["C"]
        real_admit = broker_c.admit
        calls = []

        def explode_once(*args, **kwargs):
            if not calls:
                calls.append(1)
                raise RuntimeError("modify dies mid-flight")
            return real_admit(*args, **kwargs)

        monkeypatch.setattr(broker_c, "admit", explode_once)
        with pytest.raises(RuntimeError, match="mid-flight"):
            testbed.hop_by_hop.modify(alice, outcome, rate_mbps=20.0)
        # The abort's unwind released the partial 20 Mb/s grants and the
        # original 10 Mb/s reservation was re-established on every hop
        # (under fresh handles, written back into the outcome).
        for domain in "ABC":
            broker = testbed.brokers[domain]
            resv = broker.reservations.get(outcome.handles[domain])
            assert resv.state is ReservationState.GRANTED
            assert resv.request.rate_mbps == 10.0
        assert (
            testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0)
            == 10.0
        )


class TestSoftState:
    @pytest.fixture()
    def testbed(self):
        return build_linear_testbed(["A", "B", "C"], soft_state_ttl_s=60.0)

    def test_unrefreshed_reservation_expires_everywhere(
        self, testbed, alice
    ):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted
        assert testbed.sweep_soft_state(59.0) == 0
        assert testbed.sweep_soft_state(61.0) == 3
        for domain in "ABC":
            resv = testbed.brokers[domain].reservations.get(
                outcome.handles[domain]
            )
            assert resv.state is ReservationState.EXPIRED
        assert_no_capacity_booked(testbed)

    def test_refresh_extends_the_lease(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        testbed.sim.run(until=50.0)
        testbed.hop_by_hop.refresh(outcome)
        # Without the refresh every lease would have lapsed at t=60.
        assert testbed.sweep_soft_state(100.0) == 0
        assert testbed.sweep_soft_state(200.0) == 3

    def test_refresh_requires_granted_outcome(self, testbed, alice):
        testbed.set_policy("B", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        with pytest.raises(SignallingError):
            testbed.hop_by_hop.refresh(outcome)

    def test_sweep_reclaims_when_cancel_cannot_reach_a_dead_broker(
        self, testbed, alice
    ):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted
        inject(
            testbed,
            FaultSpec(TargetKind.BROKER, "B", FaultKind.CRASH, ops=None),
        )
        with pytest.raises(Exception):
            testbed.hop_by_hop.cancel(outcome)
        testbed.detach_injector()
        # Explicit unwind could not finish; the soft-state backstop can.
        testbed.sweep_soft_state(1e9)
        assert_no_capacity_booked(testbed)
