"""End-to-end tests for hop-by-hop signalling on a wired testbed."""

import pytest

from repro.bb.reservations import ReservationState
from repro.core.testbed import build_linear_testbed
from repro.core.tracing import trace_approval_chain, trace_request_path
from repro.crypto.dn import DN
from repro.errors import SignallingError

FIG6_A = """
If User = Alice
    If Time > 8am and Time < 5pm
        If BW <= 10Mb/s
            Return GRANT
        Else Return DENY
    Else if BW <= Avail_BW
        Return GRANT
    Else Return DENY
Return DENY
"""

FIG6_B = """
If Group = Atlas
    If BW <= 10Mb/s
        Return GRANT
If Issued_by(Capability) = ESnet
    If BW <= 10Mb/s
        Return GRANT
Return DENY
"""


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestBasicReservation:
    def test_grant_across_three_domains(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted
        assert set(outcome.handles) == {"A", "B", "C"}
        assert outcome.path == ("A", "B", "C")
        for domain in "ABC":
            bb = testbed.brokers[domain]
            resv = bb.reservations.get(outcome.handles[domain])
            assert resv.state is ReservationState.GRANTED
            assert resv.owner == alice.dn

    def test_capacity_booked_everywhere(self, testbed, alice):
        testbed.reserve(alice, source="A", destination="C", bandwidth_mbps=10.0)
        assert testbed.brokers["A"].admission.schedule("egress:B").load_at(1.0) == 10.0
        assert testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0) == 10.0
        assert testbed.brokers["B"].admission.schedule("egress:C").load_at(1.0) == 10.0
        assert testbed.brokers["C"].admission.schedule("ingress:B").load_at(1.0) == 10.0

    def test_single_domain_reservation(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="A", bandwidth_mbps=5.0
        )
        assert outcome.granted
        assert outcome.path == ("A",)
        assert set(outcome.handles) == {"A"}

    def test_user_only_talks_to_source_bb(self, testbed, alice):
        """The defining property of Approach 2: Alice has channels only with
        BB-A; the other brokers never see her directly."""
        testbed.reserve(alice, source="A", destination="C", bandwidth_mbps=10.0)
        assert testbed.channels.has(alice.dn, testbed.brokers["A"].dn)
        assert not testbed.channels.has(alice.dn, testbed.brokers["B"].dn)
        assert not testbed.channels.has(alice.dn, testbed.brokers["C"].dn)

    def test_message_and_latency_accounting(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        # Request leg: user->A, A->B, B->C = 3; reply leg: 3.
        assert outcome.messages == 6
        # Latency: 2*(0.001 + 0.005 + 0.005) + 3 * processing 0.001.
        assert outcome.latency_s == pytest.approx(0.022 + 0.003)
        assert outcome.bytes > 0

    def test_path_tracing(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        trace = trace_request_path(outcome.final_rar)
        assert trace.signers == (
            alice.dn,
            testbed.brokers["A"].dn,
            testbed.brokers["B"].dn,
        )
        assert trace.consistent

    def test_approval_chain(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        chain = trace_approval_chain(outcome.approval)
        assert [c[1] for c in chain] == ["A", "B", "C"]
        assert chain[0][2] == outcome.handles["A"]
        assert chain[2][2] == outcome.handles["C"]

    def test_verified_rar_at_destination(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.verified is not None
        assert outcome.verified.user == alice.dn
        assert outcome.verified.depth == 2


class TestDenials:
    def test_policy_denial_at_intermediate(self, testbed, alice):
        testbed.set_policy("B", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "B"
        assert "DENY" in outcome.denial_reason

    def test_denial_releases_partial_path(self, testbed, alice):
        testbed.set_policy("C", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        # A and B were granted then released.
        assert testbed.brokers["A"].admission.schedule("egress:B").load_at(1.0) == 0.0
        assert testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0) == 0.0
        resv_a = testbed.brokers["A"].reservations.get(outcome.handles["A"])
        assert resv_a.state is ReservationState.CANCELLED

    def test_capacity_denial(self, testbed, alice):
        first = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=100.0
        )
        assert first.granted
        second = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=100.0
        )
        assert not second.granted
        assert "available" in second.denial_reason

    def test_denial_reason_reaches_user(self, testbed, alice):
        testbed.set_policy("C", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        # §6.1: the denial reason is propagated upstream.
        assert outcome.denial_reason
        assert outcome.denial_domain == "C"

    def test_foreign_user_rejected_at_source(self, testbed):
        """A user with a certificate from an unrelated CA cannot even open
        the channel to the source BB."""
        from repro.core.agent import UserAgent
        from repro.crypto.x509 import CertificateAuthority
        import random

        rogue_ca = CertificateAuthority(
            DN.make("Evil", "X", "CA"), rng=random.Random(1), scheme="simulated"
        )
        kp, cert = rogue_ca.issue_keypair(DN.make("Evil", "X", "Mallory"))
        mallory = UserAgent(
            DN.make("Evil", "X", "Mallory"), "A", keypair=kp, certificate=cert
        )
        mallory.truststore.add_introduced_peer(testbed.brokers["A"].certificate)
        from repro.errors import HandshakeError

        with pytest.raises(HandshakeError):
            testbed.reserve(
                mallory, source="A", destination="C", bandwidth_mbps=1.0
            )


class TestFigure6Scenario:
    """The complete Figure 6 policy environment, end to end."""

    @pytest.fixture()
    def fig6(self, testbed):
        testbed.set_policy("A", FIG6_A)
        testbed.set_policy("B", FIG6_B)
        cas = testbed.add_cas("ESnet")
        alice = testbed.add_user("A", "Alice")
        cas.grant(alice.dn, ["member"])
        alice.grid_login(cas, validity_s=10 * 24 * 3600.0)
        # Destination policy C requires ESnet capability + valid CPU resv
        # for >= 5 Mb/s; we install a CPU-handle validator below.
        testbed.set_policy(
            "C",
            "If BW >= 5Mb/s\n"
            "    If Issued_by(Capability) = ESnet and HasValidCPUResv(RAR)\n"
            "        Return GRANT\n"
            "    Else Return DENY\n"
            "Return GRANT",
        )
        testbed.brokers["C"].register_linked_validator(
            "cpu", lambda handle: handle == "CPU-111"
        )
        return testbed, alice

    def test_alice_granted_with_capability_and_cpu_resv(self, fig6):
        testbed, alice = fig6
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0,
            linked_reservations=(("cpu", "CPU-111"),),
        )
        # Evening (off business hours): BB-A allows up to Avail_BW.
        testbed.sim.run(until=20 * 3600.0)
        outcome = testbed.hop_by_hop.reserve(alice, request)
        assert outcome.granted, outcome.denial_reason

    def test_business_hours_cap_applies(self, fig6):
        testbed, alice = fig6
        testbed.sim.run(until=12 * 3600.0)  # noon
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=20.0,
            linked_reservations=(("cpu", "CPU-111"),),
        )
        outcome = testbed.hop_by_hop.reserve(alice, request)
        assert not outcome.granted
        assert outcome.denial_domain == "A"

    def test_missing_cpu_reservation_denied_at_c(self, fig6):
        testbed, alice = fig6
        testbed.sim.run(until=20 * 3600.0)
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0,
        )
        outcome = testbed.hop_by_hop.reserve(alice, request)
        assert not outcome.granted
        assert outcome.denial_domain == "C"

    def test_capability_chain_verified_at_destination(self, fig6):
        testbed, alice = fig6
        testbed.sim.run(until=20 * 3600.0)
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0,
            linked_reservations=(("cpu", "CPU-111"),),
        )
        outcome = testbed.hop_by_hop.reserve(alice, request)
        assert outcome.granted
        # Figure 7: the destination holds the full delegation chain
        # CAS -> Alice -> BB-A -> BB-B -> BB-C.
        assert outcome.delegation is not None
        assert outcome.delegation.capabilities == {"ESnet:member"}
        holders = outcome.delegation.holders
        assert holders[-1] == testbed.brokers["C"].dn
        assert len(holders) == 4

    def test_bob_without_credentials_denied_at_b(self, fig6):
        testbed, _ = fig6
        bob = testbed.add_user("A", "Bob")
        testbed.sim.run(until=20 * 3600.0)
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0,
        )
        outcome = testbed.hop_by_hop.reserve(bob, request)
        assert not outcome.granted
        # Policy A's user check already stops Bob ("If User = Alice").
        assert outcome.denial_domain == "A"


class TestClaimLifecycle:
    def test_claim_configures_data_plane(self, testbed, alice):
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0,
            attributes=(("flow_id", "alice-flow"),),
        )
        outcome = testbed.hop_by_hop.reserve(alice, request)
        testbed.hop_by_hop.claim(outcome)
        # Per-flow policer at Alice's first router.
        assert testbed.network.flow_policer("core.A", "alice-flow") is not None
        # Aggregate policers at B's and C's ingress.
        from repro.net.packet import DSCP

        agg_b = testbed.network.aggregate_policer("edge.B.left", DSCP.EF)
        agg_c = testbed.network.aggregate_policer("edge.C.left", DSCP.EF)
        assert agg_b is not None and agg_b.bucket.rate_bps == 10e6
        assert agg_c is not None and agg_c.bucket.rate_bps == 10e6

    def test_cancel_shrinks_aggregates(self, testbed, alice):
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0,
            attributes=(("flow_id", "f1"),),
        )
        outcome = testbed.hop_by_hop.reserve(alice, request)
        testbed.hop_by_hop.claim(outcome)
        testbed.hop_by_hop.cancel(outcome)
        from repro.net.packet import DSCP

        agg_c = testbed.network.aggregate_policer("edge.C.left", DSCP.EF)
        assert agg_c.bucket.rate_bps == 0.0
        assert testbed.network.flow_policer("core.A", "f1") is None

    def test_cannot_claim_denied(self, testbed, alice):
        testbed.set_policy("B", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        with pytest.raises(SignallingError):
            testbed.hop_by_hop.claim(outcome)


class TestGroupAssertionsOverProtocol:
    """Figure 6 Policy B's 'Group = Atlas' branch exercised through the
    full protocol: the assertion travels inside the RAR and BB-B verifies
    it against the registered group server."""

    def test_atlas_assertion_grants_at_b(self, testbed):
        testbed.set_policy("B", FIG6_B)
        gs = testbed.add_group_server("HEP")
        alice = testbed.add_user("A", "Alice")
        gs.add_member("Atlas", alice.dn)
        alice.collect_assertion(gs.assert_membership(alice.dn, "Atlas"))
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted, outcome.denial_reason

    def test_revoked_membership_denies(self, testbed):
        testbed.set_policy("B", FIG6_B)
        gs = testbed.add_group_server("HEP")
        alice = testbed.add_user("A", "Alice")
        gs.add_member("Atlas", alice.dn)
        alice.collect_assertion(gs.assert_membership(alice.dn, "Atlas"))
        # The group server drops Alice AFTER issuing the assertion: the
        # online re-validation at decision time must catch it.
        gs.remove_member("Atlas", alice.dn)
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "B"

    def test_foreign_assertion_ignored(self, testbed):
        testbed.set_policy("B", FIG6_B)
        alice = testbed.add_user("A", "Alice")
        from repro.crypto.keys import SimulatedScheme
        from repro.policy.attributes import make_assertion
        import random as _random

        rogue_keys = SimulatedScheme().generate(_random.Random(5))
        forged = make_assertion(
            issuer=DN.make("Evil", "X", "GS"),
            issuer_key=rogue_keys.private,
            subject=alice.dn,
            attributes={"group": "Atlas"},
        )
        alice.collect_assertion(forged)
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted

    def test_stolen_assertion_unusable(self, testbed):
        """Bob presents Alice's assertion: subject mismatch, rejected."""
        testbed.set_policy("B", FIG6_B)
        gs = testbed.add_group_server("HEP")
        alice = testbed.add_user("A", "Alice")
        bob = testbed.add_user("A", "Bob")
        gs.add_member("Atlas", alice.dn)
        stolen = gs.assert_membership(alice.dn, "Atlas")
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = testbed.hop_by_hop.reserve(
            bob, request, assertions=[stolen]
        )
        assert not outcome.granted
        assert outcome.denial_domain == "B"


class TestDomainWideInformation:
    """§6.1 step 2: the source BB 'receives additional domain-wide
    information from the policy server ... used to identify additional
    constraints' — propagated downstream as signed assertions and visible
    to later domains' policies."""

    def test_source_additions_reach_destination_policy(self, testbed, alice):
        # A's policy server attaches a traffic-engineering hint on grant.
        testbed.brokers["A"].policy_server.domain_attributes = {
            "te_class": "gold"
        }
        # C only admits requests a trusted upstream marked "gold".
        testbed.set_policy(
            "C", "If Attribute(te_class) = gold\n    Return GRANT\nReturn DENY"
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted, outcome.denial_reason

    def test_without_addition_denied(self, testbed, alice):
        testbed.set_policy(
            "C", "If Attribute(te_class) = gold\n    Return GRANT\nReturn DENY"
        )
        # The request never carried te_class: Attribute() probes to None
        # and C's fall-through denies.
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "C"

    def test_user_cannot_forge_domain_additions(self, testbed, alice):
        """A user self-asserting the hint gains nothing: the assertion's
        issuer (the user) is not a certificate the verifier associates
        with a BB, and the attribute merge only accepts assertions that
        verify against chain certificates — the user's own self-signed
        claim DOES verify (her cert is introduced), so defense must come
        from policy inspecting issuers.  Here we check the narrower
        guarantee: an assertion signed by a *rogue* key is ignored."""
        from repro.crypto.keys import SimulatedScheme
        from repro.policy.attributes import make_assertion
        import random as _random

        rogue = SimulatedScheme().generate(_random.Random(99))
        forged = make_assertion(
            issuer=testbed.brokers["A"].dn,  # claims to be BB-A
            issuer_key=rogue.private,        # ...but signed by a rogue key
            subject=alice.dn,
            attributes={"te_class": "gold"},
        )
        testbed.set_policy(
            "C", "If Attribute(te_class) = gold\n    Return GRANT\nReturn DENY"
        )
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        # The forged assertion fails signature verification against BB-A's
        # real certificate, so te_class never materialises at C.
        outcome = testbed.hop_by_hop.reserve(alice, request, assertions=[forged])
        assert not outcome.granted
        assert outcome.denial_domain == "C"
