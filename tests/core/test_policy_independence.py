"""The paper's policy-syntax-independence claim (§4), made executable.

"By separating authentication and authorization issues one can facilitate
the flexible propagation of different policy related information. ...
authorization decisions can be made without depending on specific
features of the language expressing the policy attributes.  Therefore,
the same propagation protocol can be used for different policy
representations."

Here the *same* hop-by-hop protocol carries Akenti user-attribute
certificates in the RAR's assertion slot, and the destination domain
authorizes with the Akenti use-condition engine instead of the rule
engine — no protocol change anywhere.
"""

import pytest

from repro.bb.policyserver import AkentiPolicyServer
from repro.core.testbed import build_linear_testbed
from repro.crypto.dn import DN
from repro.crypto.keys import SimulatedScheme
from repro.policy.akenti import AkentiEngine, make_user_attribute_certificate

ADMIN = DN.make("Grid", "LBNL", "Admin")
RESOURCE = "network/DomainC"


@pytest.fixture()
def setup(rng):
    testbed = build_linear_testbed(["A", "B", "C"])
    admin_keys = SimulatedScheme().generate(rng)
    akenti = AkentiEngine()
    akenti.register_resource(
        RESOURCE,
        ca_list={ADMIN: admin_keys.public},
        use_conditions=[{"collaboration": "atlas"}],
    )
    old = testbed.brokers["C"].policy_server
    testbed.brokers["C"].policy_server = AkentiPolicyServer(
        "C", akenti, RESOURCE,
        # keep the community trust so capability chains still verify
        trusted_communities=old._trusted_communities,
    )
    alice = testbed.add_user("A", "Alice")
    return testbed, alice, admin_keys


def attribute_cert(admin_keys, user_dn, value="atlas"):
    return make_user_attribute_certificate(
        issuer=ADMIN,
        issuer_key=admin_keys.private,
        user=user_dn,
        resource=RESOURCE,
        attribute="collaboration",
        value=value,
    )


class TestAkentiOverTheProtocol:
    def test_granted_with_attribute_certificate(self, setup):
        testbed, alice, admin_keys = setup
        alice.collect_assertion(attribute_cert(admin_keys, alice.dn))
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted, outcome.denial_reason
        assert testbed.brokers["C"].policy_server.decisions == 1

    def test_denied_without_certificate(self, setup):
        testbed, alice, _ = setup
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "C"
        assert "akenti" in outcome.denial_reason

    def test_denied_with_wrong_attribute(self, setup):
        testbed, alice, admin_keys = setup
        alice.collect_assertion(attribute_cert(admin_keys, alice.dn, value="cms"))
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted

    def test_denied_with_unlisted_issuer(self, setup, rng):
        testbed, alice, _ = setup
        rogue_keys = SimulatedScheme().generate(rng)
        rogue = DN.make("Grid", "Rogue", "Admin")
        cert = make_user_attribute_certificate(
            issuer=rogue,
            issuer_key=rogue_keys.private,
            user=alice.dn,
            resource=RESOURCE,
            attribute="collaboration",
            value="atlas",
        )
        alice.collect_assertion(cert)
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted

    def test_intermediate_domains_unchanged(self, setup):
        """Domains A and B still run the rule engine; only C swapped its
        policy representation.  The protocol did not change."""
        testbed, alice, admin_keys = setup
        testbed.set_policy("B", "If BW <= 50Mb/s\n    Return GRANT\nReturn DENY")
        alice.collect_assertion(attribute_cert(admin_keys, alice.dn))
        ok = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert ok.granted
        too_big = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=60.0
        )
        assert not too_big.granted
        assert too_big.denial_domain == "B"
