"""Cross-cutting property-based tests on system invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rsvp import RSVPSimulator
from repro.core.testbed import build_linear_testbed
from repro.errors import CapacityExceededError, TunnelError
from repro.net.topology import linear_domain_chain


# ---------------------------------------------------------------------------
# Tunnel invariant: allocations never exceed the aggregate.
# ---------------------------------------------------------------------------

_tunnel_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.floats(min_value=0.1, max_value=40.0)),
        st.tuples(st.just("release"), st.integers(min_value=0, max_value=30)),
    ),
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(_tunnel_ops)
def test_tunnel_never_oversubscribed(ops):
    tb = build_linear_testbed(["A", "B", "C"], hosts_per_domain=1)
    alice = tb.add_user("A", "Alice")
    tunnel, outcome = tb.tunnels.establish(
        alice, tb.make_request(source="A", destination="C",
                               bandwidth_mbps=100.0)
    )
    assert outcome.granted
    live: list[str] = []
    for op, arg in ops:
        if op == "alloc":
            try:
                alloc, _, _ = tb.tunnels.allocate_flow(
                    tunnel.tunnel_id, alice, arg
                )
                live.append(alloc.allocation_id)
            except TunnelError:
                pass
        elif live:
            idx = arg % len(live)
            tb.tunnels.release_flow(tunnel.tunnel_id, live.pop(idx))
        # Invariant after every operation.
        assert tunnel.allocated_mbps(tunnel.start, tunnel.end) <= 100.0 + 1e-9


# ---------------------------------------------------------------------------
# RSVP invariant: link loads never exceed capacity.
# ---------------------------------------------------------------------------

_rsvp_ops = st.lists(
    st.one_of(
        st.tuples(st.just("reserve"), st.floats(min_value=1.0, max_value=80.0)),
        st.tuples(st.just("teardown"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("advance"), st.floats(min_value=1.0, max_value=120.0)),
    ),
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(_rsvp_ops)
def test_rsvp_links_never_oversubscribed(ops):
    topo = linear_domain_chain(["A", "B"], hosts_per_domain=1,
                               inter_capacity_mbps=100.0)
    sim = RSVPSimulator(topo)
    live: list[str] = []
    counter = 0
    for op, arg in ops:
        if op == "reserve":
            counter += 1
            fid = f"f{counter}"
            try:
                sim.reserve(fid, "h0.A", "h0.B", arg)
                live.append(fid)
            except CapacityExceededError:
                pass
        elif op == "teardown" and live:
            idx = arg % len(live)
            try:
                sim.teardown(live.pop(idx))
            except Exception:
                pass
        elif op == "advance":
            sim.advance(arg, refresh=True)
            live = [f for f in live if f in sim._flows]
        for (a, b), load in sim._link_load.items():
            assert load <= sim._link_capacity(a, b) + 1e-6


# ---------------------------------------------------------------------------
# Admission invariant across the whole chain under random reserve/cancel.
# ---------------------------------------------------------------------------

_chain_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("reserve"),
            st.floats(min_value=1.0, max_value=120.0),
            st.floats(min_value=0.0, max_value=1000.0),
            st.floats(min_value=1.0, max_value=500.0),
        ),
        st.tuples(
            st.just("cancel"),
            st.integers(min_value=0, max_value=20),
            st.just(0.0),
            st.just(0.0),
        ),
    ),
    max_size=25,
)


@settings(max_examples=25, deadline=None)
@given(_chain_ops)
def test_chain_admission_never_oversubscribed(ops):
    """Interdomain links are 155 Mb/s; whatever mix of reservations and
    cancellations happens, the booked load never exceeds capacity in any
    domain at any time."""
    tb = build_linear_testbed(["A", "B", "C"], hosts_per_domain=1)
    alice = tb.add_user("A", "Alice")
    live = []
    for op, rate, start, duration in ops:
        if op == "reserve":
            outcome = tb.reserve(
                alice, source="A", destination="C", bandwidth_mbps=rate,
                start=start, duration=duration,
            )
            if outcome.granted:
                live.append(outcome)
        elif live:
            idx = int(rate) % len(live)
            tb.hop_by_hop.cancel(live.pop(idx))
    for broker in tb.brokers.values():
        for name in broker.admission.resources():
            schedule = broker.admission.schedule(name)
            for booking in schedule.bookings:
                assert schedule.load_at(booking.start) <= schedule.capacity_mbps + 1e-6


# ---------------------------------------------------------------------------
# Signalling outcome consistency under random rates.
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.1, max_value=400.0))
def test_outcome_consistency_property(rate):
    """Granted iff every domain holds a handle; denied iff a reason and a
    denial domain are present; the two are mutually exclusive."""
    tb = build_linear_testbed(["A", "B", "C"], hosts_per_domain=1)
    alice = tb.add_user("A", "Alice")
    outcome = tb.reserve(
        alice, source="A", destination="C", bandwidth_mbps=rate
    )
    if outcome.granted:
        assert set(outcome.handles) == {"A", "B", "C"}
        assert outcome.denial_domain is None
        for domain, handle in outcome.handles.items():
            assert tb.brokers[domain].validate_handle(handle)
    else:
        assert outcome.denial_domain is not None
        assert outcome.denial_reason
        # No capacity left booked anywhere.
        for broker in tb.brokers.values():
            for name in broker.admission.resources():
                assert broker.admission.schedule(name).load_at(1.0) == 0.0
