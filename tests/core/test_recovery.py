"""Unit tests for the recovery primitives (retry, deadline, breaker)."""

import random

import pytest

from repro.core.recovery import (
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from repro.errors import CircuitOpenError, DeadlineExceededError


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_backoff_s=0.1, multiplier=2.0, jitter=0.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)

    def test_non_positive_attempt_is_free(self):
        assert RetryPolicy().backoff_s(0) == 0.0

    def test_jitter_is_bounded_and_seed_deterministic(self):
        policy = RetryPolicy(base_backoff_s=0.1, multiplier=2.0, jitter=0.5)
        first = [policy.backoff_s(n, random.Random(42)) for n in (1, 2, 3)]
        second = [policy.backoff_s(n, random.Random(42)) for n in (1, 2, 3)]
        assert first == second
        for attempt, value in enumerate(first, start=1):
            base = 0.1 * 2.0 ** (attempt - 1)
            assert base <= value <= base * 1.5

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        assert policy.backoff_s(1) == pytest.approx(0.1)


class TestDeadline:
    def test_remaining_and_expired(self):
        deadline = Deadline(10.0)
        assert deadline.remaining(4.0) == pytest.approx(6.0)
        assert not deadline.expired(9.999)
        assert deadline.expired(10.0)

    def test_check_raises_with_context(self):
        with pytest.raises(DeadlineExceededError, match="before hop B"):
            Deadline(1.0).check(2.0, what="hop B")
        Deadline(1.0).check(0.5, what="hop B")  # within budget: silent


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        return CircuitBreaker(
            "A|B", BreakerPolicy(failure_threshold=threshold,
                                 reset_timeout_s=reset)
        )

    def test_opens_after_threshold_failures(self):
        breaker = self.make(threshold=3)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError, match="A|B"):
            breaker.check(4.0)

    def test_half_open_probe_after_reset_timeout(self):
        breaker = self.make(threshold=1, reset=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.allow(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_success_closes_failure_reopens_from_half_open(self):
        breaker = self.make(threshold=1, reset=10.0)
        breaker.record_failure(0.0)
        breaker.allow(10.0)  # -> half-open
        breaker.record_failure(10.5)  # one failure reopens immediately
        assert breaker.state == CircuitBreaker.OPEN

        breaker.allow(25.0)  # -> half-open again
        breaker.record_success(25.5)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0

    def test_transitions_recorded(self):
        breaker = self.make(threshold=1, reset=10.0)
        breaker.record_failure(1.0)
        breaker.allow(11.0)
        breaker.record_success(12.0)
        assert [(a, b) for a, b, _ in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
