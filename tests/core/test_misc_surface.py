"""Coverage for remaining public surface: channel accounting, agent
rollback control, codec over replies, testbed conveniences."""

import pytest

from repro.core.codec import from_wire, to_wire
from repro.core.testbed import build_linear_testbed
from repro.errors import SignallingError


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestChannelAccounting:
    def test_message_and_byte_counters(self, testbed, alice):
        testbed.reserve(alice, source="A", destination="C", bandwidth_mbps=1.0)
        ab = testbed.channels.between(
            testbed.brokers["A"].dn, testbed.brokers["B"].dn
        )
        assert ab.messages == 2  # request down, approval up
        assert ab.bytes > 0
        assert testbed.channels.total_messages() == 6
        testbed.channels.reset_counters()
        assert testbed.channels.total_messages() == 0
        assert testbed.channels.total_bytes() == 0

    def test_registry_all(self, testbed):
        assert len(testbed.channels.all()) >= 2


class TestAgentRollbackControl:
    def test_no_rollback_keeps_partial_grants(self, testbed, alice):
        for d in ("B", "C"):
            testbed.introduce_user_to(alice, d)
        testbed.set_policy("C", "Return DENY")
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = testbed.end_to_end_agent.reserve(
            alice, request, concurrent=True, rollback_on_failure=False
        )
        assert not outcome.granted
        # A and B kept their grants (the accidental misreservation case).
        assert set(outcome.handles) == {"A", "B"}
        assert testbed.brokers["B"].admission.schedule("intra").load_at(1.0) == 10.0
        testbed.end_to_end_agent.release(outcome)


class TestCodecOverReplies:
    def test_approval_roundtrip(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=1.0
        )
        back = from_wire(to_wire(outcome.approval))
        assert back == outcome.approval
        from repro.core.tracing import trace_approval_chain

        assert trace_approval_chain(back) == trace_approval_chain(
            outcome.approval
        )

    def test_denial_roundtrip(self, testbed, alice):
        testbed.set_policy("B", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=1.0
        )
        # Rebuild a denial envelope and round-trip it.
        from repro.core.messages import make_denial

        bb = testbed.brokers["B"]
        denial = make_denial(
            domain="B", reason=outcome.denial_reason,
            bb=bb.dn, bb_key=bb.keypair.private,
        )
        back = from_wire(to_wire(denial))
        assert back == denial
        assert back.verify(bb.keypair.public)


class TestTestbedConveniences:
    def test_make_request_host_defaults(self, testbed):
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=1.0
        )
        assert request.source_host == "h0.A"
        assert request.destination_host == "h0.C"

    def test_unknown_domain_user(self, testbed):
        with pytest.raises(SignallingError):
            testbed.add_user("Z", "Nobody")

    def test_set_policy_with_engine_object(self, testbed, alice):
        from repro.policy.engine import Decision, PolicyEngine, Return

        testbed.set_policy(
            "B", PolicyEngine([Return(Decision.DENY, "custom")], name="B")
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=1.0
        )
        assert not outcome.granted
        assert outcome.denial_reason == "custom"

    def test_default_policy_string(self):
        tb = build_linear_testbed(
            ["A", "B"], default_policy="Return DENY",
        )
        user = tb.add_user("A", "U")
        outcome = tb.reserve(user, source="A", destination="B",
                             bandwidth_mbps=1.0)
        assert not outcome.granted

    def test_intra_capacity_derived_from_topology(self, testbed):
        # linear_domain_chain uses 1000 Mb/s intra links.
        assert (
            testbed.brokers["A"].admission.schedule("intra").capacity_mbps
            == 1000.0
        )


class TestSmallSurface:
    def test_channel_registry_add(self, testbed, alice):
        from repro.core.channel import ChannelRegistry, SecureChannel

        registry = ChannelRegistry()
        channel = SecureChannel(alice, testbed.brokers["A"])
        registry.add(channel)
        assert registry.between(alice.dn, testbed.brokers["A"].dn) is channel

    def test_dscp_packs_standalone(self):
        from repro.core.codec import from_wire, to_wire
        from repro.net.packet import DSCP

        assert from_wire(to_wire(DSCP.AF42)) is DSCP.AF42

    def test_cli_plain_agent(self, capsys):
        """The CLI provisions the out-of-band trust Approach 1 needs, so
        the plain sequential agent succeeds."""
        from repro.cli import main

        rc = main(["reserve", "--approach", "agent"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "granted  : True" in out
