"""Scale tests: long domain chains and many concurrent reservations."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.crypto.truststore import TrustPolicy


class TestLongChains:
    def test_thirty_domain_chain(self):
        """A 30-domain path: 29-deep introduction chain, 30 local
        admissions, full capability-free verification at every hop."""
        domains = [f"D{i:02d}" for i in range(30)]
        tb = build_linear_testbed(
            domains, hosts_per_domain=1,
            trust_policy=TrustPolicy(
                max_introduction_depth=40, require_ca_issued_peers=False
            ),
        )
        user = tb.add_user("D00", "Alice")
        outcome = tb.reserve(
            user, source="D00", destination="D29", bandwidth_mbps=1.0
        )
        assert outcome.granted
        assert len(outcome.handles) == 30
        assert outcome.verified.depth == 29
        assert outcome.messages == 60
        # Wire size grows linearly, roughly 30x a single layer.
        assert outcome.final_rar.wire_size() < 80_000

    def test_chain_longer_than_nesting_limit_rejected(self):
        """RAR nesting is bounded at 64 layers as a loop guard."""
        from repro.core.messages import unwrap_rar_layers
        from repro.core.envelope import seal
        from repro.crypto.dn import DN
        from repro.crypto.keys import SimulatedScheme
        import random

        kp = SimulatedScheme().generate(random.Random(1))
        dn = DN.make("Grid", "X", "Y")
        env = seal({"type": "rar"}, signer=dn, key=kp.private)
        for _ in range(70):
            env = seal({"type": "rar", "inner_rar": env}, signer=dn,
                       key=kp.private)
        from repro.errors import SignallingError

        with pytest.raises(SignallingError, match="depth"):
            unwrap_rar_layers(env)


class TestManyReservations:
    def test_two_hundred_reservations_steady_state(self):
        tb = build_linear_testbed(
            ["A", "B", "C"], hosts_per_domain=1, inter_capacity_mbps=10_000.0
        )
        alice = tb.add_user("A", "Alice")
        outcomes = []
        for i in range(200):
            o = tb.reserve(
                alice, source="A", destination="C", bandwidth_mbps=1.0,
                start=float(i), duration=100.0,
            )
            assert o.granted
            outcomes.append(o)
        assert len(tb.brokers["B"].reservations.all()) == 200
        # Cancel half; capacity must track exactly.
        for o in outcomes[::2]:
            tb.hop_by_hop.cancel(o)
        load = tb.brokers["B"].admission.schedule("intra").load_at(150.0)
        expected = sum(
            1.0 for i, o in enumerate(outcomes)
            if i % 2 == 1 and o.verified.request.start <= 150.0
            and o.verified.request.end > 150.0
        )
        assert load == pytest.approx(expected)
