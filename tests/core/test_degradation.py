"""Graceful degradation: tunnel flows fall back to per-flow signalling.

When the direct end-domain channel of an aggregate tunnel fails, the
flow must still get service — via an ordinary hop-by-hop reservation
through the intermediate domains — and that fallback must be tracked
and torn down exactly like a tunnel slice.
"""

import pytest

from repro.bb.reservations import ReservationState
from repro.core.testbed import build_linear_testbed
from repro.errors import TunnelError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, TargetKind


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C", "D"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


@pytest.fixture()
def tunnel(testbed, alice):
    request = testbed.make_request(
        source="A", destination="D", bandwidth_mbps=50.0, duration=7200.0
    )
    tunnel, outcome = testbed.tunnels.establish(alice, request)
    assert outcome.granted
    return tunnel


def break_direct_link(testbed):
    """Persistently drop everything on the A<->D direct channel."""
    testbed.attach_injector(
        FaultInjector(
            FaultPlan(
                (
                    FaultSpec(
                        TargetKind.CHANNEL, "A|D", FaultKind.DROP, ops=None
                    ),
                ),
                seed=1,
            )
        )
    )


class TestTunnelFallback:
    def test_flow_degrades_to_per_flow_reservation(
        self, testbed, alice, tunnel
    ):
        break_direct_link(testbed)
        alloc, latency, messages = testbed.tunnels.allocate_flow(
            tunnel.tunnel_id, alice, 10.0
        )
        assert alloc.via == "per-flow"
        assert alloc.tunnel_id == tunnel.tunnel_id
        # The fallback crossed the intermediate domains: B now carries a
        # 10 Mb/s per-flow booking on top of the 50 Mb/s aggregate.
        assert (
            testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0)
            == 60.0
        )

    def test_fallback_does_not_consume_tunnel_headroom(
        self, testbed, alice, tunnel
    ):
        break_direct_link(testbed)
        testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 10.0)
        # The flow went around the tunnel, so the aggregate is untouched.
        assert tunnel.allocated_mbps(tunnel.start, tunnel.end) == 0.0
        assert tunnel.headroom(tunnel.start, tunnel.end) == 50.0

    def test_healthy_tunnel_never_falls_back(self, testbed, alice, tunnel):
        alloc, _, _ = testbed.tunnels.allocate_flow(
            tunnel.tunnel_id, alice, 10.0
        )
        assert alloc.via == "tunnel"

    def test_release_cancels_the_fallback_reservation(
        self, testbed, alice, tunnel
    ):
        break_direct_link(testbed)
        alloc, _, _ = testbed.tunnels.allocate_flow(
            tunnel.tunnel_id, alice, 10.0
        )
        testbed.detach_injector()
        testbed.tunnels.release_flow(tunnel.tunnel_id, alloc.allocation_id)
        # Only the tunnel aggregate remains booked through B.
        assert (
            testbed.brokers["B"].admission.schedule("ingress:A").load_at(1.0)
            == 50.0
        )
        assert not testbed.brokers["B"].reservations.in_state(
            ReservationState.GRANTED, ReservationState.ACTIVE
        ) or all(
            r.request.rate_mbps == 50.0
            for r in testbed.brokers["B"].reservations.in_state(
                ReservationState.GRANTED, ReservationState.ACTIVE
            )
        )

    def test_teardown_cancels_fallbacks_too(self, testbed, alice, tunnel):
        break_direct_link(testbed)
        testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 10.0)
        testbed.detach_injector()
        testbed.tunnels.teardown(tunnel.tunnel_id)
        broker_b = testbed.brokers["B"]
        for name in broker_b.admission.resources():
            assert broker_b.admission.schedule(name).load_at(1.0) == 0.0

    def test_fallback_denial_surfaces_as_tunnel_error(
        self, testbed, alice, tunnel
    ):
        # Break the direct link AND have an intermediate domain refuse:
        # degradation has nowhere to go and must say so.
        testbed.set_policy("B", "Return DENY")
        break_direct_link(testbed)
        with pytest.raises(TunnelError, match="fallback"):
            testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 10.0)
