"""Tests for transitive-trust verification of nested RARs (paper §6.4).

The fixture builds the paper's exact scenario by hand: user U in domain A,
brokers BB-A, BB-B, BB-C with per-domain CAs, contractual (SLA) trust only
between *adjacent* brokers, and the message chain

    RAR_U = sign_U({res_spec, DN_BBA, caps...})
    RAR_A = sign_BBA({RAR_U, cert_U, DN_BBB, ...})
    RAR_B = sign_BBB({RAR_A, cert_A, DN_BBC, ...})

verified at BB-C, which has no direct trust relationship with BB-A or U.
"""

import random

import pytest

from repro.bb.reservations import ReservationRequest
from repro.core.messages import make_bb_rar, make_user_rar
from repro.core.trust import verify_rar
from repro.crypto.dn import DN
from repro.crypto.keys import RSAScheme, SimulatedScheme
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import CertificateAuthority
from repro.errors import (
    ChainTooDeepError,
    IntroductionError,
    SignallingError,
    TamperedMessageError,
)

ALICE = DN.make("Grid", "A", "Alice")
BB = {d: DN.make("Grid", d, f"BB-{d}") for d in "ABC"}


@pytest.fixture(scope="module")
def world():
    """Keys, certificates, and trust stores for the 3-domain chain."""
    rng = random.Random(42)
    scheme = SimulatedScheme()
    cas = {
        d: CertificateAuthority(DN.make("Grid", d, f"CA-{d}"), rng=rng,
                                scheme="simulated")
        for d in "ABC"
    }
    keys, certs = {}, {}
    for d in "ABC":
        kp, cert = cas[d].issue_keypair(BB[d])
        keys[d] = kp
        certs[d] = cert
    alice_keys, alice_cert = cas["A"].issue_keypair(ALICE)

    stores = {}
    for d in "ABC":
        store = TrustStore(TrustPolicy(require_ca_issued_peers=False))
        store.add_anchor(cas[d].certificate)
        stores[d] = store
    # Contractual trust between adjacent brokers only.
    stores["A"].add_introduced_peer(certs["B"])
    stores["B"].add_introduced_peer(certs["A"])
    stores["B"].add_introduced_peer(certs["C"])
    stores["C"].add_introduced_peer(certs["B"])

    return {
        "keys": keys,
        "certs": certs,
        "stores": stores,
        "alice_keys": alice_keys,
        "alice_cert": alice_cert,
    }


def request():
    return ReservationRequest(
        source_host="h0.A",
        destination_host="h0.C",
        source_domain="A",
        destination_domain="C",
        rate_mbps=10.0,
        start=0.0,
        end=3600.0,
    )


def build_chain(world):
    rar_u = make_user_rar(
        request=request(), source_bb=BB["A"], user=ALICE,
        user_key=world["alice_keys"].private,
    )
    rar_a = make_bb_rar(
        inner=rar_u, introduced_cert=world["alice_cert"], downstream=BB["B"],
        bb=BB["A"], bb_key=world["keys"]["A"].private,
    )
    rar_b = make_bb_rar(
        inner=rar_a, introduced_cert=world["certs"]["A"], downstream=BB["C"],
        bb=BB["B"], bb_key=world["keys"]["B"].private,
    )
    return rar_u, rar_a, rar_b


class TestHappyPath:
    def test_destination_verifies_full_chain(self, world):
        _, _, rar_b = build_chain(world)
        result = verify_rar(
            rar_b,
            verifier=BB["C"],
            peer_certificate=world["certs"]["B"],
            truststore=world["stores"]["C"],
        )
        assert result.user == ALICE
        assert result.request.rate_mbps == 10.0
        assert result.path == (ALICE, BB["A"], BB["B"])
        assert result.depth == 2
        assert result.user_certificate == world["alice_cert"]
        # Introductions seen: cert_A (by BB_B) and cert_U (by BB_A).
        assert {c.subject for c in result.introduced} == {ALICE, BB["A"]}

    def test_intermediate_verifies_shorter_chain(self, world):
        _, rar_a, _ = build_chain(world)
        result = verify_rar(
            rar_a,
            verifier=BB["B"],
            peer_certificate=world["certs"]["A"],
            truststore=world["stores"]["B"],
        )
        assert result.path == (ALICE, BB["A"])
        assert result.depth == 1

    def test_source_verifies_user_rar(self, world):
        rar_u, _, _ = build_chain(world)
        result = verify_rar(
            rar_u,
            verifier=BB["A"],
            peer_certificate=world["alice_cert"],
            truststore=world["stores"]["A"],
        )
        assert result.path == (ALICE,)
        assert result.depth == 0
        assert result.user_certificate is None


class TestTamperDetection:
    def test_modified_res_spec_detected(self, world):
        rar_u, _, _ = build_chain(world)
        bigger = request().with_attributes(note="x")
        forged_u = rar_u.with_tampered_field("res_spec", bigger)
        # Rebuild the outer layers around the forged inner one (an on-path
        # BB_B trying to alter the user's request).
        rar_a = make_bb_rar(
            inner=forged_u, introduced_cert=world["alice_cert"],
            downstream=BB["B"], bb=BB["A"], bb_key=world["keys"]["A"].private,
        )
        rar_b = make_bb_rar(
            inner=rar_a, introduced_cert=world["certs"]["A"], downstream=BB["C"],
            bb=BB["B"], bb_key=world["keys"]["B"].private,
        )
        with pytest.raises(TamperedMessageError):
            verify_rar(
                rar_b, verifier=BB["C"],
                peer_certificate=world["certs"]["B"],
                truststore=world["stores"]["C"],
            )

    def test_outer_tamper_detected(self, world):
        _, _, rar_b = build_chain(world)
        forged = rar_b.with_tampered_field("downstream_dn", BB["C"])
        # Same value, but payload tuple rebuilt -> same; use different field.
        forged = rar_b.with_tampered_field("assertions", ("evil",))
        with pytest.raises(TamperedMessageError):
            verify_rar(
                forged, verifier=BB["C"],
                peer_certificate=world["certs"]["B"],
                truststore=world["stores"]["C"],
            )

    def test_wrong_peer_claimed(self, world):
        _, _, rar_b = build_chain(world)
        with pytest.raises(IntroductionError, match="channel peer"):
            verify_rar(
                rar_b, verifier=BB["C"],
                peer_certificate=world["certs"]["A"],  # not the actual signer
                truststore=world["stores"]["C"],
            )

    def test_untrusted_peer(self, world):
        _, _, rar_b = build_chain(world)
        empty_store = TrustStore(TrustPolicy(require_ca_issued_peers=False))
        with pytest.raises(IntroductionError, match="not.*directly trusted"):
            verify_rar(
                rar_b, verifier=BB["C"],
                peer_certificate=world["certs"]["B"],
                truststore=empty_store,
            )

    def test_misaddressed_message(self, world):
        _, rar_a, _ = build_chain(world)
        # BB_C receives a message addressed to BB_B.
        store = world["stores"]["C"]
        store.add_introduced_peer(world["certs"]["A"])
        try:
            with pytest.raises(IntroductionError, match="addressed"):
                verify_rar(
                    rar_a, verifier=BB["C"],
                    peer_certificate=world["certs"]["A"],
                    truststore=store,
                )
        finally:
            store._peers.pop(BB["A"], None)

    def test_missing_introduction(self, world):
        rar_u, _, _ = build_chain(world)
        # BB_A "forgets" to introduce the user certificate.
        rar_a = make_bb_rar(
            inner=rar_u, introduced_cert=world["alice_cert"], downstream=BB["B"],
            bb=BB["A"], bb_key=world["keys"]["A"].private,
        )
        stripped = rar_a.with_tampered_field("introduced_cert", None)
        # Re-sign so only the introduction is missing, not the signature.
        from repro.core.envelope import seal

        payload = {k: stripped.get(k) for k in stripped.keys()}
        payload["introduced_cert"] = None
        resigned = seal(payload, signer=BB["A"], key=world["keys"]["A"].private)
        with pytest.raises(IntroductionError, match="introduces no certificate"):
            verify_rar(
                resigned, verifier=BB["B"],
                peer_certificate=world["certs"]["A"],
                truststore=world["stores"]["B"],
            )

    def test_substituted_user_key_detected(self, world):
        """BB_A introduces a certificate for a *different* key than the one
        that signed the user RAR: signature check must fail."""
        rng = random.Random(7)
        mallory_keys = SimulatedScheme().generate(rng)
        rar_u = make_user_rar(
            request=request(), source_bb=BB["A"], user=ALICE,
            user_key=mallory_keys.private,  # signed with Mallory's key
        )
        rar_a = make_bb_rar(
            inner=rar_u, introduced_cert=world["alice_cert"],  # Alice's real cert
            downstream=BB["B"], bb=BB["A"], bb_key=world["keys"]["A"].private,
        )
        with pytest.raises(TamperedMessageError):
            verify_rar(
                rar_a, verifier=BB["B"],
                peer_certificate=world["certs"]["A"],
                truststore=world["stores"]["B"],
            )


class TestPolicyKnobs:
    def test_depth_limit_enforced(self, world):
        _, _, rar_b = build_chain(world)
        strict = TrustStore(
            TrustPolicy(max_introduction_depth=1, require_ca_issued_peers=False)
        )
        strict.add_introduced_peer(world["certs"]["B"])
        with pytest.raises(ChainTooDeepError):
            verify_rar(
                rar_b, verifier=BB["C"],
                peer_certificate=world["certs"]["B"],
                truststore=strict,
            )

    def test_depth_2_sufficient(self, world):
        _, _, rar_b = build_chain(world)
        ok = TrustStore(
            TrustPolicy(max_introduction_depth=2, require_ca_issued_peers=False)
        )
        ok.add_introduced_peer(world["certs"]["B"])
        assert verify_rar(
            rar_b, verifier=BB["C"],
            peer_certificate=world["certs"]["B"],
            truststore=ok,
        ).depth == 2

    def test_secure_scheme_policy(self, world):
        """An RSA-only verifier rejects simulated-scheme chains."""
        _, _, rar_b = build_chain(world)
        strict = TrustStore(
            TrustPolicy(require_secure_scheme=True, require_ca_issued_peers=False)
        )
        strict.add_introduced_peer(world["certs"]["B"])
        with pytest.raises(IntroductionError, match="scheme"):
            verify_rar(
                rar_b, verifier=BB["C"],
                peer_certificate=world["certs"]["B"],
                truststore=strict,
            )


class TestRSAEndToEnd:
    def test_full_chain_with_real_rsa(self, keypool):
        """The whole transitive-trust walk with genuine RSA signatures."""
        rng = random.Random(3)
        ca = CertificateAuthority(
            DN.make("Grid", "A", "CA"), keypair=keypool[0], scheme="rsa"
        )
        alice_kp = keypool[1]
        alice_cert = ca.issue(ALICE, alice_kp.public)
        bb_a_kp = keypool[2]
        bb_a_cert = ca.issue(BB["A"], bb_a_kp.public)
        bb_b_kp = keypool[3]
        bb_b_cert = ca.issue(BB["B"], bb_b_kp.public)

        rar_u = make_user_rar(
            request=request(), source_bb=BB["A"], user=ALICE,
            user_key=alice_kp.private,
        )
        rar_a = make_bb_rar(
            inner=rar_u, introduced_cert=alice_cert, downstream=BB["B"],
            bb=BB["A"], bb_key=bb_a_kp.private,
        )
        store = TrustStore(TrustPolicy(require_ca_issued_peers=False))
        store.add_introduced_peer(bb_a_cert)
        result = verify_rar(
            rar_a, verifier=BB["B"], peer_certificate=bb_a_cert,
            truststore=store,
        )
        assert result.user == ALICE
