"""Tests for scheduled activation of advance reservations."""

import pytest

from repro.bb.reservations import ReservationState
from repro.core.testbed import build_linear_testbed
from repro.errors import SignallingError
from repro.net.packet import DSCP


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestScheduledActivation:
    def test_claims_at_start_and_expires_at_end(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            start=100.0, duration=200.0,
            attributes=(("flow_id", "adv"),),
        )
        testbed.schedule_activation(outcome)
        resv_b = testbed.brokers["B"].reservations.get(outcome.handles["B"])

        testbed.sim.run(until=99.0)
        assert resv_b.state is ReservationState.GRANTED
        assert testbed.network.flow_policer("core.A", "adv") is None

        testbed.sim.run(until=150.0)
        assert resv_b.state is ReservationState.ACTIVE
        assert testbed.network.flow_policer("core.A", "adv") is not None
        agg = testbed.network.aggregate_policer("edge.C.left", DSCP.EF)
        assert agg is not None and agg.bucket.rate_bps == 10e6

        testbed.sim.run(until=301.0)
        assert resv_b.state is ReservationState.CANCELLED
        assert testbed.network.flow_policer("core.A", "adv") is None
        agg = testbed.network.aggregate_policer("edge.C.left", DSCP.EF)
        assert agg.bucket.rate_bps == 0.0

    def test_capacity_freed_after_expiry(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=150.0,
            start=0.0, duration=100.0,
        )
        testbed.schedule_activation(outcome)
        testbed.sim.run(until=200.0)
        # The window passed; a new full-rate reservation starting now fits.
        second = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=150.0,
            start=200.0, duration=100.0,
        )
        assert second.granted

    def test_window_already_open_claims_immediately(self, testbed, alice):
        testbed.sim.run(until=500.0)
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            start=400.0, duration=300.0,
            attributes=(("flow_id", "late"),),
        )
        testbed.schedule_activation(outcome)
        testbed.sim.run(until=501.0)
        assert testbed.network.flow_policer("core.A", "late") is not None

    def test_denied_outcome_rejected(self, testbed, alice):
        testbed.set_policy("B", "Return DENY")
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        with pytest.raises(SignallingError):
            testbed.schedule_activation(outcome)

    def test_manual_cancel_before_start_is_safe(self, testbed, alice):
        """Cancelling before the window opens must not blow up the
        scheduled claim: the claim event sees the cancelled state and
        does nothing."""
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            start=100.0, duration=100.0,
        )
        testbed.schedule_activation(outcome)
        testbed.hop_by_hop.cancel(outcome)
        testbed.sim.run(until=300.0)  # must not raise
        resv = testbed.brokers["A"].reservations.get(outcome.handles["A"])
        assert resv.state is ReservationState.CANCELLED
