"""Adversarial tests: on-path tampering, revocation, depth policy — the
protocol under attack rather than in the happy path."""

import pytest

from repro.core.envelope import seal
from repro.core.messages import F_RES_SPEC
from repro.core.testbed import build_linear_testbed
from repro.crypto.truststore import TrustPolicy
from repro.errors import HandshakeError


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestOnPathTampering:
    def test_tampered_rate_detected_downstream(self, testbed, alice):
        """An on-path attacker between B and C inflates the reserved rate;
        C's transitive-trust verification must catch it and deny."""
        channel = testbed.channels.between(
            testbed.brokers["B"].dn, testbed.brokers["C"].dn
        )

        def inflate(message):
            spec = message.get(F_RES_SPEC)
            if spec is None:
                # An inner RAR holds the spec; tamper with the inner layer.
                inner = message.get("inner_rar")
                if inner is not None:
                    forged_inner = inflate(inner)
                    return message.with_tampered_field("inner_rar", forged_inner)
                return message
            bigger = spec.with_attributes(injected=True)
            return message.with_tampered_field(F_RES_SPEC, bigger)

        channel.tamper_hook = inflate
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "C"
        assert "trust verification failed" in outcome.denial_reason
        # The partial path (A, B) was rolled back.
        assert testbed.brokers["A"].admission.schedule("egress:B").load_at(1.0) == 0.0

    def test_replaced_envelope_rejected(self, testbed, alice):
        """The attacker substitutes a wholly self-made message: the outer
        signature no longer matches the channel peer."""
        mallory_key = testbed.brokers["A"].keypair  # reuse a key object shape
        channel = testbed.channels.between(
            testbed.brokers["A"].dn, testbed.brokers["B"].dn
        )

        def replace(message):
            return seal(
                {"type": "rar", "res_spec": None},
                signer=alice.dn,
                key=alice.keypair.private,
            )

        channel.tamper_hook = replace
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "B"

    def test_tampering_before_source_bb_detected(self, testbed, alice):
        channel = testbed.channels.between(alice.dn, testbed.brokers["A"].dn)

        def shrink_rate(message):
            if not hasattr(message, "with_tampered_field"):
                return message
            spec = message.get(F_RES_SPEC)
            if spec is None:
                return message
            return message.with_tampered_field(
                F_RES_SPEC, spec.with_attributes(smuggled=True)
            )

        channel.tamper_hook = shrink_rate
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "A"


class TestRevocation:
    def test_revoked_user_cannot_reserve(self, testbed, alice):
        ca = testbed.domain_cas["A"]
        bb_a = testbed.brokers["A"]
        bb_a.truststore.add_revocation_checker(ca.is_revoked)
        ca.revoke(alice.certificate.serial)
        # The user channel already exists; verification consults the
        # trust store again and must now refuse the peer certificate.
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        assert outcome.denial_domain == "A"
        assert "not directly trusted" in outcome.denial_reason

    def test_unrevoked_user_unaffected(self, testbed, alice):
        ca = testbed.domain_cas["A"]
        testbed.brokers["A"].truststore.add_revocation_checker(ca.is_revoked)
        bob = testbed.add_user("A", "Bob")
        ca.revoke(bob.certificate.serial)
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted

    def test_revoked_peer_blocks_new_channels(self, testbed):
        ca = testbed.domain_cas["B"]
        bb_b = testbed.brokers["B"]
        bb_c = testbed.brokers["C"]
        bb_c.truststore.add_revocation_checker(ca.is_revoked)
        # C currently trusts B's certificate contractually; after B's CA
        # revokes it, a fresh handshake must fail.
        ca.revoke(bb_b.certificate.serial)
        # Simulate a re-handshake by removing the cached peer entry.
        bb_c.truststore._peers.pop(bb_b.dn)
        from repro.core.channel import SecureChannel

        with pytest.raises(HandshakeError):
            SecureChannel(bb_c, bb_b)


class TestDepthPolicyEndToEnd:
    def test_strict_destination_rejects_long_chain(self, alice=None):
        """A 5-domain chain with a destination whose trust policy caps the
        introduction depth at 2: the request dies at the destination."""
        tb = build_linear_testbed(
            ["A", "B", "C", "D", "E"],
            trust_policy=TrustPolicy(
                max_introduction_depth=2, require_ca_issued_peers=False
            ),
        )
        user = tb.add_user("A", "Alice")
        outcome = tb.reserve(
            user, source="A", destination="E", bandwidth_mbps=1.0
        )
        assert not outcome.granted
        # Depth 2 allows verification at C (user at depth 2) but D already
        # sees depth 3.
        assert outcome.denial_domain == "D"
        assert "depth" in outcome.denial_reason

    def test_relaxed_policy_accepts(self):
        tb = build_linear_testbed(
            ["A", "B", "C", "D", "E"],
            trust_policy=TrustPolicy(
                max_introduction_depth=4, require_ca_issued_peers=False
            ),
        )
        user = tb.add_user("A", "Alice")
        outcome = tb.reserve(
            user, source="A", destination="E", bandwidth_mbps=1.0
        )
        assert outcome.granted


class TestChannelHygiene:
    def test_endpointless_transmit_rejected(self, testbed, alice):
        from repro.errors import ChannelError

        channel = testbed.channels.between(
            testbed.brokers["A"].dn, testbed.brokers["B"].dn
        )
        with pytest.raises(ChannelError):
            channel.transmit(alice.dn, "hi")
        with pytest.raises(ChannelError):
            channel.peer_certificate(alice.dn)

    def test_channel_without_certificates_rejected(self, testbed, alice):
        from repro.core.agent import UserAgent
        from repro.core.channel import SecureChannel

        bare = UserAgent(
            "/O=Grid/OU=A/CN=Bare", "A", scheme="simulated"
        )
        with pytest.raises(HandshakeError):
            SecureChannel(bare, testbed.brokers["A"])
