"""Tests for Approach 1 (source-domain signalling) and the STARS
coordinator — including the trust-scaling flaw and Figure 4 misreservation."""

import pytest

from repro.bb.reservations import ReservationState
from repro.core.testbed import build_linear_testbed


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"])


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestEndToEndAgent:
    def test_fails_without_remote_trust(self, testbed, alice):
        """The paper's first flaw: every BB must know (authenticate) Alice.
        With trust only in her home domain, the attempt dies at B."""
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = testbed.end_to_end_agent.reserve(alice, request)
        assert not outcome.granted
        assert not outcome.complete
        assert "no trust relationship" in outcome.failures["B"]

    def test_succeeds_with_universal_trust(self, testbed, alice):
        for domain in ("B", "C"):
            testbed.introduce_user_to(alice, domain)
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = testbed.end_to_end_agent.reserve(alice, request)
        assert outcome.granted and outcome.complete
        assert set(outcome.handles) == {"A", "B", "C"}

    def test_concurrent_latency_is_max(self, testbed, alice):
        for domain in ("B", "C"):
            testbed.introduce_user_to(alice, domain)
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        seq = testbed.end_to_end_agent.reserve(alice, request)
        testbed.end_to_end_agent.release(seq)
        par = testbed.end_to_end_agent.reserve(alice, request, concurrent=True)
        assert par.granted
        assert par.latency_s < seq.latency_s
        # §3: "reservations for each domain can be made in parallel".
        assert par.latency_s == pytest.approx(
            max(
                2 * 0.001 + 0.001,  # home channel RTT + processing
                2 * 0.005 + 0.001,  # remote channel RTT + processing
            )
        )

    def test_sequential_stops_at_first_failure(self, testbed, alice):
        testbed.introduce_user_to(alice, "B")
        testbed.introduce_user_to(alice, "C")
        testbed.set_policy("B", "Return DENY")
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = testbed.end_to_end_agent.reserve(alice, request)
        assert not outcome.granted
        assert "C" not in outcome.failures  # never contacted
        assert outcome.handles == {}  # A rolled back

    def test_rollback_releases_capacity(self, testbed, alice):
        testbed.introduce_user_to(alice, "B")
        testbed.introduce_user_to(alice, "C")
        testbed.set_policy("C", "Return DENY")
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        testbed.end_to_end_agent.reserve(alice, request)
        assert testbed.brokers["A"].admission.schedule("egress:B").load_at(1.0) == 0.0
        assert testbed.brokers["B"].admission.schedule("intra").load_at(1.0) == 0.0


class TestMisreservation:
    """Figure 4: David reserves in his domains but skips the destination."""

    def test_skip_destination_yields_incomplete_grant(self, testbed):
        david = testbed.add_user("A", "David")
        testbed.introduce_user_to(david, "B")
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = testbed.end_to_end_agent.reserve(
            david, request, skip_domains={"C"}
        )
        # Nothing failed -- but the reservation is NOT complete.
        assert outcome.granted
        assert not outcome.complete
        assert set(outcome.handles) == {"A", "B"}
        assert outcome.skipped == ("C",)

    def test_claimed_misreservation_configures_partial_path(self, testbed):
        david = testbed.add_user("A", "David")
        testbed.introduce_user_to(david, "B")
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0,
            attributes=(("flow_id", "david-flow"),),
        )
        outcome = testbed.end_to_end_agent.reserve(
            david, request, skip_domains={"C"}
        )
        testbed.end_to_end_agent.claim(outcome)
        from repro.net.packet import DSCP

        # B's ingress admits David's traffic...
        assert testbed.network.aggregate_policer(
            "edge.B.left", DSCP.EF
        ).bucket.rate_bps == 10e6
        # ...but C's ingress was never told about him.
        agg_c = testbed.network.aggregate_policer("edge.C.left", DSCP.EF)
        assert agg_c is None or agg_c.bucket.rate_bps == 0.0

    def test_hop_by_hop_makes_misreservation_impossible(self, testbed):
        """Approach 2 structurally prevents skipping a domain: the request
        reaches C through B or not at all."""
        david = testbed.add_user("A", "David")
        testbed.set_policy("C", "Return DENY")  # C would refuse David
        outcome = testbed.reserve(
            david, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        # Nothing stays reserved anywhere.
        for domain in "AB":
            resv = testbed.brokers[domain].reservations.get(
                outcome.handles[domain]
            )
            assert resv.state is ReservationState.CANCELLED


class TestCoordinator:
    def test_rc_reserves_for_unknown_user(self, testbed, alice):
        """STARS: brokers need not know Alice — they trust the RC."""
        rc = testbed.coordinator("A")
        rc.enroll_user(alice)
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = rc.reserve(alice, request)
        assert outcome.granted and outcome.complete
        # The reservations are owned by Alice, not the RC.
        for domain in "ABC":
            resv = testbed.brokers[domain].reservations.get(
                outcome.handles[domain]
            )
            assert resv.owner == alice.dn

    def test_unenrolled_user_rejected(self, testbed, alice):
        rc = testbed.coordinator("A")
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = rc.reserve(alice, request)
        assert not outcome.granted
        assert "not enrolled" in outcome.failures["A"]

    def test_rc_rolls_back_on_denial(self, testbed, alice):
        rc = testbed.coordinator("A")
        rc.enroll_user(alice)
        testbed.set_policy("C", "Return DENY")
        request = testbed.make_request(
            source="A", destination="C", bandwidth_mbps=10.0
        )
        outcome = rc.reserve(alice, request)
        assert not outcome.granted
        assert outcome.handles == {}
        assert testbed.brokers["A"].admission.schedule("egress:B").load_at(1.0) == 0.0

    def test_rc_is_reused(self, testbed):
        assert testbed.coordinator("A") is testbed.coordinator("A")
