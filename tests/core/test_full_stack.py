"""Full-stack integration: signalling -> claim -> packets -> billing.

These tests exercise the entire layer cake in one scenario each, the way
a downstream user of the library would."""

import random

import pytest

from repro.accounting.billing import TransitiveBilling
from repro.bb.sla import SLS
from repro.core.testbed import build_linear_testbed
from repro.net.flows import FlowSpec
from repro.net.packet import DSCP
from repro.net.trafficgen import CBRSource, PoissonSource


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B", "C"], inter_capacity_mbps=50.0)


@pytest.fixture()
def alice(testbed):
    return testbed.add_user("A", "Alice")


class TestReserveClaimRun:
    def test_reserved_flow_gets_its_bandwidth_under_congestion(
        self, testbed, alice
    ):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=20.0,
            attributes=(("flow_id", "paid"),),
        )
        testbed.hop_by_hop.claim(outcome)
        CBRSource(
            testbed.network,
            FlowSpec("paid", "h0.A", "h0.C", 19.0, dscp=DSCP.EF),
            stop_time=1.0,
        ).start()
        PoissonSource(
            testbed.network,
            FlowSpec("noise", "h1.A", "h1.C", 60.0),
            rng=random.Random(3),
            stop_time=1.0,
        ).start()
        testbed.sim.run()
        paid = testbed.network.stats_for("paid")
        noise = testbed.network.stats_for("noise")
        assert paid.delivery_ratio > 0.99
        assert paid.goodput_mbps(1.0) == pytest.approx(19.0, rel=0.05)
        assert noise.loss_ratio > 0.3  # the flood eats the loss

    def test_unclaimed_reservation_gives_no_priority(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=20.0,
            attributes=(("flow_id", "paid"),),
        )
        # NOT claimed: the data plane knows nothing about it.
        CBRSource(
            testbed.network,
            FlowSpec("paid", "h0.A", "h0.C", 19.0, dscp=DSCP.EF),
            stop_time=1.0,
        ).start()
        testbed.sim.run()
        paid = testbed.network.stats_for("paid")
        # Marks are stripped at the first hop (no policer installed).
        assert paid.downgraded_packets == paid.sent_packets

    def test_cancel_withdraws_priority(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=20.0,
            attributes=(("flow_id", "paid"),),
        )
        testbed.hop_by_hop.claim(outcome)
        testbed.hop_by_hop.cancel(outcome)
        CBRSource(
            testbed.network,
            FlowSpec("paid", "h0.A", "h0.C", 19.0, dscp=DSCP.EF),
            stop_time=0.5,
        ).start()
        testbed.sim.run()
        paid = testbed.network.stats_for("paid")
        assert paid.downgraded_packets == paid.sent_packets

    def test_usage_based_billing_from_measured_traffic(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=20.0,
            attributes=(("flow_id", "paid"),),
        )
        testbed.hop_by_hop.claim(outcome)
        CBRSource(
            testbed.network,
            FlowSpec("paid", "h0.A", "h0.C", 10.0, dscp=DSCP.EF),
            stop_time=1.0,
        ).start()
        testbed.sim.run()
        stats = testbed.network.stats_for("paid")
        # Mediation: bill the *measured* usage, not the reserved profile.
        usage_mbps_hours = stats.delivered_bits / 1e6 / 3600.0
        billing = TransitiveBilling(testbed.brokers)
        run = billing.bill(outcome, usage_mbps_hours=usage_mbps_hours)
        assert TransitiveBilling.conservation_holds(run)
        assert run.usage_mbps_hours == pytest.approx(10.0 / 3600.0, rel=0.05)


class TestMultiClassService:
    def test_af_request_without_af_sla_denied(self, testbed, alice):
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=5.0,
            service_class=DSCP.AF41,
        )
        assert not outcome.granted
        assert "covers no AF41" in outcome.denial_reason

    def test_af_class_end_to_end(self, testbed, alice):
        # Extend every SLA with an AF41 specification.
        for broker in testbed.brokers.values():
            for sla in list(broker.slas_in.values()) + list(broker.slas_out.values()):
                sla.slss[DSCP.AF41] = SLS(
                    service_class=DSCP.AF41, max_rate_mbps=40.0,
                    excess_treatment="downgrade",
                )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0,
            service_class=DSCP.AF41,
            attributes=(("flow_id", "af-flow"),),
        )
        assert outcome.granted, outcome.denial_reason
        testbed.hop_by_hop.claim(outcome)
        # The edge marks AF41 and the ingress aggregates are per class.
        policer = testbed.network.flow_policer("core.A", "af-flow")
        assert policer.mark is DSCP.AF41
        agg = testbed.network.aggregate_policer("edge.B.left", DSCP.AF41)
        assert agg is not None and agg.bucket.rate_bps == 10e6
        # EF aggregate unchanged (zero).
        ef_agg = testbed.network.aggregate_policer("edge.B.left", DSCP.EF)
        assert ef_agg is None or ef_agg.bucket.rate_bps == 0.0

    def test_ef_outranks_af_under_congestion(self, testbed, alice):
        for broker in testbed.brokers.values():
            for sla in list(broker.slas_in.values()) + list(broker.slas_out.values()):
                sla.slss[DSCP.AF41] = SLS(
                    service_class=DSCP.AF41, max_rate_mbps=45.0
                )
        ef = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=30.0,
            attributes=(("flow_id", "ef"),),
        )
        af = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=19.0,
            service_class=DSCP.AF41,
            source_host="h1.A", destination_host="h1.C",
            attributes=(("flow_id", "af"),),
        )
        testbed.hop_by_hop.claim(ef)
        testbed.hop_by_hop.claim(af)
        # Offered: 30 EF + 19 AF + 20 BE over a 50 Mb/s link.
        CBRSource(testbed.network,
                  FlowSpec("ef", "h0.A", "h0.C", 29.0, dscp=DSCP.EF),
                  stop_time=1.0).start()
        CBRSource(testbed.network,
                  FlowSpec("af", "h1.A", "h1.C", 18.0, dscp=DSCP.AF41),
                  stop_time=1.0).start()
        PoissonSource(testbed.network,
                      FlowSpec("be", "h0.A", "h1.C", 20.0),
                      rng=random.Random(4), stop_time=1.0).start()
        testbed.sim.run()
        ef_stats = testbed.network.stats_for("ef")
        af_stats = testbed.network.stats_for("af")
        be_stats = testbed.network.stats_for("be")
        assert ef_stats.delivery_ratio > 0.99
        assert af_stats.delivery_ratio > 0.95
        assert be_stats.delivery_ratio < 0.6
        # Queueing delay ordering: EF <= AF (strict priority).
        assert ef_stats.mean_delay_s <= af_stats.mean_delay_s + 1e-4


class TestMultiCommunity:
    def test_two_communities_verified_independently(self, testbed, alice):
        """Alice holds capabilities from two CAS communities; a destination
        policy requiring either one is satisfied, and the verified issuer
        set contains both."""
        esnet = testbed.add_cas("ESnet")
        geant = testbed.add_cas("GEANT")
        for cas in (esnet, geant):
            cas.grant(alice.dn, ["member"])
            alice.grid_login(cas, validity_s=10 * 24 * 3600.0)
        testbed.set_policy(
            "C",
            "If Issued_by(Capability) = GEANT\n    Return GRANT\nReturn DENY",
        )
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=5.0
        )
        assert outcome.granted, outcome.denial_reason
        # Both communities' chains travelled and verified.
        chain_issuers = {c.issuer for c in outcome.verified.capability_chain}
        assert esnet.name in chain_issuers
        assert geant.name in chain_issuers


class TestServiceQuality:
    def test_ef_jitter_below_be_under_load(self, testbed, alice):
        """EF's strict-priority service shows visibly lower delay jitter
        than best effort on a congested path."""
        outcome = testbed.reserve(
            alice, source="A", destination="C", bandwidth_mbps=20.0,
            attributes=(("flow_id", "ef"),),
        )
        testbed.hop_by_hop.claim(outcome)
        CBRSource(
            testbed.network,
            FlowSpec("ef", "h0.A", "h0.C", 19.0, dscp=DSCP.EF),
            stop_time=1.0,
        ).start()
        PoissonSource(
            testbed.network,
            FlowSpec("be", "h1.A", "h1.C", 45.0),
            rng=random.Random(8),
            stop_time=1.0,
        ).start()
        testbed.sim.run()
        ef = testbed.network.stats_for("ef")
        be = testbed.network.stats_for("be")
        assert ef.jitter_s() < be.jitter_s()
        assert ef.delay_percentiles((99.0,))[99.0] < \
            be.delay_percentiles((99.0,))[99.0]
