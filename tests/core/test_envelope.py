"""Tests for signed envelopes and RAR message construction."""

import pytest

from repro.bb.reservations import ReservationRequest
from repro.core.envelope import seal
from repro.core.messages import (
    F_DOMAIN,
    F_DOWNSTREAM,
    F_INNER,
    F_REASON,
    F_RES_SPEC,
    make_approval,
    make_bb_rar,
    make_denial,
    make_user_rar,
    unwrap_rar_layers,
)
from repro.crypto.dn import DN
from repro.crypto.keys import SimulatedScheme
from repro.crypto.x509 import sign_certificate
from repro.errors import SignallingError, TamperedMessageError

SCHEME = SimulatedScheme()
ALICE = DN.make("Grid", "A", "Alice")
BB_A = DN.make("Grid", "A", "BB-A")
BB_B = DN.make("Grid", "B", "BB-B")
BB_C = DN.make("Grid", "C", "BB-C")


def request():
    return ReservationRequest(
        source_host="h0.A",
        destination_host="h0.C",
        source_domain="A",
        destination_domain="C",
        rate_mbps=10.0,
        start=0.0,
        end=3600.0,
    )


@pytest.fixture()
def keys(rng):
    return {name: SCHEME.generate(rng) for name in ("alice", "bb_a", "bb_b")}


class TestSignedEnvelope:
    def test_seal_and_verify(self, keys):
        env = seal({"x": 1, "y": "two"}, signer=ALICE, key=keys["alice"].private)
        assert env.verify(keys["alice"].public)
        assert env["x"] == 1
        assert env.get("z", "d") == "d"
        assert set(env.keys()) == {"x", "y"}
        with pytest.raises(KeyError):
            env["z"]

    def test_wrong_key_fails(self, keys):
        env = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        assert not env.verify(keys["bb_a"].public)

    def test_tampered_field_fails(self, keys):
        env = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        forged = env.with_tampered_field("x", 2)
        assert not forged.verify(keys["alice"].public)
        with pytest.raises(TamperedMessageError):
            forged.require_valid(keys["alice"].public)

    def test_added_field_fails(self, keys):
        env = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        forged = env.with_tampered_field("evil", True)
        assert not forged.verify(keys["alice"].public)

    def test_nested_envelope_signed(self, keys):
        inner = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        outer = seal({"inner": inner}, signer=BB_A, key=keys["bb_a"].private)
        assert outer.verify(keys["bb_a"].public)
        # Tampering the inner invalidates the outer.
        forged_inner = inner.with_tampered_field("x", 2)
        forged_outer = outer.with_tampered_field("inner", forged_inner)
        assert not forged_outer.verify(keys["bb_a"].public)

    def test_wire_size_positive_and_monotone(self, keys):
        small = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        big = seal({"x": "a" * 1000}, signer=ALICE, key=keys["alice"].private)
        assert 0 < small.wire_size() < big.wire_size()

    def test_complex_payload_values(self, keys):
        env = seal(
            {"req": request(), "names": (BB_A, BB_B)},
            signer=ALICE,
            key=keys["alice"].private,
        )
        assert env.verify(keys["alice"].public)


class TestRARConstruction:
    def test_user_rar_fields(self, keys):
        rar = make_user_rar(
            request=request(),
            source_bb=BB_A,
            user=ALICE,
            user_key=keys["alice"].private,
        )
        assert rar.signer == ALICE
        assert rar[F_DOWNSTREAM] == BB_A
        assert rar[F_RES_SPEC].rate_mbps == 10.0
        assert rar.verify(keys["alice"].public)

    def test_bb_rar_wraps(self, keys):
        rar_u = make_user_rar(
            request=request(), source_bb=BB_A, user=ALICE,
            user_key=keys["alice"].private,
        )
        alice_cert = sign_certificate(
            serial=1, issuer=DN.make("Grid", "A", "CA"), subject=ALICE,
            public_key=keys["alice"].public, signing_key=keys["bb_a"].private,
        )
        rar_a = make_bb_rar(
            inner=rar_u,
            introduced_cert=alice_cert,
            downstream=BB_B,
            bb=BB_A,
            bb_key=keys["bb_a"].private,
        )
        assert rar_a.signer == BB_A
        assert rar_a[F_INNER] is rar_u
        assert rar_a.verify(keys["bb_a"].public)

    def test_bb_rar_rejects_mismatched_introduction(self, keys):
        rar_u = make_user_rar(
            request=request(), source_bb=BB_A, user=ALICE,
            user_key=keys["alice"].private,
        )
        wrong_cert = sign_certificate(
            serial=1, issuer=DN.make("Grid", "A", "CA"), subject=BB_B,
            public_key=keys["bb_b"].public, signing_key=keys["bb_a"].private,
        )
        with pytest.raises(SignallingError, match="introduced certificate"):
            make_bb_rar(
                inner=rar_u, introduced_cert=wrong_cert, downstream=BB_B,
                bb=BB_A, bb_key=keys["bb_a"].private,
            )

    def test_bb_rar_rejects_non_rar_inner(self, keys):
        denial = make_denial(
            domain="B", reason="no", bb=BB_B, bb_key=keys["bb_b"].private
        )
        cert = sign_certificate(
            serial=1, issuer=DN.make("Grid", "B", "CA"), subject=BB_B,
            public_key=keys["bb_b"].public, signing_key=keys["bb_b"].private,
        )
        with pytest.raises(SignallingError, match="not a RAR"):
            make_bb_rar(
                inner=denial, introduced_cert=cert, downstream=BB_C,
                bb=BB_B, bb_key=keys["bb_b"].private,
            )

    def test_unwrap_layers(self, keys):
        rar_u = make_user_rar(
            request=request(), source_bb=BB_A, user=ALICE,
            user_key=keys["alice"].private,
        )
        alice_cert = sign_certificate(
            serial=1, issuer=DN.make("Grid", "A", "CA"), subject=ALICE,
            public_key=keys["alice"].public, signing_key=keys["bb_a"].private,
        )
        rar_a = make_bb_rar(
            inner=rar_u, introduced_cert=alice_cert, downstream=BB_B,
            bb=BB_A, bb_key=keys["bb_a"].private,
        )
        layers = unwrap_rar_layers(rar_a)
        assert [l.signer for l in layers] == [BB_A, ALICE]

    def test_unwrap_rejects_non_rar(self, keys):
        approval = make_approval(
            handle="H", domain="C", bb=BB_C, bb_key=keys["bb_b"].private
        )
        with pytest.raises(SignallingError):
            unwrap_rar_layers(approval)


class TestReplies:
    def test_approval_nesting(self, keys):
        inner = make_approval(
            handle="H-C", domain="C", bb=BB_C, bb_key=keys["bb_b"].private
        )
        outer = make_approval(
            handle="H-B", domain="B", inner=inner, bb=BB_B,
            bb_key=keys["bb_b"].private,
        )
        assert outer[F_INNER] is inner
        assert outer[F_DOMAIN] == "B"

    def test_approval_rejects_non_approval_inner(self, keys):
        denial = make_denial(
            domain="C", reason="no", bb=BB_C, bb_key=keys["bb_b"].private
        )
        with pytest.raises(SignallingError):
            make_approval(
                handle="H", domain="B", inner=denial, bb=BB_B,
                bb_key=keys["bb_b"].private,
            )

    def test_denial_reason(self, keys):
        denial = make_denial(
            domain="B", reason="SLA violated", bb=BB_B,
            bb_key=keys["bb_b"].private,
        )
        assert denial[F_REASON] == "SLA violated"
        assert denial.verify(keys["bb_b"].public)


class TestEncodingCache:
    """The canonical-bytes memoization must never leak across mutations
    (immutables only mutate via dataclasses.replace, which starts fresh)."""

    def test_body_bytes_stable(self, keys):
        env = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        assert env.body_bytes() is env.body_bytes()  # memoized
        assert env.cbe_bytes() is env.cbe_bytes()

    def test_tampered_copy_has_fresh_bytes(self, keys):
        env = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        env.cbe_bytes()  # prime the cache
        forged = env.with_tampered_field("x", 2)
        assert forged.cbe_bytes() != env.cbe_bytes()
        assert not forged.verify(keys["alice"].public)

    def test_nested_cache_composes(self, keys):
        """An envelope nested inside another encodes to the same bytes
        whether or not the inner cache was primed first."""
        from repro.crypto import canonical

        inner_a = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        inner_b = seal({"x": 1}, signer=ALICE, key=keys["alice"].private)
        inner_a.cbe_bytes()  # primed
        outer_a = seal({"inner": inner_a}, signer=BB_A, key=keys["bb_a"].private)
        outer_b = seal({"inner": inner_b}, signer=BB_A, key=keys["bb_a"].private)
        assert outer_a.body_bytes() == outer_b.body_bytes()
        assert canonical.encode(outer_a.to_cbe()) == outer_a.cbe_bytes()

    def test_certificate_cache_matches_fresh_encoding(self, keys):
        from repro.crypto import canonical
        from repro.crypto.x509 import sign_certificate

        cert = sign_certificate(
            serial=1, issuer=DN.make("Grid", "A", "CA"), subject=ALICE,
            public_key=keys["alice"].public, signing_key=keys["bb_a"].private,
        )
        primed = cert.cbe_bytes()
        assert primed == canonical.encode(
            {  # recompute field-by-field, bypassing the cache
                **cert.tbs(),
                "signature": cert.signature,
                "signature_scheme": cert.signature_scheme,
            }
        )

    def test_tampered_certificate_fresh(self, keys):
        from repro.crypto.x509 import sign_certificate

        cert = sign_certificate(
            serial=1, issuer=DN.make("Grid", "A", "CA"), subject=ALICE,
            public_key=keys["alice"].public, signing_key=keys["bb_a"].private,
        )
        cert.tbs_bytes()
        forged = cert.with_tampered_subject(BB_B)
        assert forged.tbs_bytes() != cert.tbs_bytes()
        assert not forged.verify_signature(keys["bb_a"].public)
