"""Integration tests: the ingress defense gate and malformed envelopes.

Covers the two ingress-facing robustness guarantees:

* a byzantine peer's malformed deliveries (truncated payload, corrupted
  field tag, garbage bytes, non-envelope objects) come back as *typed
  denials* with a ReasonCode — never as a raw decode exception escaping
  :meth:`HopByHopProtocol.process_ingress`;
* the replay guard rejects a replayed signed envelope **before**
  signature verification spends anything (``verified`` stays False and
  the protocol's verification counter does not move).
"""

import pytest

from repro.bb.defense import DefensePolicy
from repro.core.codec import to_wire
from repro.core.hopbyhop import WORK_DECODE, WORK_GATE, WORK_VERIFY
from repro.core.messages import make_user_rar
from repro.core.testbed import build_linear_testbed
from repro.obs.events import ReasonCode


@pytest.fixture()
def testbed():
    return build_linear_testbed(["A", "B"])


@pytest.fixture()
def captured_wire(testbed):
    """One well-formed signed user RAR, as wire bytes, entering at B.

    The signer is one of B's own users (directly trusted at the source
    hop), so the original verifies and is accepted — which is exactly
    the envelope a replay attack captures.
    """
    user = testbed.add_user("B", "Bob")
    request = testbed.make_request(
        source="B", destination="A", bandwidth_mbps=5.0,
        start=0.0, duration=60.0,
    )
    envelope = make_user_rar(
        request=request,
        source_bb=testbed.brokers["B"].dn,
        user=user.dn,
        user_key=user.keypair.private,
    )
    return to_wire(envelope), user


class TestMalformedIngress:
    """Satellite (b): malformed envelopes produce typed denials."""

    @pytest.mark.parametrize("mutate", [
        pytest.param(lambda wire: wire[:12], id="truncated-payload"),
        pytest.param(
            lambda wire: bytes([wire[0] ^ 0xFF]) + wire[1:],
            id="corrupted-field-tag",
        ),
        pytest.param(lambda wire: b"\x00" * 64, id="garbage-bytes"),
    ])
    def test_malformed_wire_is_typed_denial(
        self, testbed, captured_wire, mutate
    ):
        wire, _ = captured_wire
        report = testbed.hop_by_hop.process_ingress(
            "B", mutate(wire), peer="CN=BB-evil", at_time=0.0,
        )
        assert not report.accepted
        assert not report.verified
        assert report.reason_code == ReasonCode.TRUST_FAILURE.value
        assert report.reason
        assert report.work_units == WORK_DECODE

    def test_non_envelope_object_is_typed_denial(self, testbed):
        report = testbed.hop_by_hop.process_ingress(
            "B", {"not": "an envelope"}, peer="CN=BB-evil", at_time=0.0,
        )
        assert not report.accepted
        assert report.reason_code == ReasonCode.TRUST_FAILURE.value

    def test_malformed_never_reaches_verification(
        self, testbed, captured_wire
    ):
        wire, _ = captured_wire
        before = testbed.hop_by_hop.ingress_verifications
        testbed.hop_by_hop.process_ingress(
            "B", wire[:10], peer="CN=BB-evil",
            peer_certificate=testbed.brokers["A"].certificate,
            at_time=0.0,
        )
        assert testbed.hop_by_hop.ingress_verifications == before

    def test_well_formed_wire_is_accepted(self, testbed, captured_wire):
        wire, user = captured_wire
        report = testbed.hop_by_hop.process_ingress(
            "B", wire, peer=str(user.dn),
            peer_certificate=user.certificate, at_time=0.0,
        )
        assert report.accepted
        assert report.verified
        assert report.work_units == WORK_VERIFY


class TestReplayGuardAtIngress:
    """Acceptance: 100% of replays rejected before verification."""

    def test_replays_rejected_before_any_verification(
        self, testbed, captured_wire
    ):
        wire, user = captured_wire
        testbed.arm_defenses(DefensePolicy(
            peer_burst=1000.0, peer_rate_per_s=1000.0,
            replay_window_s=600.0,
        ))
        protocol = testbed.hop_by_hop
        original = protocol.process_ingress(
            "B", wire, peer=str(user.dn),
            peer_certificate=user.certificate, at_time=0.0,
        )
        assert original.accepted and original.verified
        verifications_after_original = protocol.ingress_verifications
        rejected = 0
        for i in range(50):
            report = protocol.process_ingress(
                "B", wire, peer=str(user.dn),
                peer_certificate=user.certificate, at_time=0.1 + i * 0.1,
            )
            assert not report.accepted
            assert not report.verified, (
                "a replayed envelope reached signature verification"
            )
            assert report.reason_code == ReasonCode.REPLAY_REJECTED.value
            assert report.work_units == WORK_GATE
            rejected += 1
        assert rejected == 50
        # The verification walk never ran again: the whole point.
        assert protocol.ingress_verifications == verifications_after_original
        assert (
            testbed.brokers["B"].defense.stats.replay_rejected == 50
        )

    def test_rate_limit_rejects_with_reason_code(
        self, testbed, captured_wire
    ):
        wire, user = captured_wire
        testbed.arm_defenses(DefensePolicy(
            peer_burst=1.0, peer_rate_per_s=0.0,
        ))
        protocol = testbed.hop_by_hop
        first = protocol.process_ingress(
            "B", wire, peer=str(user.dn),
            peer_certificate=user.certificate, at_time=0.0,
        )
        assert first.accepted
        limited = protocol.process_ingress(
            "B", wire + b"x", peer=str(user.dn),
            peer_certificate=user.certificate, at_time=0.0,
        )
        assert not limited.accepted
        assert limited.reason_code == ReasonCode.RATE_LIMITED.value
        assert limited.work_units == WORK_GATE

    def test_defenses_off_replay_costs_full_verification(
        self, testbed, captured_wire
    ):
        # The contrast the defenses exist for: with no gate armed, every
        # replayed copy costs the victim another full signature walk.
        wire, user = captured_wire
        protocol = testbed.hop_by_hop
        before = protocol.ingress_verifications
        for i in range(3):
            report = protocol.process_ingress(
                "B", wire, peer=str(user.dn),
                peer_certificate=user.certificate, at_time=float(i),
            )
            assert report.verified
            assert report.work_units == WORK_VERIFY
        assert protocol.ingress_verifications == before + 3


class TestQuotaIntegration:
    """The broker's admission pipeline enforces reservation quotas."""

    def test_per_user_quota_denies_with_reason_code(self, testbed):
        testbed.arm_defenses(DefensePolicy(
            peer_burst=1000.0, peer_rate_per_s=1000.0, per_user_quota=2,
        ))
        user = testbed.add_user("A", "Hog")
        # Distinct requests (varying start), so the replay guard sees
        # fresh envelopes and the *quota* is what denies the third.
        outcomes = [
            testbed.reserve(
                user, source="A", destination="B",
                bandwidth_mbps=1.0, start=float(i), duration=600.0,
            )
            for i in range(3)
        ]
        assert outcomes[0].granted and outcomes[1].granted
        assert not outcomes[2].granted
        assert testbed.brokers["A"].defense.stats.quota_exceeded >= 1
