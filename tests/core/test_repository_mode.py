"""Protocol-level tests of repository-based key distribution
(§6.4 alternative 2 driven through the full hop-by-hop engine)."""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.crypto.repository import CertificateRepository


def make_repo_testbed(domains=("A", "B", "C"), *, publish=True):
    tb = build_linear_testbed(list(domains))
    repo = CertificateRepository(lookup_latency_s=0.002)
    tb.hop_by_hop.repository = repo
    if publish:
        for bb in tb.brokers.values():
            repo.publish(bb.certificate)
    return tb, repo


class TestRepositoryMode:
    def test_reservation_via_repository(self):
        tb, repo = make_repo_testbed()
        alice = tb.add_user("A", "Alice")
        repo.publish(alice.certificate)
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted, outcome.denial_reason
        # B resolves Alice (1); C resolves BB-A and Alice (2).
        assert outcome.repository_lookups == 3
        assert repo.queries == 3

    def test_no_certificates_on_the_wire(self):
        tb, repo = make_repo_testbed()
        alice = tb.add_user("A", "Alice")
        repo.publish(alice.certificate)
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        layers = []
        from repro.core.messages import F_INTRODUCED_CERT, unwrap_rar_layers

        for layer in unwrap_rar_layers(outcome.final_rar):
            layers.append(layer.get(F_INTRODUCED_CERT))
        assert all(cert is None for cert in layers)

    def test_smaller_messages_than_introduction_mode(self):
        tb_repo, repo = make_repo_testbed()
        alice_r = tb_repo.add_user("A", "Alice")
        repo.publish(alice_r.certificate)
        with_repo = tb_repo.reserve(
            alice_r, source="A", destination="C", bandwidth_mbps=10.0
        )

        tb_intro = build_linear_testbed(["A", "B", "C"])
        alice_i = tb_intro.add_user("A", "Alice")
        with_intro = tb_intro.reserve(
            alice_i, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert with_repo.granted and with_intro.granted
        assert with_repo.bytes < with_intro.bytes
        # The paper's trade: smaller messages, but extra lookup latency.
        assert with_repo.repository_lookups > 0
        assert with_intro.repository_lookups == 0

    def test_unpublished_user_denied(self):
        tb, repo = make_repo_testbed()
        alice = tb.add_user("A", "Alice")  # never published
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert not outcome.granted
        # The first domain that must resolve Alice from the repository is B.
        assert outcome.denial_domain == "B"
        assert "no certificate" in outcome.denial_reason

    def test_lookup_latency_accounted(self):
        tb, repo = make_repo_testbed()
        alice = tb.add_user("A", "Alice")
        repo.publish(alice.certificate)
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        base = 0.022 + 0.003  # channel RTTs + processing (see C1 model)
        assert outcome.latency_s == pytest.approx(base + 3 * 0.002)

    def test_capabilities_still_work(self):
        tb, repo = make_repo_testbed()
        cas = tb.add_cas("ESnet")
        alice = tb.add_user("A", "Alice")
        repo.publish(alice.certificate)
        cas.grant(alice.dn, ["member"])
        alice.grid_login(cas, validity_s=10 * 24 * 3600.0)
        tb.set_policy(
            "C",
            "If Issued_by(Capability) = ESnet\n    Return GRANT\nReturn DENY",
        )
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        assert outcome.granted, outcome.denial_reason
        assert outcome.delegation is not None
