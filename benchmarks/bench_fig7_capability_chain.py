"""E7 / Figure 7: capability-certificate propagation and verification.

Regenerates the figure's content — the capability list held by each
broker after each delegation step — and times the two cryptographic
operations the scheme adds per hop: the delegation (one certificate
signature) and the destination's full §6.5 chain verification including
proof of possession.
"""

import random

import pytest

from repro.crypto.capability import (
    ProxyCredential,
    capability_set,
    delegate,
    issue_capability,
    prove_possession,
    restriction_set,
    verify_delegation_chain,
)
from repro.crypto.dn import DN
from repro.crypto.keys import RSAScheme, SimulatedScheme

CAS_DN = DN.make("Grid", "ESnet", "CAS")
USER = DN.make("Grid", "A", "Alice")
BBS = [DN.make("Grid", d, f"BB-{d}") for d in "ABC"]


def build_world(scheme):
    rng = random.Random(7)
    cas_keys = scheme.generate(rng)
    bb_keys = [scheme.generate(rng) for _ in BBS]
    cred = issue_capability(
        issuer=CAS_DN,
        issuer_signing_key=cas_keys.private,
        subject=USER,
        capabilities=["ESnet:member"],
        serial=1,
        rng=rng,
        scheme=scheme.name,
    )
    return cas_keys, bb_keys, cred


def build_chain(bb_keys, cred):
    chain = [cred.certificate]
    holder = cred
    for i, (dn, keys) in enumerate(zip(BBS, bb_keys)):
        cert = delegate(
            holder,
            delegate_subject=dn,
            delegate_public_key=keys.public,
            extra_restrictions=("valid-for:RAR",) if i == 0 else (),
        )
        chain.append(cert)
        holder = ProxyCredential(cert, keys.private)
    return chain


@pytest.fixture(scope="module", params=["simulated", "rsa512"])
def world(request):
    scheme = (
        SimulatedScheme() if request.param == "simulated" else RSAScheme(bits=512)
    )
    cas_keys, bb_keys, cred = build_world(scheme)
    return request.param, scheme, cas_keys, bb_keys, cred


def test_fig7_delegation_cost(benchmark, world, report):
    name, scheme, cas_keys, bb_keys, cred = world
    chain = benchmark(build_chain, bb_keys, cred)
    assert len(chain) == 4
    # Figure 7's columns: each BB holds one more certificate than the last.
    for i, cert in enumerate(chain):
        assert capability_set(cert) == {"ESnet:member"}
        if i >= 1:
            assert restriction_set(cert) == {"valid-for:RAR"}
    report.append(
        f"Figure 7 [{name}] chain of {len(chain)} capability certs built "
        f"(capability list per hop: 1, 2, 3, 4 certificates)"
    )


def test_fig7_destination_verification(benchmark, world, report):
    name, scheme, cas_keys, bb_keys, cred = world
    chain = build_chain(bb_keys, cred)
    final_keys = bb_keys[-1]

    def verify():
        return verify_delegation_chain(
            chain,
            trusted_issuers={CAS_DN: cas_keys.public},
            possession_nonce=b"figure-7",
            possession_prover=lambda n: prove_possession(final_keys.private, n),
        )

    result = benchmark(verify)
    assert result.capabilities == {"ESnet:member"}
    assert result.restrictions == {"valid-for:RAR"}
    assert result.holders[-1] == BBS[-1]
    report.append(
        f"Figure 7 [{name}] full seven-check verification at the destination: OK"
    )
