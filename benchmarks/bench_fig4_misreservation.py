"""E4 / Figure 4: the misreservation attack, measured on the data plane.

David reserves in domains A and B but not C.  Domain C "polices traffic
based on traffic aggregates, not on individual users, so it cannot tell
the difference between David's reserved traffic and Alice's reserved
traffic ... causing it to discard or downgrade the extra traffic, thereby
affecting Alice's reservation."

The benchmark runs the packet-level DiffServ simulation twice — once
under the attack (source-domain signalling with a skipped domain), once
with hop-by-hop signalling — and asserts the claimed shape: substantial
loss for the innocent Alice under the attack, zero loss with hop-by-hop.
"""

import random

import pytest

from repro.core.testbed import build_linear_testbed
from repro.net.flows import FlowSpec
from repro.net.packet import DSCP
from repro.net.trafficgen import PoissonSource

DURATION = 1.0


def _run_traffic(testbed):
    from repro.net.probes import GoodputProbe

    for seed, (fid, src, dst) in enumerate(
        [("alice", "h0.A", "h0.C"), ("david", "h1.A", "h1.C")]
    ):
        PoissonSource(
            testbed.network,
            FlowSpec(fid, src, dst, rate_mbps=10.0, dscp=DSCP.EF),
            rng=random.Random(seed),
            stop_time=DURATION,
        ).start()
    probe = GoodputProbe(testbed.network, "alice", interval_s=0.1,
                         stop_time=DURATION)
    trace = probe.start()
    testbed.sim.run()
    return (
        testbed.network.stats_for("alice"),
        testbed.network.stats_for("david"),
        trace,
    )


def attack_scenario():
    tb = build_linear_testbed(["A", "B", "C"])
    alice, david = tb.add_user("A", "Alice"), tb.add_user("A", "David")
    for u, ds in ((alice, ("B", "C")), (david, ("B",))):
        for d in ds:
            tb.introduce_user_to(u, d)
    agent = tb.end_to_end_agent
    a = agent.reserve(alice, tb.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        attributes=(("flow_id", "alice"),)))
    d = agent.reserve(david, tb.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        source_host="h1.A", destination_host="h1.C",
        attributes=(("flow_id", "david"),)), skip_domains={"C"})
    agent.claim(a)
    agent.claim(d)
    return _run_traffic(tb)


def protected_scenario():
    tb = build_linear_testbed(["A", "B", "C"])
    alice, david = tb.add_user("A", "Alice"), tb.add_user("A", "David")
    tb.set_policy("C", "If User = Alice\n    Return GRANT\nReturn DENY")
    a = tb.hop_by_hop.reserve(alice, tb.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        attributes=(("flow_id", "alice"),)))
    tb.hop_by_hop.claim(a)
    d = tb.hop_by_hop.reserve(david, tb.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        source_host="h1.A", destination_host="h1.C",
        attributes=(("flow_id", "david"),)))
    assert not d.granted  # hop-by-hop: incomplete reservations impossible
    return _run_traffic(tb)


def test_fig4_attack_harms_alice(benchmark, report):
    alice_stats, david_stats, trace = benchmark(attack_scenario)
    # The aggregate policer drops blindly: Alice suffers despite having a
    # complete reservation.
    assert alice_stats.loss_ratio > 0.25
    total_sent = alice_stats.sent_packets + david_stats.sent_packets
    total_dropped = alice_stats.dropped_packets + david_stats.dropped_packets
    assert total_dropped == pytest.approx(total_sent / 2, rel=0.3)
    report.append("Figure 4, attack (source-domain signalling, C skipped):")
    report.append(
        f"  Alice loss {alice_stats.loss_ratio * 100:5.1f}%   "
        f"goodput {alice_stats.goodput_mbps(DURATION):5.2f} Mb/s (reserved 10)"
    )
    report.append(
        f"  David loss {david_stats.loss_ratio * 100:5.1f}%   "
        f"goodput {david_stats.goodput_mbps(DURATION):5.2f} Mb/s"
    )
    series = " ".join(f"{v:4.1f}" for v in trace.values)
    report.append(f"  Alice goodput series (Mb/s per 100 ms): {series}")


def test_fig4_hop_by_hop_protects(benchmark, report):
    alice_stats, david_stats, trace = benchmark(protected_scenario)
    assert alice_stats.loss_ratio == 0.0
    assert alice_stats.goodput_mbps(DURATION) == pytest.approx(10.0, rel=0.1)
    # David's traffic was demoted to best effort at his first hop.
    assert david_stats.downgraded_packets == david_stats.sent_packets
    report.append("Figure 4, hop-by-hop protection:")
    report.append(
        f"  Alice loss {alice_stats.loss_ratio * 100:5.1f}%   "
        f"goodput {alice_stats.goodput_mbps(DURATION):5.2f} Mb/s"
    )
    report.append(
        f"  David demoted to BE: {david_stats.downgraded_packets} packets"
    )
