"""C3 / §2: the RSVP scaling critique, measured.

"There are some scaling problems with this approach, including the fact
that each router normally has to recognize each packet belonging to a
reserved flow and treat it specially."

Sweep the number of concurrent flows and compare (a) per-router state
entries and (b) signalling messages over a 5-minute hold time (RSVP
refreshes its soft state every 30 s; the BB approach signals once) between
RSVP/IntServ and the DiffServ bandwidth-broker architecture.
"""

import pytest

from repro.baselines.rsvp import RSVPSimulator
from repro.core.testbed import build_linear_testbed
from repro.net.topology import linear_domain_chain

DOMAINS = ["A", "B", "C"]
FLOW_COUNTS = [1, 10, 50, 100]
HOLD_TIME_S = 300.0


def rsvp_world(n):
    topo = linear_domain_chain(DOMAINS, hosts_per_domain=1,
                               inter_capacity_mbps=10_000.0)
    sim = RSVPSimulator(topo)
    for i in range(n):
        sim.reserve(f"f{i}", "h0.A", "h0.C", 1.0)
    sim.advance(HOLD_TIME_S, refresh=True)
    return sim.max_router_state(), sim.messages


def bb_world(n):
    tb = build_linear_testbed(DOMAINS, hosts_per_domain=1,
                              inter_capacity_mbps=10_000.0)
    alice = tb.add_user("A", "Alice")
    messages = 0
    for _ in range(n):
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=1.0
        )
        assert outcome.granted
        tb.hop_by_hop.claim(outcome)
        messages += outcome.messages
    # Router "state": aggregate policers (per ingress x class) plus the
    # source-edge per-flow classifiers GARA installs at claim time.
    aggregate_entries = sum(
        len(p) for p in tb.network._aggregate_policers.values()
    )
    core_router_entries = aggregate_entries  # interior state
    return core_router_entries, messages


def run_sweep():
    rows = []
    for n in FLOW_COUNTS:
        rsvp_state, rsvp_msgs = rsvp_world(n)
        bb_state, bb_msgs = bb_world(n)
        rows.append(
            {
                "flows": n,
                "rsvp_state": rsvp_state,
                "bb_state": bb_state,
                "rsvp_msgs": rsvp_msgs,
                "bb_msgs": bb_msgs,
            }
        )
    return rows


def test_c3_rsvp_vs_bb(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report.append(
        f"C3: per-router state and messages over a {HOLD_TIME_S:.0f}s hold"
    )
    report.append("  flows  rsvp-state  bb-state  rsvp-msgs  bb-msgs")
    for row in rows:
        report.append(
            f"  {row['flows']:>5d}  {row['rsvp_state']:>10d}"
            f"  {row['bb_state']:>8d}  {row['rsvp_msgs']:>9d}"
            f"  {row['bb_msgs']:>7d}"
        )
    for row in rows:
        # RSVP: 2 entries (path+resv) per flow in the busiest router.
        assert row["rsvp_state"] == 2 * row["flows"]
        # BB/DiffServ: interior state is per-aggregate, not per-flow —
        # bounded by (domain ingresses x service classes): one policer per
        # upstream peer per class, 4 on the A-B-C chain, independent of N.
        assert row["bb_state"] <= 4
        # Messages: RSVP pays refreshes forever; BB signals once per flow.
        assert row["bb_msgs"] == 6 * row["flows"]
        if row["flows"] >= 10:
            assert row["rsvp_msgs"] > row["bb_msgs"]


def test_c3_rsvp_reserve_wallclock(benchmark):
    topo = linear_domain_chain(DOMAINS, hosts_per_domain=1,
                               inter_capacity_mbps=10_000.0)
    sim = RSVPSimulator(topo)
    counter = [0]

    def reserve():
        counter[0] += 1
        sim.reserve(f"f{counter[0]}", "h0.A", "h0.C", 0.001)

    benchmark(reserve)
