"""Substrate benchmark: the discrete-event DiffServ simulator itself.

Not a paper experiment — a calibration of the reproduction's measurement
instrument.  The Figure 4 traffic runs depend on the simulator processing
hundreds of thousands of events quickly; this benchmark pins down event
throughput and packet-forwarding cost so regressions in the substrate do
not masquerade as protocol effects.
"""

import random

import pytest

from repro.net.diffserv import NetworkModel, TrafficProfile
from repro.net.flows import FlowSpec
from repro.net.packet import DSCP
from repro.net.simulator import Simulator
from repro.net.topology import linear_domain_chain
from repro.net.trafficgen import CBRSource


def test_event_loop_throughput(benchmark):
    """Raw scheduler: schedule + dispatch of 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 10_000


def test_packet_forwarding_throughput(benchmark, report):
    """End-to-end packet cost across a 3-domain path with policing."""

    def run():
        topo = linear_domain_chain(["A", "B", "C"], hosts_per_domain=1)
        model = NetworkModel(topo, Simulator())
        model.install_flow_policer(
            "core.A", "f", TrafficProfile(50.0), mark=DSCP.EF
        )
        model.set_aggregate_rate("edge.B.left", DSCP.EF, 50.0)
        model.set_aggregate_rate("edge.C.left", DSCP.EF, 50.0)
        CBRSource(
            model,
            FlowSpec("f", "h0.A", "h0.C", rate_mbps=50.0, dscp=DSCP.EF),
            stop_time=0.5,
        ).start()
        model.sim.run()
        stats = model.stats_for("f")
        return stats, model.sim.events_processed

    stats, events = benchmark(run)
    assert stats.delivery_ratio == 1.0
    report.append(
        f"Substrate: {stats.sent_packets} packets / {events} events per "
        f"0.5 s simulated across 3 domains"
    )


def test_poisson_heavy_load(benchmark):
    """Congested scenario: offered load 2x an interdomain link."""

    def run():
        topo = linear_domain_chain(
            ["A", "B"], hosts_per_domain=2, inter_capacity_mbps=20.0
        )
        model = NetworkModel(topo, Simulator())
        from repro.net.trafficgen import PoissonSource

        for i, host in enumerate(("h0.A", "h1.A")):
            PoissonSource(
                model,
                FlowSpec(f"f{i}", host, f"h{i}.B", rate_mbps=20.0),
                rng=random.Random(i),
                stop_time=0.5,
            ).start()
        model.sim.run()
        return model

    model = benchmark(run)
    total_sent = sum(s.sent_packets for s in model.stats.values())
    total_ok = sum(s.delivered_packets for s in model.stats.values())
    # Roughly half the offered load fits through the 20 Mb/s bottleneck
    # (drop-tail queues absorb part of the excess).
    assert 0.35 < total_ok / total_sent < 0.85
    assert model.total_drops("queue-overflow") > 0


def test_codec_roundtrip_throughput(benchmark, report):
    """Wire-codec cost on a realistic nested RAR (3 layers, certs)."""
    from repro.core.codec import from_wire, to_wire
    from repro.core.testbed import build_linear_testbed

    tb = build_linear_testbed(["A", "B", "C"])
    alice = tb.add_user("A", "Alice")
    outcome = tb.reserve(alice, source="A", destination="C",
                         bandwidth_mbps=1.0)
    rar = outcome.final_rar

    def roundtrip():
        return from_wire(to_wire(rar))

    back = benchmark(roundtrip)
    assert back == rar
    report.append(
        f"Substrate: codec round trip of a {rar.wire_size()} B nested RAR"
    )
