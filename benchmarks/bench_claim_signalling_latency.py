"""C1 / §3: "source-domain-based signalling may be faster than hop-by-hop
based signalling, because the reservations for each domain can be made in
parallel."

Sweep the path length from 2 to 10 domains and compare the modelled
end-to-end signalling latency and message counts of the three approaches:

* hop-by-hop (Approach 2) — latency grows with the *sum* of channel RTTs;
* source-domain sequential — also a sum, over direct channels;
* source-domain concurrent — the *maximum* of the per-domain RTTs, flat
  in the path length.

Asserted shape: concurrent < hop-by-hop for every path length >= 3, and
the hop-by-hop latency grows linearly while concurrent stays flat.
"""

import pytest

from repro.core.testbed import build_linear_testbed

PATH_LENGTHS = [2, 4, 6, 8, 10]


def run_sweep():
    rows = []
    for k in PATH_LENGTHS:
        domains = [f"D{i}" for i in range(k)]
        tb = build_linear_testbed(domains, hosts_per_domain=1)
        alice = tb.add_user(domains[0], "Alice")
        for d in domains[1:]:
            tb.introduce_user_to(alice, d)
        request = tb.make_request(
            source=domains[0], destination=domains[-1], bandwidth_mbps=1.0
        )

        hop = tb.hop_by_hop.reserve(alice, request)
        tb.hop_by_hop.cancel(hop)
        seq = tb.end_to_end_agent.reserve(alice, request)
        tb.end_to_end_agent.release(seq)
        par = tb.end_to_end_agent.reserve(alice, request, concurrent=True)
        tb.end_to_end_agent.release(par)
        assert hop.granted and seq.complete and par.complete
        rows.append(
            {
                "domains": k,
                "hop_latency": hop.latency_s,
                "seq_latency": seq.latency_s,
                "par_latency": par.latency_s,
                "hop_messages": hop.messages,
                "seq_messages": seq.messages,
            }
        )
    return rows


def test_c1_latency_sweep(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=3, iterations=1)
    report.append("C1: signalling latency model vs path length (ms)")
    report.append("  domains  hop-by-hop  seq-agent  conc-agent  "
                  "hop-msgs  seq-msgs")
    for row in rows:
        report.append(
            f"  {row['domains']:>7d}  {row['hop_latency'] * 1e3:>10.1f}"
            f"  {row['seq_latency'] * 1e3:>9.1f}"
            f"  {row['par_latency'] * 1e3:>10.1f}"
            f"  {row['hop_messages']:>8d}  {row['seq_messages']:>8d}"
        )
    # The paper's claim: parallel source-domain contact wins.
    for row in rows:
        if row["domains"] >= 3:
            assert row["par_latency"] < row["hop_latency"]
    # Hop-by-hop grows ~linearly; concurrent stays flat.
    assert rows[-1]["hop_latency"] > 3 * rows[0]["hop_latency"]
    assert rows[-1]["par_latency"] == pytest.approx(
        rows[0]["par_latency"], rel=0.2
    )
    # Message counts are identical in total (2 per domain).
    for row in rows:
        assert row["hop_messages"] == row["seq_messages"] == 2 * row["domains"]


@pytest.mark.no_metrics
def test_c1_hop_by_hop_wallclock(benchmark):
    """Actual wall-clock cost of one hop-by-hop reservation on an
    8-domain chain (crypto + policy + admission, simulated scheme).

    Marked ``no_metrics``: this measures the *disabled-observability*
    hot path, which must stay within noise of the uninstrumented code
    (the ISSUE 1 overhead criterion)."""
    domains = [f"D{i}" for i in range(8)]
    tb = build_linear_testbed(domains, hosts_per_domain=1)
    alice = tb.add_user("D0", "Alice")
    request = tb.make_request(source="D0", destination="D7", bandwidth_mbps=1.0)

    def run():
        outcome = tb.hop_by_hop.reserve(alice, request)
        tb.hop_by_hop.cancel(outcome)
        return outcome

    assert benchmark(run).granted
