"""C1 / §3: "source-domain-based signalling may be faster than hop-by-hop
based signalling, because the reservations for each domain can be made in
parallel."

Sweep the path length from 2 to 10 domains and compare the modelled
end-to-end signalling latency and message counts of the three approaches:

* hop-by-hop (Approach 2) — latency grows with the *sum* of channel RTTs;
* source-domain sequential — also a sum, over direct channels;
* source-domain concurrent — the *maximum* of the per-domain RTTs, flat
  in the path length.

Asserted shape: concurrent < hop-by-hop for every path length >= 3, and
the hop-by-hop latency grows linearly while concurrent stays flat.
"""

import random
import time

import pytest

from repro.bb.reservations import ReservationRequest
from repro.core.codec import WireView, from_wire, to_wire
from repro.core.messages import (
    F_DEADLINE,
    F_TRACEPARENT,
    F_TYPE,
    make_bb_rar,
    make_user_rar,
)
from repro.core.testbed import build_linear_testbed
from repro.crypto.dn import DN
from repro.crypto.x509 import CertificateAuthority

PATH_LENGTHS = [2, 4, 6, 8, 10]


def run_sweep():
    rows = []
    for k in PATH_LENGTHS:
        domains = [f"D{i}" for i in range(k)]
        tb = build_linear_testbed(domains, hosts_per_domain=1)
        alice = tb.add_user(domains[0], "Alice")
        for d in domains[1:]:
            tb.introduce_user_to(alice, d)
        request = tb.make_request(
            source=domains[0], destination=domains[-1], bandwidth_mbps=1.0
        )

        hop = tb.hop_by_hop.reserve(alice, request)
        tb.hop_by_hop.cancel(hop)
        seq = tb.end_to_end_agent.reserve(alice, request)
        tb.end_to_end_agent.release(seq)
        par = tb.end_to_end_agent.reserve(alice, request, concurrent=True)
        tb.end_to_end_agent.release(par)
        assert hop.granted and seq.complete and par.complete
        rows.append(
            {
                "domains": k,
                "hop_latency": hop.latency_s,
                "seq_latency": seq.latency_s,
                "par_latency": par.latency_s,
                "hop_messages": hop.messages,
                "seq_messages": seq.messages,
            }
        )
    return rows


def test_c1_latency_sweep(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=3, iterations=1)
    report.append("C1: signalling latency model vs path length (ms)")
    report.append("  domains  hop-by-hop  seq-agent  conc-agent  "
                  "hop-msgs  seq-msgs")
    for row in rows:
        report.append(
            f"  {row['domains']:>7d}  {row['hop_latency'] * 1e3:>10.1f}"
            f"  {row['seq_latency'] * 1e3:>9.1f}"
            f"  {row['par_latency'] * 1e3:>10.1f}"
            f"  {row['hop_messages']:>8d}  {row['seq_messages']:>8d}"
        )
    # The paper's claim: parallel source-domain contact wins.
    for row in rows:
        if row["domains"] >= 3:
            assert row["par_latency"] < row["hop_latency"]
    # Hop-by-hop grows ~linearly; concurrent stays flat.
    assert rows[-1]["hop_latency"] > 3 * rows[0]["hop_latency"]
    assert rows[-1]["par_latency"] == pytest.approx(
        rows[0]["par_latency"], rel=0.2
    )
    # Message counts are identical in total (2 per domain).
    for row in rows:
        assert row["hop_messages"] == row["seq_messages"] == 2 * row["domains"]


@pytest.mark.no_metrics
def test_c1_hop_by_hop_wallclock(benchmark):
    """Actual wall-clock cost of one hop-by-hop reservation on an
    8-domain chain (crypto + policy + admission, simulated scheme).

    Marked ``no_metrics``: this measures the *disabled-observability*
    hot path, which must stay within noise of the uninstrumented code
    (the ISSUE 1 overhead criterion)."""
    domains = [f"D{i}" for i in range(8)]
    tb = build_linear_testbed(domains, hosts_per_domain=1)
    alice = tb.add_user("D0", "Alice")
    request = tb.make_request(source="D0", destination="D7", bandwidth_mbps=1.0)

    def run():
        outcome = tb.hop_by_hop.reserve(alice, request)
        tb.hop_by_hop.cancel(outcome)
        return outcome

    assert benchmark(run).granted


def _eight_hop_append_wire():
    """A realistic ingress payload: an 8-hop append-chain RAR (~9 kB)
    with trace context on the outer layer and a deadline on the inner
    user request."""
    rng = random.Random(21)
    ca = CertificateAuthority(
        DN.make("Grid", "Root", "CA"), rng=rng, scheme="simulated"
    )
    user_dn = DN.make("Grid", "D0", "Alice")
    user_kp, user_cert = ca.issue_keypair(user_dn, rng=rng)
    bbs = []
    for i in range(8):
        dn = DN.make("Grid", f"D{i}", f"BB-D{i}")
        kp, cert = ca.issue_keypair(dn, rng=rng)
        bbs.append((dn, kp, cert))
    request = ReservationRequest(
        source_host="h0.D0", destination_host="h0.D7",
        source_domain="D0", destination_domain="D7",
        rate_mbps=10.0, start=0.0, end=3600.0,
    )
    rar = make_user_rar(
        request=request, source_bb=bbs[0][0], user=user_dn,
        user_key=user_kp.private, deadline=30.0,
    )
    prev_cert = user_cert
    for i in range(len(bbs) - 1):
        dn, kp, cert = bbs[i]
        last = i == len(bbs) - 2
        rar = make_bb_rar(
            inner=rar, introduced_cert=prev_cert,
            downstream=bbs[i + 1][0], bb=dn, bb_key=kp.private,
            append=True,
            traceparent="00-0123456789abcdef-89abcdef-01" if last else None,
        )
        prev_cert = cert
    return to_wire(rar)


def test_c1_misspath_zero_copy_metadata(benchmark, report):
    """Zero-copy ingress gating (ISSUE 10): before a hop commits any
    crypto work it needs only the message kind, trace context and
    deadline.  Extracting them through :class:`WireView`'s frame-skipping
    ``kind()``/``peek()`` must beat a full eager decode of the 8-hop
    wire by at least 10x — and return exactly the same metadata."""
    wire = _eight_hop_append_wire()
    reps = 20

    def eager_metadata():
        envelope = from_wire(wire)
        return (envelope.get(F_TYPE), envelope.get(F_TRACEPARENT),
                envelope.get(F_DEADLINE))

    def zero_copy_metadata():
        view = WireView.parse(wire)
        return (view.peek(F_TYPE), view.peek(F_TRACEPARENT),
                view.peek(F_DEADLINE))

    def run_pair():
        t0 = time.perf_counter()
        eager = [eager_metadata() for _ in range(reps)]
        t1 = time.perf_counter()
        peeked = [zero_copy_metadata() for _ in range(reps)]
        t2 = time.perf_counter()
        return eager, peeked, (t1 - t0) / reps, (t2 - t1) / reps

    eager, peeked, eager_s, peek_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert peeked == eager
    assert peeked[0][0] == "rar"
    assert peeked[0][1] == "00-0123456789abcdef-89abcdef-01"
    ratio = eager_s / peek_s
    report.append(
        f"C1 miss-path zero-copy gate on {len(wire)} B wire: eager "
        f"{eager_s * 1e6:.1f} us vs peek {peek_s * 1e6:.1f} us "
        f"-> {ratio:.1f}x"
    )
    assert ratio >= 10.0, (
        f"zero-copy metadata extraction only {ratio:.1f}x faster than "
        f"an eager decode (need >= 10x)"
    )
