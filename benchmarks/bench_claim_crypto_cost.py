"""C4 / §6.4: cost of the nested-signature envelope scheme.

The protocol signs at every hop and verifies the whole chain at every
hop.  This benchmark measures (a) envelope construction + full
transitive-trust verification as a function of path length, (b) the RSA
vs simulated-scheme cost gap, and (c) message growth: each hop adds its
layer, so wire size grows linearly in the path length — the price of
carrying certificates in-band (see the key-distribution ablation for the
alternatives).
"""

import random
import time

import pytest

from repro.bb.reservations import ReservationRequest
from repro.core.messages import make_bb_rar, make_user_rar
from repro.core.trust import verify_rar
from repro.crypto import canonical
from repro.crypto import cache as verification_cache
from repro.crypto.batch import BatchItem, verify_rar_batch
from repro.crypto.dn import DN
from repro.crypto.keys import RSAScheme, SimulatedScheme
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import CertificateAuthority


def request(rate_mbps=10.0):
    return ReservationRequest(
        source_host="h0.D0", destination_host="h0.DN",
        source_domain="D0", destination_domain="DN",
        rate_mbps=rate_mbps, start=0.0, end=3600.0,
    )


def build_world(scheme_name, hops):
    rng = random.Random(11)
    ca = CertificateAuthority(
        DN.make("Grid", "Root", "CA"), rng=rng, scheme=scheme_name
    )
    user_dn = DN.make("Grid", "D0", "Alice")
    user_kp, user_cert = ca.issue_keypair(user_dn, rng=rng)
    bbs = []
    for i in range(hops):
        dn = DN.make("Grid", f"D{i}", f"BB-D{i}")
        kp, cert = ca.issue_keypair(dn, rng=rng)
        bbs.append((dn, kp, cert))
    return user_dn, user_kp, user_cert, bbs


def build_chain(user_dn, user_kp, user_cert, bbs, *, append=False,
                rate_mbps=10.0):
    rar = make_user_rar(
        request=request(rate_mbps), source_bb=bbs[0][0], user=user_dn,
        user_key=user_kp.private,
    )
    prev_cert = user_cert
    for i in range(len(bbs) - 1):
        dn, kp, cert = bbs[i]
        rar = make_bb_rar(
            inner=rar, introduced_cert=prev_cert, downstream=bbs[i + 1][0],
            bb=dn, bb_key=kp.private, append=append,
        )
        prev_cert = cert
    return rar


def build_rar(user_dn, user_kp, user_cert, bbs):
    return build_chain(user_dn, user_kp, user_cert, bbs)


@pytest.mark.parametrize("scheme_name", ["simulated", "rsa"])
@pytest.mark.parametrize("hops", [2, 4, 8])
def test_c4_build_and_verify(benchmark, report, scheme_name, hops):
    user_dn, user_kp, user_cert, bbs = build_world(scheme_name, hops)
    verifier_dn, _, _ = bbs[-1]
    peer_dn, peer_kp, peer_cert = bbs[-2]
    store = TrustStore(TrustPolicy(max_introduction_depth=32,
                                   require_ca_issued_peers=False))
    store.add_introduced_peer(peer_cert)

    def build_and_verify():
        rar = build_rar(user_dn, user_kp, user_cert, bbs)
        return rar, verify_rar(
            rar, verifier=verifier_dn, peer_certificate=peer_cert,
            truststore=store,
        )

    rar, verified = benchmark(build_and_verify)
    assert verified.user == user_dn
    assert verified.depth == hops - 1
    report.append(
        f"C4 [{scheme_name:<9s} {hops} hops] wire size "
        f"{rar.wire_size():>6d} B, depth {verified.depth}"
    )


def test_c4_wire_size_linear(benchmark, report):
    """Wire size grows ~linearly in the path length (each hop adds one
    layer plus one introduced certificate)."""

    def measure():
        out = {}
        for hops in (2, 4, 8):
            world = build_world("simulated", hops)
            out[hops] = build_rar(*world).wire_size()
        return out

    sizes = benchmark(measure)
    report.append(f"C4 wire sizes: {sizes}")
    growth_a = sizes[4] - sizes[2]
    growth_b = sizes[8] - sizes[4]
    assert growth_b == pytest.approx(2 * growth_a, rel=0.25)


def test_c4_misspath_batched_verification(benchmark, report):
    """Miss path, amortized (ISSUE 10): a 48-item burst of six-hop RSA
    chains — two distinct request contents, as a ConcurrentSignaller
    fan-out produces — verified item-by-item with cold caches versus one
    ``verify_rar_batch`` pass.  Content-digest dedup plus the shared
    cache scope must make the batch at least 10x cheaper, with verdicts
    identical to the sequential baseline."""
    user_dn, user_kp, user_cert, bbs = build_world("rsa", 6)
    verifier_dn, _, _ = bbs[-1]
    _, _, peer_cert = bbs[-2]
    store = TrustStore(TrustPolicy(max_introduction_depth=32,
                                   require_ca_issued_peers=False))
    store.add_introduced_peer(peer_cert)
    distinct = [
        build_chain(user_dn, user_kp, user_cert, bbs, rate_mbps=rate)
        for rate in (10.0, 20.0)
    ]
    items = [
        BatchItem(rar=distinct[i % len(distinct)], verifier=verifier_dn,
                  peer_certificate=peer_cert)
        for i in range(48)
    ]

    def run_pair():
        # The miss path proper: every arrival verified in isolation,
        # nothing warm (the benchmark harness keeps a process-scoped
        # cache installed, so scope each item to a fresh set).
        t0 = time.perf_counter()
        sequential = []
        for item in items:
            with verification_cache.use_caches(
                verification_cache.VerificationCaches()
            ):
                sequential.append(
                    verify_rar(item.rar, verifier=item.verifier,
                               peer_certificate=item.peer_certificate,
                               truststore=store)
                )
        t1 = time.perf_counter()
        batched = verify_rar_batch(
            items, truststore=store,
            caches=verification_cache.VerificationCaches(),
        )
        t2 = time.perf_counter()
        return sequential, batched, t1 - t0, t2 - t1

    sequential, batched, seq_s, batch_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert all(result.ok for result in batched)
    assert [r.require().user for r in batched] == \
        [v.user for v in sequential]
    assert [r.require().depth for r in batched] == \
        [v.depth for v in sequential]
    # Only the first occurrence of each distinct content is verified.
    assert [r.deduplicated for r in batched[:len(distinct)]] == \
        [False] * len(distinct)
    assert all(r.deduplicated for r in batched[len(distinct):])
    ratio = seq_s / batch_s
    report.append(
        f"C4 miss-path batch: 48 items ({len(distinct)} distinct, "
        f"6 RSA hops) sequential {seq_s * 1e3:.2f} ms, "
        f"batched {batch_s * 1e3:.2f} ms -> {ratio:.1f}x"
    )
    assert ratio >= 10.0, (
        f"batched verification only {ratio:.1f}x faster than the "
        f"sequential miss path (need >= 10x)"
    )


def test_c4_misspath_append_chain_signed_bytes(benchmark, report):
    """Append-only chains bound the per-hop signature input (ISSUE 10).

    A nested chain signs the *whole* accumulated envelope at every hop,
    so the bytes under the final signature grow linearly with the path;
    an append chain signs a fixed-size digest link instead.  At 16 hops
    the final wrap's signed bytes must shrink by at least 10x, while the
    total wire stays within a few percent (each hop adds one 32-byte
    link) and verification still accepts both chains."""
    user_dn, user_kp, user_cert, bbs = build_world("simulated", 16)
    verifier_dn, _, _ = bbs[-1]
    _, _, peer_cert = bbs[-2]
    store = TrustStore(TrustPolicy(max_introduction_depth=32,
                                   require_ca_issued_peers=False))
    store.add_introduced_peer(peer_cert)

    def measure():
        out = {}
        for mode, append in (("nested", False), ("append", True)):
            rar = build_chain(
                user_dn, user_kp, user_cert, bbs, append=append,
            )
            verified = verify_rar(
                rar, verifier=verifier_dn, peer_certificate=peer_cert,
                truststore=store,
            )
            out[mode] = (
                len(canonical.encode(rar.body_cbe())),
                rar.wire_size(),
                verified.user,
                verified.depth,
            )
        return out

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    nested_signed, nested_wire, nested_user, nested_depth = sizes["nested"]
    append_signed, append_wire, append_user, append_depth = sizes["append"]
    assert nested_user == append_user == user_dn
    assert nested_depth == append_depth == len(bbs) - 1
    ratio = nested_signed / append_signed
    report.append(
        f"C4 miss-path append chain, 16 hops: final-wrap signed bytes "
        f"nested {nested_signed} B vs append {append_signed} B "
        f"({ratio:.1f}x), wire {nested_wire} B vs {append_wire} B"
    )
    assert ratio >= 10.0, (
        f"append chain only shrinks the signed bytes {ratio:.1f}x "
        f"(need >= 10x at 16 hops)"
    )
    assert append_wire <= nested_wire * 1.10


def test_c4_rsa_sign_vs_simulated(benchmark, report):
    """The per-signature cost gap between real RSA-1024 and the simulated
    scheme (why large sweeps default to the simulated scheme)."""
    rng = random.Random(5)
    rsa = RSAScheme(bits=1024)
    kp = rsa.generate(rng)
    payload = b"x" * 1000

    def sign():
        return rsa.sign(kp.private, payload)

    sig = benchmark(sign)
    assert rsa.verify(kp.public, payload, sig)
