"""C4 / §6.4: cost of the nested-signature envelope scheme.

The protocol signs at every hop and verifies the whole chain at every
hop.  This benchmark measures (a) envelope construction + full
transitive-trust verification as a function of path length, (b) the RSA
vs simulated-scheme cost gap, and (c) message growth: each hop adds its
layer, so wire size grows linearly in the path length — the price of
carrying certificates in-band (see the key-distribution ablation for the
alternatives).
"""

import random

import pytest

from repro.bb.reservations import ReservationRequest
from repro.core.messages import make_bb_rar, make_user_rar
from repro.core.trust import verify_rar
from repro.crypto.dn import DN
from repro.crypto.keys import RSAScheme, SimulatedScheme
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import CertificateAuthority


def request():
    return ReservationRequest(
        source_host="h0.D0", destination_host="h0.DN",
        source_domain="D0", destination_domain="DN",
        rate_mbps=10.0, start=0.0, end=3600.0,
    )


def build_world(scheme_name, hops):
    rng = random.Random(11)
    ca = CertificateAuthority(
        DN.make("Grid", "Root", "CA"), rng=rng, scheme=scheme_name
    )
    user_dn = DN.make("Grid", "D0", "Alice")
    user_kp, user_cert = ca.issue_keypair(user_dn, rng=rng)
    bbs = []
    for i in range(hops):
        dn = DN.make("Grid", f"D{i}", f"BB-D{i}")
        kp, cert = ca.issue_keypair(dn, rng=rng)
        bbs.append((dn, kp, cert))
    return user_dn, user_kp, user_cert, bbs


def build_rar(user_dn, user_kp, user_cert, bbs):
    rar = make_user_rar(
        request=request(), source_bb=bbs[0][0], user=user_dn,
        user_key=user_kp.private,
    )
    prev_cert = user_cert
    for i in range(len(bbs) - 1):
        dn, kp, cert = bbs[i]
        rar = make_bb_rar(
            inner=rar, introduced_cert=prev_cert, downstream=bbs[i + 1][0],
            bb=dn, bb_key=kp.private,
        )
        prev_cert = cert
    return rar


@pytest.mark.parametrize("scheme_name", ["simulated", "rsa"])
@pytest.mark.parametrize("hops", [2, 4, 8])
def test_c4_build_and_verify(benchmark, report, scheme_name, hops):
    user_dn, user_kp, user_cert, bbs = build_world(scheme_name, hops)
    verifier_dn, _, _ = bbs[-1]
    peer_dn, peer_kp, peer_cert = bbs[-2]
    store = TrustStore(TrustPolicy(max_introduction_depth=32,
                                   require_ca_issued_peers=False))
    store.add_introduced_peer(peer_cert)

    def build_and_verify():
        rar = build_rar(user_dn, user_kp, user_cert, bbs)
        return rar, verify_rar(
            rar, verifier=verifier_dn, peer_certificate=peer_cert,
            truststore=store,
        )

    rar, verified = benchmark(build_and_verify)
    assert verified.user == user_dn
    assert verified.depth == hops - 1
    report.append(
        f"C4 [{scheme_name:<9s} {hops} hops] wire size "
        f"{rar.wire_size():>6d} B, depth {verified.depth}"
    )


def test_c4_wire_size_linear(benchmark, report):
    """Wire size grows ~linearly in the path length (each hop adds one
    layer plus one introduced certificate)."""

    def measure():
        out = {}
        for hops in (2, 4, 8):
            world = build_world("simulated", hops)
            out[hops] = build_rar(*world).wire_size()
        return out

    sizes = benchmark(measure)
    report.append(f"C4 wire sizes: {sizes}")
    growth_a = sizes[4] - sizes[2]
    growth_b = sizes[8] - sizes[4]
    assert growth_b == pytest.approx(2 * growth_a, rel=0.25)


def test_c4_rsa_sign_vs_simulated(benchmark, report):
    """The per-signature cost gap between real RSA-1024 and the simulated
    scheme (why large sweeps default to the simulated scheme)."""
    rng = random.Random(5)
    rsa = RSAScheme(bits=1024)
    kp = rsa.generate(rng)
    payload = b"x" * 1000

    def sign():
        return rsa.sign(kp.private, payload)

    sig = benchmark(sign)
    assert rsa.verify(kp.public, payload, sig)
