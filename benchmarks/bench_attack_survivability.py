"""Adversarial survivability: honest-traffic retention, defenses off vs on.

Not a paper figure — the robustness experiment the paper's single
misreservation demo (Figure 4) implies but never runs: each attack
persona is mixed with the honest workload at its default attack
fraction (>= 50% of all signals), once against the open fabric and once
with the admission-plane defenses armed.  The claimed shape, asserted
here and recorded in the BENCH trajectory's ``survivability`` section:

* defenses **off**, honest admission collapses below 50% for every
  persona (capacity theft, verification-queue drain, or both);
* defenses **on**, honest traffic retains >= 90% admission and meets
  its latency/denial/breaker SLOs, while the attack is rejected at the
  cheap pre-verification gate;
* every replayed envelope is rejected *before* signature verification.
"""

import pytest

from repro.workloads.attackers import PERSONAS
from repro.workloads.survivability import (
    SurvivabilitySpec,
    run_survivability_pair,
)

SEED = 2001
#: The canonical horizon: long enough for the flood's adaptive fill to
#: complete and the off-state collapse to dominate the run.
HORIZON_S = 120.0


def run_pair(persona: str, horizon_s: float = HORIZON_S):
    spec = SurvivabilitySpec(
        persona=persona, seed=SEED, horizon_s=horizon_s,
    )
    return run_survivability_pair(spec)


def survivability_section(horizon_s: float = HORIZON_S) -> dict:
    """The off/on survivability pairs recorded in BENCH_<n>.json."""
    section: dict = {
        "method": (
            f"seed {SEED}, horizon {horizon_s:.0f}s, honest Poisson load "
            "mixed with one persona at its default attack fraction; "
            "honest admission over offered, p99 latency includes the "
            "victim's modelled verification-work queue"
        ),
        "personas": {},
    }
    for persona in sorted(PERSONAS):
        off, on = run_pair(persona, horizon_s=horizon_s)
        section["personas"][persona] = {
            "attack_fraction": round(off.attack_fraction, 4),
            "off": {
                "honest_admission_rate": round(off.honest_admission_rate, 4),
                "honest_p99_latency_s": round(off.honest_p99_latency_s, 4),
                "breaker_opens": off.breaker_opens,
                "max_backlog_s": round(off.max_backlog_s, 2),
            },
            "on": {
                "honest_admission_rate": round(on.honest_admission_rate, 4),
                "honest_p99_latency_s": round(on.honest_p99_latency_s, 4),
                "breaker_opens": on.breaker_opens,
                "max_backlog_s": round(on.max_backlog_s, 2),
                "gate_rejected": on.attacker["gate_rejected"],
                "replays_sent": on.attacker["replays_sent"],
                "replays_rejected_before_verification":
                    on.attacker["replays_rejected_before_verification"],
            },
        }
    return section


@pytest.mark.parametrize("persona", sorted(PERSONAS))
def test_survivability_pair(persona, benchmark, report):
    off, on = benchmark.pedantic(
        run_pair, args=(persona,), rounds=1, iterations=1
    )
    assert off.attack_fraction >= 0.5
    assert off.honest_offered == on.honest_offered > 0
    # The attack hurts when undefended...
    assert off.honest_admission_rate < 0.5, (
        f"{persona}: defenses-off honest admission "
        f"{off.honest_admission_rate:.2f} should collapse below 50%"
    )
    # ...and the defenses restore honest service.
    assert on.honest_admission_rate >= 0.9, (
        f"{persona}: defenses-on honest admission "
        f"{on.honest_admission_rate:.2f} should stay above 90%"
    )
    assert on.slo_report is not None and on.slo_report.ok
    assert on.attacker["gate_rejected"] > 0
    report.append(
        f"{persona:<18s} f={off.attack_fraction:.2f}  "
        f"honest admission off={off.honest_admission_rate:5.1%} "
        f"on={on.honest_admission_rate:5.1%}  "
        f"p99 off={off.honest_p99_latency_s:6.2f}s "
        f"on={on.honest_p99_latency_s:5.2f}s"
    )


def test_replays_rejected_before_verification(benchmark, report):
    off, on = benchmark.pedantic(
        run_pair, args=("byzantine-broker",), rounds=1, iterations=1
    )
    sent = on.attacker["replays_sent"]
    rejected = on.attacker["replays_rejected_before_verification"]
    assert sent > 0
    assert rejected == sent, (
        f"{sent - rejected} replayed envelope(s) reached verification"
    )
    # Undefended, the same replays all cost full verification walks.
    assert off.attacker["replays_rejected_before_verification"] == 0
    report.append(
        f"replay guard: {rejected}/{sent} replays rejected "
        "before signature verification (defenses on)"
    )
