"""Ablation / §6.4: the four key-distribution alternatives.

The paper lists four ways a verifier can obtain the public keys needed to
check the nested signatures, and argues for the first:

1. **certificates in the request** (web of trust / key introducers) — the
   paper's choice, implemented by the protocol;
2. **an LDAP-style certificate repository** — smaller messages, but one
   trusted-lookup round trip per unknown signer and a strong trust
   requirement on the repository;
3. **out-of-band distribution** — smallest messages, but every verifier
   must have pre-fetched every potential signer's certificate (quadratic
   pre-distribution in the number of principals);
4. **restricted delegation / impersonation** — the capability-certificate
   machinery already measured in E7.

This ablation quantifies the trade: request bytes on the wire versus
per-request repository lookups versus pre-distributed certificates, as a
function of path length.
"""

import random

import pytest

from repro.bb.reservations import ReservationRequest
from repro.core.envelope import seal
from repro.core.messages import F_INTRODUCED_CERT, make_bb_rar, make_user_rar, unwrap_rar_layers
from repro.crypto.dn import DN
from repro.crypto.x509 import CertificateAuthority

PATH_LENGTHS = [2, 4, 8]


def request():
    return ReservationRequest(
        source_host="h", destination_host="h'",
        source_domain="D0", destination_domain="DN",
        rate_mbps=10.0, start=0.0, end=3600.0,
    )


def build_world(hops):
    rng = random.Random(23)
    ca = CertificateAuthority(DN.make("Grid", "Root", "CA"), rng=rng,
                              scheme="simulated")
    user_dn = DN.make("Grid", "D0", "Alice")
    user_kp, user_cert = ca.issue_keypair(user_dn, rng=rng)
    bbs = []
    for i in range(hops):
        dn = DN.make("Grid", f"D{i}", f"BB-D{i}")
        kp, cert = ca.issue_keypair(dn, rng=rng)
        bbs.append((dn, kp, cert))
    return user_dn, user_kp, user_cert, bbs


def option1_in_request(world):
    """The paper's choice: certificates travel inside the request."""
    user_dn, user_kp, user_cert, bbs = world
    rar = make_user_rar(request=request(), source_bb=bbs[0][0],
                        user=user_dn, user_key=user_kp.private)
    prev_cert = user_cert
    for i in range(len(bbs) - 1):
        dn, kp, cert = bbs[i]
        rar = make_bb_rar(inner=rar, introduced_cert=prev_cert,
                          downstream=bbs[i + 1][0], bb=dn, bb_key=kp.private)
        prev_cert = cert
    return rar.wire_size(), 0, 0  # bytes, lookups, pre-distributed


def option2_repository(world):
    """DN references only; the verifier resolves keys from a trusted
    repository, exercising the real :func:`verify_rar_with_repository`
    code path (the RAR simply omits introduced certificates)."""
    from repro.core.messages import make_user_rar as _mk_user
    from repro.core.trust import verify_rar_with_repository
    from repro.crypto.repository import CertificateRepository
    from repro.crypto.truststore import TrustPolicy, TrustStore

    user_dn, user_kp, user_cert, bbs = world
    # Build the same nested structure but without certificates: each BB
    # layer names the downstream hop only.
    env = _mk_user(
        request=request(), source_bb=bbs[0][0], user=user_dn,
        user_key=user_kp.private,
    )
    for i in range(len(bbs) - 1):
        dn, kp, _ = bbs[i]
        env = seal(
            {"type": "rar", "inner_rar": env, "downstream_dn": bbs[i + 1][0]},
            signer=dn, key=kp.private,
        )
    repo = CertificateRepository()
    repo.publish(user_cert)
    for _, _, cert in bbs:
        repo.publish(cert)
    verifier_dn = bbs[-1][0]
    peer_cert = bbs[-2][2]
    store = TrustStore(TrustPolicy(require_ca_issued_peers=False))
    store.add_introduced_peer(peer_cert)
    verified, lookups = verify_rar_with_repository(
        env, verifier=verifier_dn, peer_certificate=peer_cert,
        truststore=store, repository=repo,
    )
    assert verified.user == user_dn
    return env.wire_size(), lookups, 0


def _bare_wire_size(world):
    """Wire size of the certificate-free nesting (options 2 and 3)."""
    user_dn, user_kp, _, bbs = world
    from repro.core.messages import make_user_rar as _mk_user

    env = _mk_user(
        request=request(), source_bb=bbs[0][0], user=user_dn,
        user_key=user_kp.private,
    )
    for i in range(len(bbs) - 1):
        dn, kp, _ = bbs[i]
        env = seal(
            {"type": "rar", "inner_rar": env, "downstream_dn": bbs[i + 1][0]},
            signer=dn, key=kp.private,
        )
    return env.wire_size()


def option3_out_of_band(world):
    """No certificates, no lookups at request time — but every verifier
    pre-fetched every principal's certificate."""
    wire = _bare_wire_size(world)
    user_dn, user_kp, user_cert, bbs = world
    principals = 1 + len(bbs)
    verifiers = len(bbs)
    return wire, 0, verifiers * (principals - 1)


@pytest.mark.parametrize("hops", PATH_LENGTHS)
def test_ablation_key_distribution(benchmark, report, hops):
    world = build_world(hops)

    def run():
        return (
            option1_in_request(world),
            option2_repository(world),
            option3_out_of_band(world),
        )

    (b1, l1, p1), (b2, l2, p2), (b3, l3, p3) = benchmark(run)
    report.append(f"Key distribution, {hops}-hop path "
                  f"(bytes / online lookups / pre-distributed certs):")
    report.append(f"  1. certs in request (paper) : {b1:>6d} / {l1} / {p1}")
    report.append(f"  2. LDAP repository          : {b2:>6d} / {l2} / {p2}")
    report.append(f"  3. out of band              : {b3:>6d} / {l3} / {p3}")
    # The trade-off shape the paper argues from:
    assert b1 > b2  # in-request carries more bytes...
    assert l1 == 0 and p1 == 0  # ...but needs no extra infrastructure.
    assert l2 == hops - 1  # repository: a lookup per unknown signer.
    assert p3 > 0 and l3 == 0  # out-of-band: quadratic pre-distribution.
    if hops >= 4:
        assert p3 >= hops * (hops - 1)
