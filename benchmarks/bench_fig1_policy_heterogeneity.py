"""E1 / Figure 1: different domains enforce different reservation policies.

Domain A holds a per-user access list (Alice GRANT, Bob DENY); domain B
delegates to a third-party group server ("accredited physicists").  The
benchmark evaluates both policy files against the figure's cast and
asserts the exact grant matrix, then times the policy decision point.
"""

import pytest

from repro.crypto.dn import DN
from repro.policy.engine import RequestContext
from repro.policy.groupserver import GroupServer
from repro.policy.language import compile_policy

POLICY_A = """
If User = Alice
    If Reservation_Type = Network
        Return GRANT
If User = Bob
    Return DENY
Return DENY
"""

POLICY_B = """
If Reservation_Type = Network
    If Accredited_Physicist(requestor)
        Return GRANT
    Else Return DENY
Return DENY
"""

ALICE = DN.make("Grid", "A", "Alice")
BOB = DN.make("Grid", "A", "Bob")
CHARLIE = DN.make("Grid", "B", "Charlie")


@pytest.fixture(scope="module")
def engines():
    gs = GroupServer(DN.make("Grid", "HEP", "GS"), scheme="simulated")
    gs.add_member("physicists", ALICE)
    gs.add_member("physicists", CHARLIE)
    predicates = {"Accredited_Physicist": gs.predicate("physicists")}
    return (
        compile_policy(POLICY_A, name="domain-A"),
        compile_policy(POLICY_B, name="domain-B"),
        predicates,
    )


def grant_matrix(engines):
    engine_a, engine_b, predicates = engines
    results = {}
    for user in (ALICE, BOB, CHARLIE):
        ctx = RequestContext(
            user=user, reservation_type="Network", predicates=predicates
        )
        results[("A", user.common_name)] = engine_a.evaluate(ctx).granted
        results[("B", user.common_name)] = engine_b.evaluate(ctx).granted
    return results


def test_fig1_grant_matrix(benchmark, engines, report):
    results = benchmark(grant_matrix, engines)
    # Figure 1's stated semantics.
    assert results[("A", "Alice")] is True
    assert results[("A", "Bob")] is False
    assert results[("A", "Charlie")] is False  # unknown to A's ACL
    assert results[("B", "Alice")] is True  # accredited physicist
    assert results[("B", "Bob")] is False
    assert results[("B", "Charlie")] is True
    report.append("Figure 1 grant matrix (domain x user):")
    for (domain, user), granted in sorted(results.items()):
        report.append(f"  domain {domain}  {user:<8s} -> "
                      f"{'GRANT' if granted else 'DENY'}")


def test_fig1_policy_parse_cost(benchmark):
    """Compiling a policy file is cheap enough to do per reconfiguration."""
    engine = benchmark(compile_policy, POLICY_A)
    assert engine.evaluate(
        RequestContext(user=ALICE, reservation_type="Network")
    ).granted
