"""E6 / Figure 6: the full three-policy-file scenario, verbatim syntax.

Policy Files A, B, C exactly as printed in the figure (modulo the figure's
``5MB/s`` typo, which we read as 5 Mb/s per the accompanying text "it will
only accept reservations above 5 Mb/s ...").  The benchmark drives the
annotated request — ``BW=10Mb/s, User=Alice, Capability of ESnet,
CPU_Reservation_ID=111`` — through all three brokers and asserts the full
grant/deny matrix the policies imply.
"""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.gara.resources import CPUManager

POLICY_A = """
If User = Alice
    If Time > 8am and Time < 5pm
        If BW <= 10Mb/s
            Return GRANT
        Else Return DENY
    Else if BW <= Avail_BW
        Return GRANT
    Else Return DENY
Return DENY
"""

POLICY_B = """
If Group = Atlas
    If BW <= 10Mb/s
        Return GRANT
If Issued_by(Capability) = ESnet
    If BW <= 10Mb/s
        Return GRANT
Return DENY
"""

POLICY_C = """
If BW >= 5Mb/s
    If Issued_by(Capability) = ESnet and HasValidCPUResv(RAR)
        Return GRANT
    Else Return DENY
Return GRANT
"""


@pytest.fixture(scope="module")
def setup():
    tb = build_linear_testbed({"A": POLICY_A, "B": POLICY_B, "C": POLICY_C})
    cpus = CPUManager("cluster-C", 64.0, domain="C")
    tb.brokers["C"].register_linked_validator("cpu", cpus.is_valid)
    alice = tb.add_user("A", "Alice")
    cas = tb.add_cas("ESnet")
    cas.grant(alice.dn, ["member"])
    alice.grid_login(cas, validity_s=30 * 24 * 3600.0)
    cpu_resv = cpus.reserve(16.0, 0.0, 30 * 24 * 3600.0, owner=alice.dn)
    # Evening: BB-A's off-hours branch applies.
    tb.sim.run(until=20 * 3600.0)
    return tb, alice, cpu_resv.handle


CASES = [
    # (bw, with_cpu, expected_granted, expected_denier, label)
    (10.0, True, True, None, "the annotated Figure 6 request"),
    (10.0, False, False, "C", "no CPU reservation"),
    (12.0, True, False, "B", "over B's 10 Mb/s cap"),
    (4.0, False, True, None, "below C's 5 Mb/s threshold"),
    # 200 Mb/s exceeds even A's available bandwidth (155 Mb/s egress SLA),
    # so the request dies in the source domain before B ever sees it.
    (200.0, True, False, "A", "over everything"),
]


@pytest.mark.parametrize("bw,with_cpu,expect,denier,label", CASES)
def test_fig6_matrix(benchmark, setup, report, bw, with_cpu, expect, denier,
                     label):
    tb, alice, cpu_handle = setup
    linked = (("cpu", cpu_handle),) if with_cpu else ()

    def run():
        request = tb.make_request(
            source="A", destination="C", bandwidth_mbps=bw,
            start=tb.sim.now, duration=600.0, linked_reservations=linked,
        )
        outcome = tb.hop_by_hop.reserve(alice, request)
        if outcome.granted:
            tb.hop_by_hop.cancel(outcome)
        return outcome

    outcome = benchmark(run)
    assert outcome.granted == expect, (label, outcome.denial_reason)
    if not expect:
        assert outcome.denial_domain == denier, label
    verdict = "GRANT" if outcome.granted else f"DENY at {outcome.denial_domain}"
    report.append(f"Figure 6 | {label:<34s} BW={bw:>5.1f} -> {verdict}")


def test_fig6_business_hours_cap(benchmark, setup, report):
    """At noon, BB-A's 10 Mb/s business-hours cap binds even though the
    off-hours branch would allow far more."""
    tb, alice, cpu_handle = setup
    # Jump the clock to the next day's noon.
    day = 24 * 3600.0
    noon = (int(tb.sim.now // day) + 1) * day + 12 * 3600.0
    tb.sim.run(until=noon)

    def run():
        request = tb.make_request(
            source="A", destination="C", bandwidth_mbps=20.0,
            start=noon, duration=600.0,
            linked_reservations=(("cpu", cpu_handle),),
        )
        return tb.hop_by_hop.reserve(alice, request)

    outcome = benchmark(run)
    assert not outcome.granted
    assert outcome.denial_domain == "A"
    report.append("Figure 6 | noon, 20 Mb/s -> DENY at A (business-hours cap)")
