"""Extended evaluation: acceptance ratio vs offered load.

Not a paper figure — the quantitative admission-control sweep the paper's
qualitative evaluation leaves open (its citations [21, 22] run exactly
this kind of experiment for advance-reservation schedulers).  Poisson
reservation arrivals with exponential holding times are offered to the
A-B-C testbed at increasing load factors; the curve shows the classic
loss-system shape: ~100% acceptance below capacity, graceful degradation
past it, with the carried traffic saturating near the bottleneck rate.
"""

import random

import pytest

from repro.core.testbed import build_linear_testbed
from repro.workloads.generator import ReservationWorkload, WorkloadSpec

BOTTLENECK_MBPS = 100.0
#: Offered load as a multiple of the bottleneck link.
LOAD_FACTORS = [0.25, 0.5, 1.0, 2.0, 4.0]


def run_point(load_factor: float, seed: int = 11):
    tb = build_linear_testbed(
        ["A", "B", "C"], hosts_per_domain=1,
        inter_capacity_mbps=BOTTLENECK_MBPS,
    )
    mean_rate = 10.0
    mean_hold = 300.0
    arrival = load_factor * BOTTLENECK_MBPS / (mean_rate * mean_hold)
    spec = WorkloadSpec(
        arrival_rate_per_s=arrival,
        mean_duration_s=mean_hold,
        rate_choices_mbps=(5.0, 10.0, 15.0),
        pairs=(("A", "C"),),
        horizon_s=6000.0,
    )
    result = ReservationWorkload(tb, spec, rng=random.Random(seed)).run()
    return result


def run_sweep():
    return {lf: run_point(lf) for lf in LOAD_FACTORS}


def test_extended_acceptance_curve(benchmark, report):
    from repro.workloads.analysis import predicted_acceptance

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report.append("Extended: acceptance ratio vs offered load "
                  f"(bottleneck {BOTTLENECK_MBPS:.0f} Mb/s)")
    report.append("  load  offered  accepted  ratio   carried   Erlang-B")
    for lf, r in results.items():
        predicted = predicted_acceptance(
            arrival_rate_per_s=lf * BOTTLENECK_MBPS / (10.0 * 300.0),
            mean_duration_s=300.0,
            mean_rate_mbps=10.0,
            bottleneck_mbps=BOTTLENECK_MBPS,
        )
        report.append(
            f"  {lf:>4.2f}  {r.offered:>7d}  {r.accepted:>8d}"
            f"  {r.acceptance_ratio:5.2f}   {r.carried_fraction:5.2f}"
            f"     {predicted:5.2f}"
        )
    # The loss-system shape:
    assert results[0.25].acceptance_ratio > 0.95
    assert results[0.5].acceptance_ratio > 0.85
    assert results[4.0].acceptance_ratio < results[0.5].acceptance_ratio
    # Carried volume is monotone non-increasing in relative terms...
    ratios = [results[lf].acceptance_ratio for lf in LOAD_FACTORS]
    assert all(a >= b - 0.05 for a, b in zip(ratios, ratios[1:]))
    # ...and the carried fraction at 4x load is roughly 1/4 (saturation).
    assert results[4.0].carried_fraction == pytest.approx(0.25, abs=0.15)
