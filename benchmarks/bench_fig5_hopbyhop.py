"""E5 / Figure 5: hop-by-hop signalling coupled with a CPU reservation.

The figure shows the GARA API combining a multi-domain network
reservation with a CPU reservation in domain C.  The benchmark times the
full co-reservation (CPU slot + linked network reservation validated by
C's policy) and asserts the coupling semantics.
"""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.errors import CoReservationError
from repro.gara.api import GaraAPI, ResourceSpec
from repro.gara.coreservation import CoReservationAgent
from repro.gara.resources import CPUManager


@pytest.fixture(scope="module")
def setup():
    tb = build_linear_testbed(["A", "B", "C"])
    tb.set_policy(
        "C", "If HasValidCPUResv(RAR)\n    Return GRANT\nReturn DENY"
    )
    api = GaraAPI(tb.hop_by_hop)
    api.register_cpu_manager(CPUManager("cluster-C", 1024.0, domain="C"))
    agent = CoReservationAgent(api)
    alice = tb.add_user("A", "Alice")
    return tb, api, agent, alice


def network_spec():
    return ResourceSpec.make(
        "network",
        source_host="h0.A", destination_host="h0.C",
        source_domain="A", destination_domain="C",
        rate_mbps=10.0, start=0.0, end=3600.0,
    )


def test_fig5_coupled_reservation(benchmark, setup, report):
    tb, api, agent, alice = setup

    def run():
        bundle = agent.reserve_all(
            alice,
            [
                ResourceSpec.make(
                    "cpu", domain="C", cpus=4.0, start=0.0, end=3600.0
                ),
                network_spec(),
            ],
        )
        agent.release_all(bundle)
        return bundle

    bundle = benchmark(run)
    assert len(bundle.reservations) == 2
    net = bundle.by_type("network")[0]
    # The CPU handle was linked into the network request...
    linked = dict(net.outcome.verified.request.linked_reservations)
    assert "cpu" in linked
    report.append("Figure 5: CPU + network co-reservation via the GARA API")
    report.append(f"  linked CPU handle: {linked['cpu']}")
    report.append(f"  network path     : {' -> '.join(net.outcome.path)}")


def test_fig5_network_alone_denied(benchmark, setup, report):
    """Without the CPU reservation, domain C's interdomain policy
    dependency denies the network request."""
    tb, api, agent, alice = setup

    def run():
        try:
            agent.reserve_all(alice, [network_spec()])
            return None
        except CoReservationError as exc:
            return exc

    exc = benchmark(run)
    assert exc is not None
    assert "denied by C" in str(exc)
    report.append("Figure 5: network without CPU resv -> denied by C "
                  "(interdomain policy dependency)")
