"""Telemetry overhead: the flight recorder's price on the hot path.

Not a paper figure — the cost side of PR 9's observability tentpole.
The monitored loop (sample a telemetry frame after every reservation,
step the alert engine over the growing store) must stay cheap enough
to leave on: the claimed shape, asserted here and recorded in the
BENCH trajectory's ``telemetry_overhead`` section, is that end-to-end
signalling with the recorder **on** runs in under 2x the recorder-off
time.  The gate compares best-of-N round times (means are also
recorded) so a one-off scheduler hiccup on the CI box cannot flip it.
"""

import time

import pytest

from repro.core.testbed import build_linear_testbed
from repro.obs import metrics as obs_metrics
from repro.obs.telemetry import (
    AlertEngine,
    FlightRecorder,
    default_rules,
)
# Aliased: pytest would otherwise collect the imported name as a test.
from repro.obs.telemetry import testbed_probes as fabric_probes

DOMAINS = ("A", "B", "C", "D")
RESERVATIONS = 30
ROUNDS = 3
#: The acceptance gate: recorder-on / recorder-off best-round ratio.
MAX_OVERHEAD_RATIO = 2.0


def run_scenario(record: bool) -> int:
    """Signal RESERVATIONS end-to-end reservations; with *record*, run
    the full monitored loop (frame sample + alert-engine step per
    reservation).  Returns the frame count (0 when off)."""
    with obs_metrics.use_registry() as registry:
        testbed = build_linear_testbed(list(DOMAINS))
        user = testbed.add_user(DOMAINS[0], "Alice")
        recorder = engine = None
        if record:
            recorder = FlightRecorder()
            for probe in fabric_probes(testbed):
                recorder.add_probe(probe)
            engine = AlertEngine(default_rules())
        for index in range(RESERVATIONS):
            testbed.reserve(
                user, source=DOMAINS[0], destination=DOMAINS[-1],
                bandwidth_mbps=1.0, duration=600.0,
            )
            if recorder is not None:
                now = float(index + 1)
                recorder.sample(now, registry=registry)
                engine.step(recorder.store, now)
    return recorder.frames if recorder is not None else 0


def _time_rounds(record: bool, rounds: int = ROUNDS) -> list[float]:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        run_scenario(record)
        times.append(time.perf_counter() - start)
    return times


def telemetry_overhead_section(rounds: int = ROUNDS) -> dict:
    """The recorder-off/on comparison recorded in BENCH_<n>.json."""
    run_scenario(False)  # warm caches before either side is timed
    off = _time_rounds(False, rounds)
    on = _time_rounds(True, rounds)
    best_ratio = min(on) / min(off) if min(off) > 0 else float("inf")
    mean_ratio = (
        (sum(on) / len(on)) / (sum(off) / len(off))
        if sum(off) > 0 else float("inf")
    )
    return {
        "method": (
            f"{RESERVATIONS} end-to-end reservations over "
            f"{len(DOMAINS)} domains, one telemetry frame + alert-engine "
            f"step per reservation when recording; best of {rounds} "
            "rounds per side after a warmup run"
        ),
        "recorder_off_best_s": round(min(off), 6),
        "recorder_off_mean_s": round(sum(off) / len(off), 6),
        "recorder_on_best_s": round(min(on), 6),
        "recorder_on_mean_s": round(sum(on) / len(on), 6),
        "overhead_ratio_best": round(best_ratio, 4),
        "overhead_ratio_mean": round(mean_ratio, 4),
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
    }


@pytest.mark.parametrize("record", [False, True],
                         ids=["recorder-off", "recorder-on"])
def test_signalling_with_recorder(record, benchmark, report):
    frames = benchmark.pedantic(
        run_scenario, args=(record,), rounds=ROUNDS, iterations=1,
        warmup_rounds=1,
    )
    if record:
        assert frames == RESERVATIONS
    report.append(
        f"telemetry recorder {'on ' if record else 'off'}: "
        f"{RESERVATIONS} reservations, {frames} frame(s)"
    )


def test_recorder_overhead_under_gate(report):
    section = telemetry_overhead_section()
    report.append(
        f"recorder overhead: best {section['overhead_ratio_best']:.2f}x, "
        f"mean {section['overhead_ratio_mean']:.2f}x "
        f"(gate {MAX_OVERHEAD_RATIO:.1f}x)"
    )
    assert section["overhead_ratio_best"] < MAX_OVERHEAD_RATIO, (
        "flight recorder costs "
        f"{section['overhead_ratio_best']:.2f}x on the signalling path "
        f"(gate: {MAX_OVERHEAD_RATIO:.1f}x): {section}"
    )
