"""Ablation / §6.4: the acceptable-trust-chain-depth policy.

"Checking its own security policy which might limit the depth of an
acceptable trust chain, BB_C may accept the public key of cert_A ..."

The depth knob trades reachability against exposure: a verifier at the
end of a k-domain path sees the user at introduction depth k-1.  This
ablation sweeps the destination's ``max_introduction_depth`` against the
path length and records exactly where reservations start failing — plus
the cost: stricter depth means shorter feasible paths, not slower
verification (verification cost is set by the chain actually presented).
"""

import pytest

from repro.core.testbed import build_linear_testbed
from repro.crypto.truststore import TrustPolicy

PATHS = [3, 5, 7]
DEPTHS = [1, 2, 4, 8]


def attempt(path_len, depth):
    domains = [f"D{i}" for i in range(path_len)]
    tb = build_linear_testbed(
        domains,
        hosts_per_domain=1,
        trust_policy=TrustPolicy(
            max_introduction_depth=depth, require_ca_issued_peers=False
        ),
    )
    alice = tb.add_user(domains[0], "Alice")
    outcome = tb.reserve(
        alice, source=domains[0], destination=domains[-1], bandwidth_mbps=1.0
    )
    return outcome


def run_matrix():
    return {
        (k, d): attempt(k, d).granted for k in PATHS for d in DEPTHS
    }


def test_ablation_trust_depth(benchmark, report):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report.append("Trust-depth ablation: reservation feasible? "
                  "(path length x max introduction depth)")
    header = "  path\\depth " + "".join(f"{d:>6d}" for d in DEPTHS)
    report.append(header)
    for k in PATHS:
        row = f"  {k:>10d} " + "".join(
            f"{'  yes' if matrix[(k, d)] else '   no':>6s}" for d in DEPTHS
        )
        report.append(row)
    # The verifier at hop i sees the user at depth i; the deepest check is
    # at the destination: depth k-1.  Feasible iff depth >= k-1.
    for k in PATHS:
        for d in DEPTHS:
            assert matrix[(k, d)] == (d >= k - 1)


def test_ablation_depth_denial_location(benchmark, report):
    """With depth policy 2, a 5-domain request dies exactly at the first
    broker that would need depth 3 — the fourth domain."""
    outcome = benchmark.pedantic(
        attempt, args=(5, 2), rounds=1, iterations=1
    )
    assert not outcome.granted
    assert outcome.denial_domain == "D3"
    assert "depth" in outcome.denial_reason
    report.append(
        f"Depth-2 policy on a 5-domain path: denied at {outcome.denial_domain} "
        f"({outcome.denial_reason.split(':')[-1].strip()})"
    )
