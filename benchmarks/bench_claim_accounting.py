"""C5 / §6.4: the transitive billing scheme.

"Whenever a domain actually bills the requesting entity for the use of
the network service, SLAs are already used to set up a transitive billing
relation in multi-domain networks."

The benchmark generates the invoice cascade for reservations across
2–8 domains and asserts the conservation properties: the user's single
invoice equals the sum of every domain's own tariffed charge, and each
transit domain nets exactly its own charge.
"""

import pytest

from repro.accounting.billing import TransitiveBilling
from repro.core.testbed import build_linear_testbed


def run_billing(k):
    domains = [f"D{i}" for i in range(k)]
    tb = build_linear_testbed(domains, hosts_per_domain=1)
    alice = tb.add_user("D0", "Alice")
    # Heterogeneous tariffs per domain.
    for i, d in enumerate(domains):
        for sla in tb.brokers[d].slas_in.values():
            sla.price_per_mbps_hour = 1.0 + i
    outcome = tb.reserve(
        alice, source=domains[0], destination=domains[-1], bandwidth_mbps=10.0,
        duration=3600.0,
    )
    billing = TransitiveBilling(tb.brokers, user_tariff_per_mbps_hour=0.5)
    return billing.bill(outcome)


@pytest.mark.parametrize("k", [2, 4, 8])
def test_c5_invoice_cascade(benchmark, report, k):
    run = benchmark.pedantic(run_billing, args=(k,), rounds=2, iterations=1)
    assert TransitiveBilling.conservation_holds(run, tol=1e-6)
    assert len(run.invoices) == k  # one bill per SLA hop + the user's
    user_invoice = run.invoice_to_user()
    report.append(
        f"C5 [{k} domains] user pays {user_invoice.amount:9.2f} = "
        f"sum of own charges {sum(i.own_charge for i in run.invoices):9.2f} "
        f"over {run.usage_mbps_hours:.1f} Mb/s-hours"
    )
    # Every transit domain nets exactly its own tariffed charge.
    for inv in run.invoices:
        net = TransitiveBilling.net_position(run, inv.issuer)
        assert net == pytest.approx(inv.own_charge)


def test_c5_billing_throughput(benchmark):
    """Invoice generation itself must be negligible next to signalling."""
    tb = build_linear_testbed(["A", "B", "C"])
    alice = tb.add_user("A", "Alice")
    outcome = tb.reserve(
        alice, source="A", destination="C", bandwidth_mbps=10.0
    )
    billing = TransitiveBilling(tb.brokers)

    run = benchmark(billing.bill, outcome)
    assert TransitiveBilling.conservation_holds(run)
