"""E2 / Figure 2: the multi-domain reservation problem.

Alice's reservation from domain A to domain C must obtain a local
reservation in every domain on the path.  The benchmark times one
complete hop-by-hop end-to-end reservation (verification, policy,
admission, capability delegation, approval propagation — everything) and
asserts that all three domains granted.
"""

import pytest

from repro.core.testbed import build_linear_testbed


@pytest.fixture(scope="module")
def testbed():
    tb = build_linear_testbed(["A", "B", "C"])
    tb.add_user("A", "Alice")
    return tb


def reserve_and_release(testbed):
    alice = testbed.users["Alice"]
    outcome = testbed.reserve(
        alice, source="A", destination="C", bandwidth_mbps=10.0
    )
    if outcome.granted:
        testbed.hop_by_hop.cancel(outcome)
    return outcome


def test_fig2_end_to_end_reservation(benchmark, testbed, report):
    outcome = benchmark(reserve_and_release, testbed)
    assert outcome.granted
    assert set(outcome.handles) == {"A", "B", "C"}
    assert outcome.messages == 6
    report.append("Figure 2: one reservation, three local admissions")
    report.append(f"  domains granted : {sorted(outcome.handles)}")
    report.append(f"  messages        : {outcome.messages}")
    report.append(f"  signalling time : {outcome.latency_s * 1000:.1f} ms (model)")


def test_fig2_with_real_rsa(benchmark, report):
    """The same reservation with genuine 512-bit RSA signatures everywhere
    (the crypto cost the 2001 deployment would have paid)."""
    tb = build_linear_testbed(["A", "B", "C"], scheme="rsa")
    alice = tb.add_user("A", "Alice")

    def run():
        outcome = tb.reserve(
            alice, source="A", destination="C", bandwidth_mbps=10.0
        )
        tb.hop_by_hop.cancel(outcome)
        return outcome

    outcome = benchmark(run)
    assert outcome.granted
    report.append("Figure 2 with real RSA-512 signatures: granted")
