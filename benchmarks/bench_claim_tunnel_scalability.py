"""C2 / §1 + §6.4: tunnels make many parallel flows scalable.

"If a set of applications creates many parallel flows between the same
two end-domains, it is infeasible to negotiate an end-to-end reservation
for each one."

Sweep the number of parallel flows N and compare total signalling
messages and intermediate-broker work for (a) one hop-by-hop reservation
per flow versus (b) one tunnel plus N end-domain-only allocations.
Asserted shape: a crossover at small N (the tunnel amortizes its 2k-setup
after k/(k-2) flows), then a widening win that approaches the k/2 per-flow
message ratio.
"""

import pytest

from repro.core.testbed import build_linear_testbed

DOMAINS = ["A", "B", "C", "D", "E"]  # k = 5
FLOW_COUNTS = [1, 2, 5, 10, 20, 50]


def messages_per_flow_world(n):
    tb = build_linear_testbed(DOMAINS, hosts_per_domain=1)
    alice = tb.add_user("A", "Alice")
    total = 0
    for _ in range(n):
        outcome = tb.reserve(
            alice, source="A", destination="E", bandwidth_mbps=1.0
        )
        assert outcome.granted
        total += outcome.messages
    transit_work = sum(
        len(tb.brokers[d].reservations.all()) for d in DOMAINS[1:-1]
    )
    return total, transit_work


def messages_tunnel_world(n):
    tb = build_linear_testbed(DOMAINS, hosts_per_domain=1)
    alice = tb.add_user("A", "Alice")
    request = tb.make_request(
        source="A", destination="E", bandwidth_mbps=float(max(n, 1))
    )
    tunnel, outcome = tb.tunnels.establish(alice, request)
    total = outcome.messages
    for _ in range(n):
        _, _, msgs = tb.tunnels.allocate_flow(tunnel.tunnel_id, alice, 1.0)
        total += msgs
    transit_work = sum(
        len(tb.brokers[d].reservations.all()) for d in DOMAINS[1:-1]
    )
    return total, transit_work


def run_sweep():
    rows = []
    for n in FLOW_COUNTS:
        per_flow, per_flow_transit = messages_per_flow_world(n)
        tunnel, tunnel_transit = messages_tunnel_world(n)
        rows.append(
            {
                "flows": n,
                "per_flow_msgs": per_flow,
                "tunnel_msgs": tunnel,
                "per_flow_transit": per_flow_transit,
                "tunnel_transit": tunnel_transit,
            }
        )
    return rows


def test_c2_tunnel_scalability(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    k = len(DOMAINS)
    report.append(f"C2: N parallel flows over {k} domains — total messages")
    report.append("  flows  per-flow  tunnel  transit-broker reservations "
                  "(per-flow vs tunnel)")
    for row in rows:
        report.append(
            f"  {row['flows']:>5d}  {row['per_flow_msgs']:>8d}"
            f"  {row['tunnel_msgs']:>6d}"
            f"        {row['per_flow_transit']:>4d} vs {row['tunnel_transit']}"
        )
    # Exact models: per-flow = 2kN; tunnel = 2k + 4N.
    for row in rows:
        assert row["per_flow_msgs"] == 2 * k * row["flows"]
        assert row["tunnel_msgs"] == 2 * k + 4 * row["flows"]
        # Intermediate brokers hold exactly one reservation in the tunnel
        # world regardless of N.
        assert row["tunnel_transit"] == k - 2
        assert row["per_flow_transit"] == (k - 2) * row["flows"]
    # Crossover: 2kN > 2k + 4N  <=>  N > k/(k-3)... for k=5: N >= 2.
    assert rows[0]["tunnel_msgs"] > rows[0]["per_flow_msgs"]  # N=1: setup dominates
    for row in rows[1:]:
        assert row["tunnel_msgs"] < row["per_flow_msgs"]
    # Asymptotic ratio approaches 2k/4 = k/2.
    last = rows[-1]
    assert last["per_flow_msgs"] / last["tunnel_msgs"] > 0.75 * (k / 2)


def test_c2_allocation_wallclock(benchmark):
    """Wall-clock cost of one intra-tunnel allocation (pure end-domain
    bookkeeping — no crypto, no intermediate domains)."""
    tb = build_linear_testbed(DOMAINS, hosts_per_domain=1)
    alice = tb.add_user("A", "Alice")
    tunnel, _ = tb.tunnels.establish(
        alice, tb.make_request(source="A", destination="E",
                               bandwidth_mbps=150.0)
    )

    def allocate_release():
        alloc, _, _ = tb.tunnels.allocate_flow(tunnel.tunnel_id, alice, 1.0)
        tb.tunnels.release_flow(tunnel.tunnel_id, alloc.allocation_id)

    benchmark(allocate_release)
