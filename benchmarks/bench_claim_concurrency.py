"""C5: concurrent signalling throughput and verification-cache payoff.

The north star ("heavy traffic from millions of users") turns on two
engine properties this benchmark measures together:

* **parallelism across disjoint paths** — eight reservations spanning
  eight disjoint domain pairs of a 16-domain chain have no admission
  ledger in common, so a :class:`~repro.core.concurrent.ConcurrentSignaller`
  with 8 workers completes the batch in roughly one reservation's
  modelled latency while a serial loop pays the sum (the >= 2x claim);
* **verification caching** — re-signalling the same credentials makes
  the trust-chain (RAR) and capability-delegation checks cache hits,
  so the crypto cost per reservation falls after the first batch.

Worker count comes from ``REPRO_BENCH_CONCURRENCY`` (the ``repro bench
--concurrency N`` flag); default 8.  Throughput is **modelled time**
(the greedy domain/worker schedule documented in
:mod:`repro.core.concurrent`), so the claim is about the system model,
not the GIL.
"""

import os

import pytest

from repro.core.concurrent import ReservationJob, run_serial
from repro.core.testbed import build_linear_testbed
from repro.crypto import cache as verification_cache

#: Worker threads for the headline batch (``repro bench --concurrency N``).
CONCURRENCY = int(os.environ.get("REPRO_BENCH_CONCURRENCY", "8"))

DOMAINS = [f"D{i:02d}" for i in range(16)]


@pytest.fixture(scope="module")
def setup():
    tb = build_linear_testbed(DOMAINS)
    # Grid-login every user into a community so each reservation carries a
    # capability chain — that is what the delegation cache accelerates.
    cas = tb.add_cas("ESnet")
    users = {}
    for i in range(0, len(DOMAINS), 2):
        src = DOMAINS[i]
        user = tb.add_user(src, f"user-{src}")
        cas.grant(user.dn, ["member"])
        user.grid_login(cas, validity_s=10 * 24 * 3600.0)
        users[src] = user
    return tb, users


def disjoint_jobs(tb, users):
    """Eight reservations over disjoint adjacent domain pairs."""
    jobs = []
    for i in range(0, len(DOMAINS), 2):
        src, dst = DOMAINS[i], DOMAINS[i + 1]
        jobs.append(
            ReservationJob(
                user=users[src],
                request=tb.make_request(
                    source=src, destination=dst, bandwidth_mbps=10.0,
                    start=0.0, duration=3600.0,
                ),
            )
        )
    return jobs


def release_all(tb, batch):
    for item in batch.scheduled:
        if item.granted and item.outcome is not None:
            tb.hop_by_hop.cancel(item.outcome)


def test_c5_concurrent_throughput(benchmark, setup, report):
    tb, users = setup
    jobs = disjoint_jobs(tb, users)

    # Serial baseline (not benchmarked): same jobs, one at a time.
    serial = run_serial(tb.hop_by_hop, jobs)
    assert all(s.granted for s in serial.scheduled), [
        s.error for s in serial.scheduled
    ]
    release_all(tb, serial)

    signaller = tb.concurrent_signaller(concurrency=CONCURRENCY)

    def run_batch():
        batch = signaller.run(jobs)
        release_all(tb, batch)
        return batch

    batch = benchmark(run_batch)

    # Identical decisions: concurrency must not change what is admitted.
    assert [s.granted for s in batch.scheduled] == [
        s.granted for s in serial.scheduled
    ]
    speedup = batch.throughput_rps / serial.throughput_rps
    if CONCURRENCY >= 2:
        # Disjoint paths: the modelled makespan collapses from the serial
        # sum to ~one reservation's latency.
        assert speedup >= 2.0, (
            f"concurrency {CONCURRENCY} gave only {speedup:.2f}x over serial"
        )
    report.append(
        f"C5 [{len(jobs)} disjoint jobs, concurrency {CONCURRENCY}] "
        f"modelled throughput {batch.throughput_rps:.1f} rps "
        f"vs serial {serial.throughput_rps:.1f} rps ({speedup:.2f}x)"
    )

    # The repeated batches re-verified the same credentials: record the
    # per-cache hit counts as named counters so the BENCH trajectory
    # entry carries them (label sets are summed away by the merger).
    caches = verification_cache.get_caches()
    assert caches is not None
    from repro.obs import metrics as obs_metrics

    registry = obs_metrics.get_registry()
    assert registry is not None
    for counter_name, cache_name in (
        ("trust_cache_hits_total", "rar"),
        ("capability_cache_hits_total", "delegation"),
        ("signature_cache_hits_total", "signature"),
    ):
        stats = caches.stats(cache_name)
        registry.counter(
            counter_name,
            f"Verification cache hits ({cache_name}) during the benchmark",
        ).inc(float(stats.hits))
        assert stats.hits > 0, (
            f"{cache_name} cache saw no hits across repeated batches"
        )
        report.append(
            f"C5 {cache_name} cache: {stats.hits} hits / "
            f"{stats.misses} misses (hit rate {stats.hit_rate:.2f})"
        )


def test_c5_shared_path_matches_serial(benchmark, setup, report):
    """Jobs contending for one bottleneck domain pair: the ticket
    discipline serializes them, so grants/denials and the capacity
    ledger match the serial run exactly (here: the link fits 7 of 8)."""
    tb, users = setup
    src, dst = DOMAINS[0], DOMAINS[1]
    user = users[src]
    jobs = [
        ReservationJob(
            user=user,
            request=tb.make_request(
                source=src, destination=dst, bandwidth_mbps=20.0,
                start=0.0, duration=3600.0,
            ),
        )
        for _ in range(8)
    ]

    serial = run_serial(tb.hop_by_hop, jobs)
    serial_granted = [s.granted for s in serial.scheduled]
    release_all(tb, serial)

    signaller = tb.concurrent_signaller(concurrency=CONCURRENCY)

    def run_batch():
        batch = signaller.run(jobs)
        granted = [s.granted for s in batch.scheduled]
        release_all(tb, batch)
        return granted

    granted = benchmark(run_batch)
    assert granted == serial_granted
    # 155 Mb/s inter-domain link, 20 Mb/s each: exactly 7 fit.
    assert granted.count(True) == 7
    report.append(
        f"C5 bottleneck batch: {granted.count(True)}/8 granted, "
        f"identical to serial under concurrency {CONCURRENCY}"
    )
