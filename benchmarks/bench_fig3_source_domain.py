"""E3 / Figure 3: source-domain-based signalling (Approach 1).

An end-to-end agent contacts every BB directly.  The benchmark reproduces
both properties the paper attributes to this design: it *fails* wherever
the user lacks a direct trust relationship, and — once universal trust is
provisioned out of band — the concurrent variant is the latency winner
(reservations "can be made in parallel", §3).
"""

import pytest

from repro.core.testbed import build_linear_testbed


@pytest.fixture(scope="module")
def trusted_testbed():
    tb = build_linear_testbed(["A", "B", "C"])
    alice = tb.add_user("A", "Alice")
    for domain in ("B", "C"):
        tb.introduce_user_to(alice, domain)
    return tb


def test_fig3_requires_universal_trust(benchmark, report):
    tb = build_linear_testbed(["A", "B", "C"])
    alice = tb.add_user("A", "Alice")
    request = tb.make_request(source="A", destination="C", bandwidth_mbps=10.0)

    outcome = benchmark(tb.end_to_end_agent.reserve, alice, request)
    assert not outcome.granted
    assert "no trust relationship" in outcome.failures["B"]
    report.append("Figure 3, flaw 1: without per-domain trust the agent fails")
    report.append(f"  failures: {outcome.failures}")


def test_fig3_sequential(benchmark, trusted_testbed, report):
    tb = trusted_testbed
    alice = tb.users["Alice"]
    request = tb.make_request(source="A", destination="C", bandwidth_mbps=10.0)

    def run():
        outcome = tb.end_to_end_agent.reserve(alice, request)
        tb.end_to_end_agent.release(outcome)
        return outcome

    outcome = benchmark(run)
    assert outcome.complete
    report.append(
        f"Figure 3 sequential : latency model {outcome.latency_s * 1000:.1f} ms, "
        f"{outcome.messages} messages"
    )


def test_fig3_concurrent_faster(benchmark, trusted_testbed, report):
    tb = trusted_testbed
    alice = tb.users["Alice"]
    request = tb.make_request(source="A", destination="C", bandwidth_mbps=10.0)

    def run():
        outcome = tb.end_to_end_agent.reserve(alice, request, concurrent=True)
        tb.end_to_end_agent.release(outcome)
        return outcome

    concurrent = benchmark(run)
    sequential = tb.end_to_end_agent.reserve(alice, request)
    tb.end_to_end_agent.release(sequential)
    assert concurrent.complete
    # §3: parallel contact beats sequential contact.
    assert concurrent.latency_s < sequential.latency_s
    report.append(
        f"Figure 3 concurrent : latency model {concurrent.latency_s * 1000:.1f} ms "
        f"(vs sequential {sequential.latency_s * 1000:.1f} ms)"
    )
