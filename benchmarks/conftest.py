"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one experiment from DESIGN.md §5
(E1–E7 = Figures 1–7, C1–C5 = the paper's qualitative performance
claims).  Benchmarks both *measure* (pytest-benchmark timings) and
*assert the claimed shape* — who wins, by roughly what factor — so a
benchmark run doubles as a reproduction check.  Human-readable rows are
printed via the ``report`` fixture (visible with ``-s`` and in the
captured output summary).
"""

import pytest


@pytest.fixture()
def report():
    """Collects printable result rows and emits them at teardown."""
    rows: list[str] = []
    yield rows
    if rows:
        print()
        for row in rows:
            print(row)
