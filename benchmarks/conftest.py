"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one experiment from DESIGN.md §5
(E1–E7 = Figures 1–7, C1–C5 = the paper's qualitative performance
claims).  Benchmarks both *measure* (pytest-benchmark timings) and
*assert the claimed shape* — who wins, by roughly what factor — so a
benchmark run doubles as a reproduction check.  Human-readable rows are
printed via the ``report`` fixture (visible with ``-s`` and in the
captured output summary).
"""

import contextlib
import json
import os
import pathlib

import pytest

from repro.crypto import cache as verification_cache
from repro.obs import audit as obs_audit
from repro.obs import export, metrics

#: Where per-benchmark metrics snapshots land (git-ignored).
SNAPSHOT_DIR = pathlib.Path(__file__).parent / ".metrics"

#: Where per-benchmark telemetry recordings land (git-ignored;
#: ``REPRO_BENCH_RECORD=1`` / ``repro bench --record``).
TELEMETRY_DIR = pathlib.Path(__file__).parent / ".telemetry"


@pytest.fixture()
def report():
    """Collects printable result rows and emits them at teardown."""
    rows: list[str] = []
    yield rows
    if rows:
        print()
        for row in rows:
            print(row)


@pytest.fixture(autouse=True)
def metrics_snapshot(request):
    """Run every benchmark under a fresh metrics registry and snapshot it.

    The JSON snapshot (one file per test, under ``benchmarks/.metrics/``)
    lets a run be diffed against an earlier one — e.g. "did the message
    count per reservation change?" — without touching the benchmark code;
    ``repro metrics --diff old.json new.json`` prints the delta.
    Timing-sensitive benchmarks that must measure the *disabled* path can
    opt out with ``@pytest.mark.no_metrics``.

    Verification caches are enabled alongside the registry, so every
    snapshot also carries ``verification_cache_events_total`` hit/miss
    counters — the trajectory's record of how much crypto each
    benchmark actually re-ran.

    ``repro bench --audit`` (env ``REPRO_BENCH_AUDIT=1``) additionally
    runs every benchmark under a decision-provenance ledger, so the
    trajectory can price the ledger's overhead on the signalling path.

    ``repro bench --record`` (env ``REPRO_BENCH_RECORD=1``) additionally
    samples one telemetry frame of the benchmark's registry into a
    ``.tsrec`` under ``benchmarks/.telemetry/`` — every benchmark run
    then leaves a flight recording that ``repro top --replay`` and
    ``repro slo --record`` can read.
    """
    if request.node.get_closest_marker("no_metrics"):
        yield
        return
    ledger_scope = (
        obs_audit.use_ledger()
        if os.environ.get("REPRO_BENCH_AUDIT") == "1"
        else contextlib.nullcontext()
    )
    with metrics.use_registry() as registry:
        with verification_cache.use_caches(), ledger_scope:
            yield
    safe = request.node.name.replace("/", "_").replace("::", "-")
    if os.environ.get("REPRO_BENCH_RECORD") == "1":
        from repro.obs.telemetry import FlightRecorder, RecordingWriter

        TELEMETRY_DIR.mkdir(exist_ok=True)
        with RecordingWriter.open(
            TELEMETRY_DIR / f"{safe}.tsrec",
            meta={"benchmark": request.node.name},
        ) as writer:
            FlightRecorder(writer=writer).sample(1.0, registry=registry)
    snapshot = export.json_snapshot(registry)
    if not snapshot:
        return
    SNAPSHOT_DIR.mkdir(exist_ok=True)
    path = SNAPSHOT_DIR / f"{safe}.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
