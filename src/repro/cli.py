"""Command-line interface: drive the testbed without writing Python.

Subcommands:

* ``reserve`` — build a linear testbed and make one end-to-end
  reservation with any of the three signalling approaches;
* ``policy-check`` — parse a policy file in the paper's syntax and
  evaluate it against request parameters given as flags (a policy
  linter/debugger for domain administrators);
* ``attack`` — adversarial scenarios: with no flags, the Figure 4
  misreservation replay on the DiffServ simulator; with ``--persona``,
  a seeded survivability run mixing honest load with one attack persona
  (flood, revocation-storm, byzantine-broker, tunnel-squatter) and
  reporting what honest traffic retains with defenses off vs on;
  ``--gate`` exits nonzero on honest-SLO violations or audit
  reconciliation failures;
* ``metrics`` — run reservations with the observability substrate
  enabled and dump the metrics registry (Prometheus text or JSON);
  ``--diff A.json B.json`` instead diffs two saved JSON snapshots;
* ``trace`` — run one reservation with span tracing enabled, print the
  span tree, and cross-check it against the envelope-derived path;
  ``--critical-path`` prints the latency attribution table instead;
* ``bench`` — run the ``benchmarks/`` suite headlessly and append a
  ``BENCH_<n>.json`` trajectory entry at the repo root; ``--compare``
  gates on regressions versus the last committed entry;
* ``slo`` — run reservations under observability and evaluate the
  declarative SLOs (latency quantiles, denial rate, breaker opens),
  printing per-objective burn rates;
* ``lint`` — run the repo's custom AST lint rules (REP101..REP112) over
  the ``repro`` package (or given paths); ``--select``/``--ignore``
  filter rules; ``--concurrency`` runs the whole-program concurrency
  pass instead (REP120 lock-order cycles, REP121 unguarded guarded-state
  access).  Exit codes: 0 clean, 1 findings, 2 analyzer crash/usage;
* ``lockgraph`` — print the may-acquire-while-holding lock graph the
  concurrency pass inferred (``--dot`` for Graphviz, ``--json``);
* ``lint-policy`` — statically verify policy files in the paper's
  syntax: unreachable branches, contradictory conditions, non-exhaustive
  chains, always-DENY subtrees;
* ``chaos`` — run the seeded single-fault chaos matrix against fresh
  testbeds and report invariant violations (capacity leaks, stuck
  reservations, unreleased channels); exits nonzero on any violation;
  ``--witness`` additionally records real lock acquisition orders and
  cross-checks them against the static lock-order graph; ``--record``
  samples campaign telemetry per trial into an append-only ``.tsrec``
  and steps the chaos alert profile over it (``--fail-on-critical``
  gates on zero CRITICAL firings);
* ``top`` — the fleet health dashboard: per-broker health badges,
  utilization sparklines, admission/denial rates, backlog, and the
  alert table; live over a fresh workload, or ``--replay FILE.tsrec``
  over a saved recording (``--follow`` re-renders frame by frame as
  the incident unfolded; ``--fail-on-critical`` / ``--expect-firing``
  are CI gates over the replayed alert stream);
* ``timeline`` — one merged, time-ordered view of obs events, alert
  transitions, audit decision records, and spans, filtered to a
  correlation id or a ``START:END`` window; reads a recording via
  ``--replay`` and/or a saved ledger via ``--ledger``.

``-v`` / ``-vv`` (before the subcommand) raises logging to INFO / DEBUG.

Examples::

    python -m repro reserve --domains A,B,C --source A --dest C --rate 10
    python -m repro policy-check policy.txt --user Alice --bw 8 --time 14
    python -m repro attack
    python -m repro attack --persona flood --seed 2001 --gate
    python -m repro metrics --domains A,B,C --runs 5 --format prom
    python -m repro metrics --diff before.json after.json
    python -m repro -v trace --domains A,B,C,D
    python -m repro trace --domains A,B,C,D --critical-path
    python -m repro bench --quick --compare
    python -m repro slo --runs 20 --spec objectives.json
    python -m repro lint --format json
    python -m repro lint --concurrency
    python -m repro lockgraph --dot
    python -m repro lint-policy examples/policies/*.policy
    python -m repro chaos --seed 7 --trials 200
    python -m repro chaos --seed 7 --trials 50 --witness
    python -m repro chaos --seed 7 --trials 50 --record chaos.tsrec
    python -m repro attack --persona flood --defenses off --record f.tsrec
    python -m repro top --replay f.tsrec --expect-firing
    python -m repro timeline 40:80 --replay f.tsrec
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.testbed import build_linear_testbed
from repro.errors import PolicySyntaxError, ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-domain QoS reservations (HPDC 2001 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log more (-v: INFO, -vv: DEBUG); logs go to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reserve = sub.add_parser("reserve", help="make an end-to-end reservation")
    reserve.add_argument("--domains", default="A,B,C",
                         help="comma-separated chain of domains")
    reserve.add_argument("--source", default=None,
                         help="source domain (default: first)")
    reserve.add_argument("--dest", default=None,
                         help="destination domain (default: last)")
    reserve.add_argument("--rate", type=float, default=10.0,
                         help="bandwidth in Mb/s")
    reserve.add_argument("--duration", type=float, default=3600.0,
                         help="seconds")
    reserve.add_argument("--user", default="Alice")
    reserve.add_argument(
        "--approach", choices=("hop", "agent", "agent-concurrent", "stars"),
        default="hop", help="signalling approach",
    )

    check = sub.add_parser(
        "policy-check",
        help="evaluate a policy file (the paper's syntax) against a request",
    )
    check.add_argument("policy_file", help="path to the policy file, or '-'")
    check.add_argument("--user", default="Alice")
    check.add_argument("--bw", type=float, default=10.0, help="Mb/s")
    check.add_argument("--time", type=float, default=12.0,
                       help="time of day in hours (0-24)")
    check.add_argument("--avail-bw", type=float, default=float("inf"))
    check.add_argument("--group", action="append", default=[],
                       help="verified group membership (repeatable)")
    check.add_argument("--capability-issuer", action="append", default=[],
                       help="verified capability community (repeatable)")
    check.add_argument("--linked", action="append", default=[],
                       help="linked reservation as kind=handle (repeatable)")
    check.add_argument("--reservation-type", default="Network")

    attack = sub.add_parser(
        "attack",
        help="adversarial scenarios: the Figure 4 misreservation replay "
             "(no flags) or a survivability run against one attack "
             "persona (--persona)",
    )
    attack.add_argument(
        "--persona", default=None,
        choices=("flood", "revocation-storm", "byzantine-broker",
                 "tunnel-squatter"),
        help="attack persona for a mixed honest+attack survivability "
             "run; omit for the legacy Figure 4 scenario")
    attack.add_argument("--seed", type=int, default=2001)
    attack.add_argument(
        "--attack-fraction", type=float, default=None,
        help="attack signals as a fraction of all signals, in (0,1); "
             "default is the persona's own intensity")
    attack.add_argument("--horizon", type=float, default=120.0,
                        help="simulated seconds of mixed load")
    attack.add_argument(
        "--defenses", choices=("off", "on", "both"), default="both",
        help="run with admission-plane defenses off, on, or both "
             "(the off/on pair is the survivability experiment)")
    attack.add_argument(
        "--slo-spec", default=None, metavar="FILE",
        help="JSON SLO spec evaluated over honest traffic "
             "(default: the harness honest SLOs)")
    attack.add_argument("--json", action="store_true",
                        help="emit the report(s) as JSON")
    attack.add_argument(
        "--gate", action="store_true",
        help="exit non-zero unless honest traffic meets its SLOs with "
             "defenses on; also reconciles the attack run's audit "
             "ledger")
    attack.add_argument(
        "--record", default=None, metavar="FILE.tsrec",
        help="flight-record the survivability run (telemetry frames, "
             "events, alert transitions) and report time-to-detect: "
             "attack onset vs the first CRITICAL alert; with "
             "--defenses both the defenses state is suffixed into the "
             "file name")

    workload = sub.add_parser(
        "workload",
        help="offered-load sweep: Poisson reservation arrivals vs admission",
    )
    workload.add_argument("--load", type=float, default=1.0,
                          help="offered load as a multiple of the bottleneck")
    workload.add_argument("--bottleneck", type=float, default=100.0,
                          help="interdomain capacity, Mb/s")
    workload.add_argument("--horizon", type=float, default=6000.0,
                          help="simulated seconds of arrivals")
    workload.add_argument("--seed", type=int, default=11)

    metrics = sub.add_parser(
        "metrics",
        help="run reservations with observability on and dump the registry",
    )
    metrics.add_argument("--domains", default="A,B,C")
    metrics.add_argument("--rate", type=float, default=10.0)
    metrics.add_argument("--duration", type=float, default=3600.0)
    metrics.add_argument("--user", default="Alice")
    metrics.add_argument("--runs", type=int, default=3,
                         help="how many reservations to signal")
    metrics.add_argument("--format", choices=("prom", "json"),
                         default="prom", help="exposition format")
    metrics.add_argument("--diff", nargs=2, metavar=("A.json", "B.json"),
                         default=None,
                         help="diff two saved JSON snapshots and exit "
                              "(runs no reservations; exit 1 when they "
                              "differ)")

    trace = sub.add_parser(
        "trace",
        help="trace one reservation and print its span tree",
    )
    trace.add_argument("--domains", default="A,B,C")
    trace.add_argument("--source", default=None)
    trace.add_argument("--dest", default=None)
    trace.add_argument("--rate", type=float, default=10.0)
    trace.add_argument("--duration", type=float, default=3600.0)
    trace.add_argument("--user", default="Alice")
    trace.add_argument("--critical-path", action="store_true",
                       help="attribute end-to-end wall time to named "
                            "hop/phase segments instead of printing the "
                            "span tree")

    bench = sub.add_parser(
        "bench",
        help="run the benchmark suite and append a BENCH_<n>.json "
             "trajectory entry at the repo root",
    )
    bench.add_argument("--quick", action="store_true",
                       help="only the two end-to-end signalling benchmarks "
                            "with minimal rounds (the CI gate)")
    bench.add_argument("--compare", action="store_true",
                       help="compare the fresh run against the latest "
                            "committed entry; exit 1 on regressions beyond "
                            "--threshold")
    bench.add_argument("--entry", type=int, default=None,
                       help="entry number to write (default: next in the "
                            "trajectory)")
    bench.add_argument("--threshold", type=float, default=2.0,
                       help="mean-slowdown ratio that counts as a "
                            "regression (default: 2.0)")
    bench.add_argument("--repo-root", default=".",
                       help="checkout containing benchmarks/ and the "
                            "BENCH_<n>.json trajectory")
    bench.add_argument("--keep-json", default=None, metavar="PATH",
                       help="also keep the raw pytest-benchmark JSON here")
    bench.add_argument("--concurrency", type=int, default=None, metavar="N",
                       help="worker threads for the concurrent-signalling "
                            "benchmark (exported as REPRO_BENCH_CONCURRENCY "
                            "to the pytest subprocess)")
    bench.add_argument("--audit", action="store_true",
                       help="run the benchmarks with the decision-provenance "
                            "ledger enabled (exported as REPRO_BENCH_AUDIT "
                            "to the pytest subprocess) to measure its "
                            "overhead")
    bench.add_argument("--record", action="store_true",
                       help="run the benchmarks with the telemetry flight "
                            "recorder sampling (exported as "
                            "REPRO_BENCH_RECORD to the pytest subprocess) "
                            "to measure its overhead")

    slo = sub.add_parser(
        "slo",
        help="run reservations under observability and evaluate the "
             "declarative SLOs; exit 1 when an objective is violated",
    )
    slo.add_argument("--spec", default=None,
                     help="JSON SLO spec file (default: the built-in "
                          "objectives)")
    slo.add_argument("--domains", default="A,B,C")
    slo.add_argument("--rate", type=float, default=10.0)
    slo.add_argument("--duration", type=float, default=3600.0)
    slo.add_argument("--user", default="Alice")
    slo.add_argument("--runs", type=int, default=5,
                     help="how many reservations to signal")
    slo.add_argument("--record", default=None, metavar="FILE.tsrec",
                     help="evaluate the objectives over a saved telemetry "
                          "recording instead of signalling fresh "
                          "reservations (latency quantiles from recorded "
                          "histogram gauges, rates from recorded events "
                          "or counters)")

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST lint rules; nonzero exit on findings",
        description="Run the repo's AST lint rules. Exit codes: "
                    "0 = clean, 1 = findings, 2 = analyzer crash or "
                    "bad usage (unknown rule, unreadable baseline).",
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--format", choices=("human", "json"), default="human",
                      help="output format")
    lint.add_argument("--rule", "--select", action="append", default=[],
                      dest="select", metavar="RULE",
                      help="only run this rule id (repeatable)")
    lint.add_argument("--ignore", action="append", default=[],
                      metavar="RULE",
                      help="skip this rule id (repeatable; applied "
                           "after --select)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--concurrency", action="store_true",
                      help="run the whole-program concurrency pass "
                           "(REP120 lock-order cycles, REP121 unguarded "
                           "guarded-state access) instead of the "
                           "per-file rules")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="with --concurrency: baseline file of "
                           "accepted findings (default: the committed "
                           "src/repro/analysis/concurrency/baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="with --concurrency: accept all current "
                           "findings into the baseline file and exit 0")

    lockgraph = sub.add_parser(
        "lockgraph",
        help="print the whole-program lock-order graph "
             "(informational; exit 2 only on analyzer crash)",
    )
    lockgraph.add_argument("paths", nargs="*",
                           help="files/directories to analyze (default: "
                                "the installed repro package)")
    lockgraph.add_argument("--dot", action="store_true",
                           help="emit Graphviz DOT (cycle edges in red)")
    lockgraph.add_argument("--json", action="store_true",
                           help="emit the graph as JSON")

    lint_policy = sub.add_parser(
        "lint-policy",
        help="statically verify policy files (unreachable/contradictory/"
             "non-exhaustive/always-DENY)",
    )
    lint_policy.add_argument("policy_files", nargs="+",
                             help="policy files in the paper's syntax")
    lint_policy.add_argument("--format", choices=("human", "json"),
                             default="human", help="output format")

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection matrix; nonzero exit on invariant "
             "violations",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="schedule seed (same seed = same faults)")
    chaos.add_argument("--trials", type=int, default=200,
                       help="number of single-fault trials")
    chaos.add_argument("--domains", default="A,B,C,D",
                       help="comma-separated chain of domains")
    chaos.add_argument("--rate", type=float, default=10.0,
                       help="bandwidth per trial, Mb/s")
    chaos.add_argument("--deadline", type=float, default=30.0,
                       help="end-to-end signalling deadline, seconds")
    chaos.add_argument("--ttl", type=float, default=60.0,
                       help="soft-state lease length, seconds")
    chaos.add_argument("--show-trials", action="store_true",
                       help="print one line per trial")
    chaos.add_argument("--audit", action="store_true",
                       help="keep a decision-provenance ledger for the "
                            "campaign and reconcile it (violations also "
                            "fail the run)")
    chaos.add_argument("--save-ledger", default=None, metavar="PATH",
                       help="with --audit: write the campaign ledger JSON "
                            "here (for repro audit --ledger)")
    chaos.add_argument("--witness", action="store_true",
                       help="record real lock acquisition orders during "
                            "the campaign and cross-check them against "
                            "the static lock-order graph (inconsistency "
                            "fails the run)")
    chaos.add_argument("--record", default=None, metavar="FILE.tsrec",
                       help="flight-record campaign telemetry (one frame "
                            "per trial) and step the chaos alert profile "
                            "over it")
    chaos.add_argument("--fail-on-critical", action="store_true",
                       help="with --record: exit non-zero if any CRITICAL "
                            "alert fired during the campaign (the honest-"
                            "run telemetry gate)")

    top = sub.add_parser(
        "top",
        help="fleet health dashboard (live run or --replay over a "
             "saved .tsrec recording)",
    )
    top.add_argument("--replay", default=None, metavar="FILE.tsrec",
                     help="render a saved recording instead of running a "
                          "fresh workload")
    top.add_argument("--at", type=float, default=None,
                     help="with --replay: render the dashboard at this "
                          "recorded instant (default: the final frame)")
    top.add_argument("--follow", action="store_true",
                     help="re-render the dashboard as samples arrive (the "
                          "incident as it unfolded) instead of only the "
                          "final frame")
    top.add_argument("--interval", type=float, default=10.0,
                     help="with --follow: recorded seconds between "
                          "rendered frames (default: 10)")
    top.add_argument("--domains", default="A,B,C",
                     help="live mode: comma-separated chain of domains")
    top.add_argument("--rate", type=float, default=10.0,
                     help="live mode: bandwidth per reservation, Mb/s")
    top.add_argument("--runs", type=int, default=20,
                     help="live mode: reservations to signal (one "
                          "telemetry frame each)")
    top.add_argument("--user", default="Alice",
                     help="live mode: requesting user")
    top.add_argument("--fail-on-critical", action="store_true",
                     help="exit non-zero if any CRITICAL alert fired "
                          "(telemetry gate for honest recordings)")
    top.add_argument("--expect-firing", action="store_true",
                     help="exit non-zero unless at least one alert fired "
                          "(telemetry gate for attack recordings)")

    timeline = sub.add_parser(
        "timeline",
        help="merged alerts+events+audit+spans timeline for a "
             "correlation id or a START:END window",
    )
    timeline.add_argument(
        "target", nargs="?", default=None,
        help="correlation id, or a START:END window in recorded "
             "seconds (omit for everything)")
    timeline.add_argument("--replay", default=None, metavar="FILE.tsrec",
                          help="read events and alert transitions from "
                               "this recording")
    timeline.add_argument("--ledger", default=None, metavar="PATH",
                          help="also merge decision records from this "
                               "ledger JSON (chaos --save-ledger / "
                               "audit --save)")
    timeline.add_argument("--domains", default="A,B,C",
                          help="live mode (no --replay): domains for the "
                               "demo reservation")

    audit = sub.add_parser(
        "audit",
        help="decision-provenance ledger: query records, explain one "
             "reservation's per-hop chain, or reconcile",
    )
    audit.add_argument("mode", nargs="?", choices=("query", "explain"),
                       help="query records or explain one reservation "
                            "(omit when using --reconcile)")
    audit.add_argument("target", nargs="?",
                       help="explain: reservation handle or correlation id "
                            "(default: the demo reservation just signalled)")
    audit.add_argument("--ledger", default=None, metavar="PATH",
                       help="ledger JSON to read (from chaos --save-ledger "
                            "or audit --save); explain without it signals "
                            "one fresh reservation over --domains")
    audit.add_argument("--reconcile", action="store_true",
                       help="check the audit invariants; without --ledger, "
                            "first run the seeded chaos campaign under a "
                            "ledger; exit 1 on violations")
    audit.add_argument("--seed", type=int, default=7,
                       help="chaos schedule seed for --reconcile")
    audit.add_argument("--trials", type=int, default=200,
                       help="chaos trials for --reconcile")
    audit.add_argument("--domains", default="A,B,C,D",
                       help="comma-separated chain of domains")
    audit.add_argument("--save", default=None, metavar="PATH",
                       help="write the resulting ledger JSON here")
    audit.add_argument("--json", action="store_true", dest="as_json",
                       help="machine-readable output")
    audit.add_argument("--kind", default=None,
                       help="query: filter by record kind (admit, deny, "
                            "claim, cancel, expire, unwind_failed, "
                            "fallback, revoke, outcome)")
    audit.add_argument("--domain", default=None,
                       help="query: filter by domain")
    audit.add_argument("--correlation", default=None,
                       help="query: filter by correlation id")
    audit.add_argument("--handle", default=None,
                       help="query: filter by reservation handle")
    audit.add_argument("--user", default=None,
                       help="query: filter by user DN")

    return parser


def cmd_reserve(args: argparse.Namespace) -> int:
    domains = [d.strip() for d in args.domains.split(",") if d.strip()]
    if len(domains) < 1:
        print("error: need at least one domain", file=sys.stderr)
        return 2
    source = args.source or domains[0]
    dest = args.dest or domains[-1]
    testbed = build_linear_testbed(domains)
    user = testbed.add_user(source, args.user)

    if args.approach == "hop":
        outcome = testbed.reserve(
            user, source=source, destination=dest,
            bandwidth_mbps=args.rate, duration=args.duration,
        )
        granted, detail = outcome.granted, outcome
    elif args.approach in ("agent", "agent-concurrent"):
        for d in domains:
            if d != source:
                testbed.introduce_user_to(user, d)
        request = testbed.make_request(
            source=source, destination=dest, bandwidth_mbps=args.rate,
            duration=args.duration,
        )
        outcome = testbed.end_to_end_agent.reserve(
            user, request, concurrent=args.approach.endswith("concurrent")
        )
        granted, detail = outcome.complete, outcome
    else:  # stars
        rc = testbed.coordinator(source)
        rc.enroll_user(user)
        request = testbed.make_request(
            source=source, destination=dest, bandwidth_mbps=args.rate,
            duration=args.duration,
        )
        outcome = rc.reserve(user, request)
        granted, detail = outcome.complete, outcome

    print(f"approach : {args.approach}")
    print(f"path     : {' -> '.join(detail.path)}")
    print(f"granted  : {granted}")
    if getattr(detail, "handles", None):
        for domain in detail.path:
            handle = detail.handles.get(domain)
            if handle:
                print(f"  {domain}: {handle}")
    reason = getattr(detail, "denial_reason", "") or ""
    failures = getattr(detail, "failures", None)
    if not granted and reason:
        print(f"denied by {detail.denial_domain}: {reason}")
    if not granted and failures:
        for domain, why in failures.items():
            print(f"  {domain}: {why}")
    print(f"messages : {detail.messages}")
    print(f"latency  : {detail.latency_s * 1000:.1f} ms (model)")
    return 0 if granted else 1


def cmd_policy_check(args: argparse.Namespace) -> int:
    from repro.crypto.dn import DN
    from repro.policy.engine import RequestContext
    from repro.policy.language import compile_policy

    if args.policy_file == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.policy_file, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        engine = compile_policy(source, name=args.policy_file)
    except PolicySyntaxError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return 2

    linked = []
    for item in args.linked:
        kind, _, handle = item.partition("=")
        if not handle:
            print(f"error: --linked expects kind=handle, got {item!r}",
                  file=sys.stderr)
            return 2
        linked.append((kind, handle))
    ctx = RequestContext(
        user=DN.make("Grid", "cli", args.user),
        bandwidth_mbps=args.bw,
        time_of_day_h=args.time,
        available_bandwidth_mbps=args.avail_bw,
        reservation_type=args.reservation_type,
        groups=frozenset(args.group),
        capability_issuers=frozenset(args.capability_issuer),
        linked_reservations=tuple(linked),
    )
    decision = engine.evaluate(ctx)
    print(f"decision : {'GRANT' if decision.granted else 'DENY'}")
    print(f"reason   : {decision.reason}")
    return 0 if decision.granted else 1


def _render_detection(report) -> str:
    """The time-to-detect line for a flight-recorded survivability run."""
    onset = (f"{report.attack_onset_s:.1f}s"
             if report.attack_onset_s is not None else "n/a")
    first = (f"{report.first_critical_alert_s:.1f}s"
             if report.first_critical_alert_s is not None
             else "never (no CRITICAL alert)")
    ttd = (f"{report.time_to_detect_s:.1f}s"
           if report.time_to_detect_s is not None else "inf")
    return (f"detection: onset {onset}, first CRITICAL {first}, "
            f"time-to-detect {ttd}, "
            f"{report.alert_transitions} alert transition(s)")


def _render_survivability(report) -> str:
    state = "ON " if report.defenses_on else "OFF"
    lines = [
        f"defenses {state}: honest admission "
        f"{report.honest_admitted}/{report.honest_offered} "
        f"({report.honest_admission_rate * 100:.1f}%), "
        f"p99 latency {report.honest_p99_latency_s:.2f}s, "
        f"{report.breaker_opens} breaker open(s), "
        f"peak victim backlog {report.max_backlog_s:.1f}s",
        f"  attacker: " + ", ".join(
            f"{k}={v}" for k, v in report.attacker.items() if v
        ),
    ]
    if report.defense_rejections:
        lines.append("  defense rejections: " + ", ".join(
            f"{k}={v}" for k, v in sorted(report.defense_rejections.items())
        ))
    if report.slo_report is not None:
        lines.append(
            "  honest SLOs: "
            + ("OK" if report.slo_report.ok else "VIOLATED — " + "; ".join(
                r.slo.name for r in report.slo_report.failing))
        )
    return "\n".join(lines)


def cmd_attack_survivability(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.errors import SimulationError
    from repro.obs import audit as obs_audit
    from repro.obs.slo import parse_slo_spec
    from repro.workloads.survivability import (
        SurvivabilitySpec, run_survivability,
    )

    slos = None
    if args.slo_spec is not None:
        try:
            with open(args.slo_spec, encoding="utf-8") as fh:
                slos = tuple(parse_slo_spec(fh.read()))
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        spec = SurvivabilitySpec(
            persona=args.persona,
            seed=args.seed,
            attack_fraction=args.attack_fraction,
            horizon_s=args.horizon,
        )
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    modes = {"off": (False,), "on": (True,), "both": (False, True)}
    states = modes[args.defenses]
    record_paths: dict[bool, str] = {}
    if getattr(args, "record", None):
        import os.path

        for on in states:
            if len(states) == 1:
                record_paths[on] = args.record
            else:
                root, ext = os.path.splitext(args.record)
                record_paths[on] = f"{root}.{'on' if on else 'off'}" \
                                   f"{ext or '.tsrec'}"
    reports = []
    for on in states:
        recorder = writer = None
        if record_paths:
            from repro.obs.telemetry import FlightRecorder, RecordingWriter

            try:
                writer = RecordingWriter.open(record_paths[on])
            except OSError as exc:
                print(f"error: {record_paths[on]}: {exc}", file=sys.stderr)
                return 2
            recorder = FlightRecorder(writer=writer)
        try:
            reports.append(
                run_survivability(
                    spec, defenses_on=on, slos=slos, recorder=recorder
                )
            )
        finally:
            if writer is not None:
                writer.close()
    if args.json:
        print(json_mod.dumps([r.to_dict() for r in reports], indent=2))
    else:
        print(f"persona {spec.persona!r}, seed {spec.seed}, "
              f"attack fraction {spec.fraction:.2f}, "
              f"horizon {spec.horizon_s:.0f}s")
        for report in reports:
            print(_render_survivability(report))
            if record_paths:
                print("  " + _render_detection(report))
    for path in record_paths.values():
        print(f"wrote {path}", file=sys.stderr)
    if not args.gate:
        return 0
    # Gate: honest traffic must meet its SLOs with defenses on, and the
    # attack run's decision ledger must reconcile clean.
    failures = 0
    for report in reports:
        if report.defenses_on and (
            report.slo_report is None or not report.slo_report.ok
        ):
            print("GATE: honest SLOs violated with defenses on",
                  file=sys.stderr)
            failures += 1
        audit_report = obs_audit.reconcile(report.ledger)
        if not audit_report.ok:
            state = "on" if report.defenses_on else "off"
            print(f"GATE: audit reconciliation (defenses {state}):",
                  file=sys.stderr)
            print(audit_report.render(), file=sys.stderr)
            failures += 1
    if not any(r.defenses_on for r in reports):
        print("GATE: --gate needs a defenses-on run (--defenses on|both)",
              file=sys.stderr)
        failures += 1
    if failures == 0:
        print("GATE: ok")
    return 1 if failures else 0


def cmd_attack(args: argparse.Namespace) -> int:
    if getattr(args, "persona", None) is not None:
        return cmd_attack_survivability(args)
    from repro.net.flows import FlowSpec
    from repro.net.packet import DSCP
    from repro.net.trafficgen import PoissonSource

    testbed = build_linear_testbed(["A", "B", "C"])
    alice = testbed.add_user("A", "Alice")
    david = testbed.add_user("A", "David")
    for u, ds in ((alice, ("B", "C")), (david, ("B",))):
        for d in ds:
            testbed.introduce_user_to(u, d)
    agent = testbed.end_to_end_agent
    a = agent.reserve(alice, testbed.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        attributes=(("flow_id", "alice"),)))
    d = agent.reserve(david, testbed.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        source_host="h1.A", destination_host="h1.C",
        attributes=(("flow_id", "david"),)), skip_domains={"C"})
    agent.claim(a)
    agent.claim(d)
    print(f"Alice reserved in {sorted(a.handles)} (complete={a.complete})")
    print(f"David reserved in {sorted(d.handles)} (complete={d.complete})")
    for seed, (fid, src, dst) in enumerate(
        [("alice", "h0.A", "h0.C"), ("david", "h1.A", "h1.C")]
    ):
        PoissonSource(
            testbed.network,
            FlowSpec(fid, src, dst, 10.0, dscp=DSCP.EF),
            rng=random.Random(seed), stop_time=1.0,
        ).start()
    testbed.sim.run()
    for fid in ("alice", "david"):
        st = testbed.network.stats_for(fid)
        print(f"{fid:<6s} loss {st.loss_ratio * 100:5.1f}%  "
              f"goodput {st.goodput_mbps(1.0):5.2f} Mb/s")
    alice_stats = testbed.network.stats_for("alice")
    print("Figure 4 reproduced: the victim with a complete reservation "
          f"lost {alice_stats.loss_ratio * 100:.1f}% of her packets.")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads.analysis import predicted_acceptance
    from repro.workloads.generator import ReservationWorkload, WorkloadSpec

    mean_rate, mean_hold = 10.0, 300.0
    arrival = args.load * args.bottleneck / (mean_rate * mean_hold)
    testbed = build_linear_testbed(
        ["A", "B", "C"], hosts_per_domain=1,
        inter_capacity_mbps=args.bottleneck,
    )
    spec = WorkloadSpec(
        arrival_rate_per_s=arrival,
        mean_duration_s=mean_hold,
        rate_choices_mbps=(5.0, 10.0, 15.0),
        pairs=(("A", "C"),),
        horizon_s=args.horizon,
    )
    result = ReservationWorkload(
        testbed, spec, rng=random.Random(args.seed)
    ).run()
    predicted = predicted_acceptance(
        arrival_rate_per_s=arrival, mean_duration_s=mean_hold,
        mean_rate_mbps=mean_rate, bottleneck_mbps=args.bottleneck,
    )
    print(f"offered load      : {args.load:.2f} x {args.bottleneck:.0f} Mb/s")
    print(f"requests offered  : {result.offered}")
    print(f"requests accepted : {result.accepted}")
    print(f"acceptance ratio  : {result.acceptance_ratio:.2f} "
          f"(Erlang-B predicts {predicted:.2f})")
    print(f"carried fraction  : {result.carried_fraction:.2f}")
    if result.rejected_by_domain:
        print(f"rejections        : {dict(result.rejected_by_domain)}")
    return 0


def _diff_metric_snapshots(path_a: str, path_b: str) -> int:
    import json

    from repro.obs.export import diff_snapshots

    snapshots = []
    for path in (path_a, path_b):
        try:
            with open(path, encoding="utf-8") as fh:
                snapshots.append(json.load(fh))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
    lines = diff_snapshots(snapshots[0], snapshots[1])
    if not lines:
        print("no differences")
        return 0
    for line in lines:
        print(line)
    return 1


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro import obs

    if args.diff is not None:
        return _diff_metric_snapshots(*args.diff)
    domains = [d.strip() for d in args.domains.split(",") if d.strip()]
    if not domains:
        print("error: need at least one domain", file=sys.stderr)
        return 2
    source, dest = domains[0], domains[-1]
    granted = 0
    with obs.observed() as (registry, _tracer, _events):
        testbed = build_linear_testbed(domains)
        user = testbed.add_user(source, args.user)
        for _ in range(max(args.runs, 1)):
            outcome = testbed.reserve(
                user, source=source, destination=dest,
                bandwidth_mbps=args.rate, duration=args.duration,
            )
            granted += int(outcome.granted)
    if args.format == "json":
        print(obs.export.json_text(registry))
    else:
        print(obs.export.prometheus_text(registry), end="")
    print(f"# {granted}/{max(args.runs, 1)} reservations granted",
          file=sys.stderr)
    return 0 if granted else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core.tracing import trace_request_path

    domains = [d.strip() for d in args.domains.split(",") if d.strip()]
    if not domains:
        print("error: need at least one domain", file=sys.stderr)
        return 2
    source = args.source or domains[0]
    dest = args.dest or domains[-1]
    with obs.observed() as (_registry, tracer, _events):
        testbed = build_linear_testbed(domains)
        user = testbed.add_user(source, args.user)
        outcome = testbed.reserve(
            user, source=source, destination=dest,
            bandwidth_mbps=args.rate, duration=args.duration,
        )
    trace_id = outcome.correlation_id or tracer.latest_trace()
    if not trace_id:
        print("error: no spans were recorded", file=sys.stderr)
        return 2
    if args.critical_path:
        from repro.obs.perf import analyze_critical_path, render_critical_path

        print(render_critical_path(analyze_critical_path(tracer, trace_id)))
        return 0 if outcome.granted else 1
    print(tracer.render(trace_id))
    hops = tracer.hop_chain(trace_id)
    print(f"hop order : {' -> '.join(str(s.attributes['domain']) for s in hops)}")
    if outcome.final_rar is not None:
        # The RAR at the destination is signed by the user and every BB
        # before the destination; the span chain must name the same BBs
        # in the same order (the destination hop adds no wrapper).
        envelope = trace_request_path(outcome.final_rar)
        signers = [str(dn) for dn in envelope.signers]
        span_bbs = [str(s.attributes["bb"]) for s in hops]
        matches = envelope.consistent and span_bbs[: len(signers) - 1] == signers[1:]
        print(f"envelope  : {' -> '.join(signers)}")
        print(f"span tree matches envelope path: {matches}")
        if not matches:
            return 1
    return 0 if outcome.granted else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import lint_paths, registered_rules, render_findings
    from repro.analysis.runner import describe_rules
    from repro.errors import AnalysisError

    if args.list_rules:
        print(describe_rules())
        return 0
    registry = registered_rules()
    unknown = [
        r for r in (*args.select, *args.ignore) if r not in registry
    ]
    if unknown:
        print(f"error: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths] or None

    if args.concurrency:
        return _lint_concurrency(args, paths)
    if args.baseline or args.write_baseline:
        print("error: --baseline/--write-baseline need --concurrency",
              file=sys.stderr)
        return 2

    selected = set(args.select) or set(registry)
    selected -= set(args.ignore)
    rules = [registry[r] for r in sorted(selected)]
    try:
        findings = lint_paths(paths, rules=rules)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_findings(findings, output_format=args.format))
    return 1 if findings else 0


def _lint_concurrency(args: argparse.Namespace, paths) -> int:
    from pathlib import Path

    from repro.analysis import render_findings
    from repro.analysis.concurrency import (
        CONCURRENCY_RULE_IDS,
        analyze_paths,
    )
    from repro.analysis.concurrency.guarded import (
        Baseline,
        default_baseline_path,
    )
    from repro.errors import AnalysisError

    rules = [
        r for r in CONCURRENCY_RULE_IDS
        if (not args.select or r in args.select) and r not in args.ignore
    ]
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    try:
        report = analyze_paths(
            paths, baseline_path=baseline_path, rules=rules
        )
    except (AnalysisError, SyntaxError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        baseline = Baseline({
            "REP120": report.cycle_keys,
            "REP121": report.rep121_fingerprints,
        })
        try:
            baseline.save(baseline_path)
        except OSError as exc:
            print(f"error: {baseline_path}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {baseline_path} ({len(report.cycle_keys)} cycle(s), "
              f"{len(report.rep121_fingerprints)} access(es))")
        return 0
    print(render_findings(report.findings, output_format=args.format))
    if args.format == "human":
        extras = []
        if report.suppressed:
            extras.append(f"{report.suppressed} noqa-suppressed")
        if report.baselined:
            extras.append(f"{report.baselined} baselined")
        tail = f" ({', '.join(extras)})" if extras else ""
        print(report.graph.summary().splitlines()[0] + tail,
              file=sys.stderr)
    return 1 if report.findings else 0


def cmd_lockgraph(args: argparse.Namespace) -> int:
    import json as json_mod
    from pathlib import Path

    from repro.analysis.concurrency import analyze_paths
    from repro.errors import AnalysisError

    paths = [Path(p) for p in args.paths] or None
    try:
        report = analyze_paths(paths, rules=())
    except (AnalysisError, SyntaxError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.dot:
        print(report.graph.to_dot())
    elif args.json:
        print(json_mod.dumps(report.graph.to_json(), indent=2))
    else:
        print(report.graph.summary())
    return 0


def cmd_lint_policy(args: argparse.Namespace) -> int:
    from repro.analysis.policycheck import (
        policy_findings_to_json,
        verify_policy_source,
    )

    all_findings = []
    status = 0
    for path in args.policy_files:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            findings = verify_policy_source(source, name=path)
        except PolicySyntaxError as exc:
            print(f"{path}: syntax error: {exc}", file=sys.stderr)
            return 2
        all_findings.extend(findings)
        if findings:
            status = 1
    if args.format == "json":
        print(policy_findings_to_json(all_findings))
    else:
        for finding in all_findings:
            print(finding.format())
        checked = len(args.policy_files)
        print(f"repro lint-policy: {len(all_findings)} finding(s) in "
              f"{checked} file(s)")
    return status


def cmd_bench(args: argparse.Namespace) -> int:
    import json
    import tempfile
    from pathlib import Path

    from repro.obs.perf import bench as perf_bench

    env_overrides: dict[str, str] = {}
    if args.concurrency is not None:
        if args.concurrency < 1:
            print(f"error: --concurrency must be >= 1, got {args.concurrency}",
                  file=sys.stderr)
            return 2
        env_overrides["REPRO_BENCH_CONCURRENCY"] = str(args.concurrency)
    if args.audit:
        env_overrides["REPRO_BENCH_AUDIT"] = "1"
    if args.record:
        env_overrides["REPRO_BENCH_RECORD"] = "1"
    repo_root = Path(args.repo_root).resolve()
    baseline = None
    if args.compare:
        entries = perf_bench.trajectory_entries(repo_root)
        if entries:
            baseline_path = entries[-1][1]
            try:
                baseline = json.loads(baseline_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: {baseline_path}: {exc}", file=sys.stderr)
                return 2
        else:
            print("note: no committed BENCH_<n>.json to compare against",
                  file=sys.stderr)
    entry_number = (
        args.entry if args.entry is not None
        else perf_bench.next_entry_number(repo_root)
    )
    mode = "quick benchmarks" if args.quick else "full benchmark suite"
    print(f"running the {mode} (pytest subprocess)...", file=sys.stderr)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        json_path = (
            Path(args.keep_json) if args.keep_json
            else Path(tmp) / "benchmark.json"
        )
        doc = perf_bench.run_benchmarks(
            repo_root, quick=args.quick, json_path=json_path,
            env_overrides=env_overrides,
        )
    entry = perf_bench.build_entry(
        repo_root=repo_root,
        benchmark_json=doc,
        entry_number=entry_number,
        quick=args.quick,
    )
    path = perf_bench.write_entry(repo_root, entry)
    benchmarks = entry["benchmarks"]
    assert isinstance(benchmarks, dict)
    print(f"wrote {path} ({len(benchmarks)} benchmark(s), "
          f"git {str(entry['git_sha'])[:12]})")
    if baseline is None:
        return 0
    regressions, notes = perf_bench.compare_entries(
        baseline, entry, threshold=args.threshold
    )
    for note in notes:
        print(f"  {note}")
    for regression in regressions:
        print(f"  REGRESSION {regression}")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold:.2f}x vs entry {baseline.get('entry')}")
        return 1
    print(f"no regressions beyond {args.threshold:.2f}x vs entry "
          f"{baseline.get('entry')}")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.slo import (
        default_slos, evaluate_slos, evaluate_slos_from_recording,
        parse_slo_spec,
    )

    if args.spec is not None:
        try:
            with open(args.spec, encoding="utf-8") as fh:
                slos = parse_slo_spec(fh.read())
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        slos = default_slos()
    if args.record is not None:
        from repro.obs.telemetry import Recording

        try:
            recording = Recording.load(args.record)
        except OSError as exc:
            print(f"error: {args.record}: {exc}", file=sys.stderr)
            return 2
        report = evaluate_slos_from_recording(slos, recording)
        print(f"objectives over {args.record} "
              f"({len(recording.frames)} frame(s), "
              f"t={recording.start:.1f}..{recording.end:.1f}s)")
        print(report.render())
        return 0 if report.ok else 1
    domains = [d.strip() for d in args.domains.split(",") if d.strip()]
    if not domains:
        print("error: need at least one domain", file=sys.stderr)
        return 2
    with obs.observed() as (registry, _tracer, event_log):
        testbed = build_linear_testbed(domains)
        user = testbed.add_user(domains[0], args.user)
        for _ in range(max(args.runs, 1)):
            testbed.reserve(
                user, source=domains[0], destination=domains[-1],
                bandwidth_mbps=args.rate, duration=args.duration,
            )
    report = evaluate_slos(slos, registry=registry, event_log=event_log)
    print(report.render())
    return 0 if report.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import run_chaos

    domains = [d.strip() for d in args.domains.split(",") if d.strip()]
    if len(domains) < 2:
        print("error: chaos needs at least two domains", file=sys.stderr)
        return 2
    if args.trials < 1:
        print("error: --trials must be >= 1", file=sys.stderr)
        return 2
    if args.fail_on_critical and not args.record:
        print("error: --fail-on-critical needs --record FILE.tsrec",
              file=sys.stderr)
        return 2
    recorder = writer = engine = None
    if args.record:
        from repro.obs.telemetry import (
            AlertEngine, FlightRecorder, RecordingWriter, chaos_rules,
        )

        try:
            writer = RecordingWriter.open(args.record)
        except OSError as exc:
            print(f"error: {args.record}: {exc}", file=sys.stderr)
            return 2
        recorder = FlightRecorder(writer=writer)
        engine = AlertEngine(chaos_rules())
    witness = None
    if args.witness:
        from repro.analysis.concurrency.witness import LockWitness

        witness = LockWitness().install()
    try:
        report = run_chaos(
            seed=args.seed,
            trials=args.trials,
            domains=domains,
            rate_mbps=args.rate,
            deadline_s=args.deadline,
            soft_state_ttl_s=args.ttl,
            audit=args.audit,
            recorder=recorder,
            alert_engine=engine,
        )
    finally:
        if witness is not None:
            witness.uninstall()
        if writer is not None:
            writer.close()
    if witness is not None:
        from repro.analysis.concurrency import analyze_paths

        static = analyze_paths(rules=())
        problems = witness.check_against(static.graph)
        print(witness.summary())
        for problem in problems:
            print(f"witness: {problem}", file=sys.stderr)
        if problems:
            return 1
    if args.show_trials:
        for trial in report.trials:
            verdict = "granted" if trial.granted else "denied "
            health = "ok" if not (trial.violations or trial.audit_violations) \
                else "VIOLATION"
            print(f"  [{trial.index:4d}] {verdict} inj={trial.injected} "
                  f"retry={trial.retries} {health}  {trial.spec.describe()}")
    if args.save_ledger and report.ledger is not None:
        try:
            with open(args.save_ledger, "w", encoding="utf-8") as fh:
                fh.write(report.ledger.to_json())
        except OSError as exc:
            print(f"error: {args.save_ledger}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.save_ledger} ({len(report.ledger)} records)")
    telemetry_failures = 0
    if engine is not None:
        from repro.obs.telemetry import AlertSeverity, AlertState

        fired = [t for t in engine.transitions
                 if t.to_state == AlertState.FIRING]
        critical = [t for t in fired
                    if t.severity == AlertSeverity.CRITICAL]
        print(f"telemetry: {recorder.frames} frame(s), "
              f"{len(engine.transitions)} alert transition(s), "
              f"{len(critical)} critical firing(s)")
        print(f"wrote {args.record}")
        if args.fail_on_critical and critical:
            for t in critical:
                print(f"GATE: CRITICAL {t.rule}[{t.group}] fired at "
                      f"trial {t.at_time:.0f} (value {t.value:.3f})",
                      file=sys.stderr)
            telemetry_failures = len(critical)
    print(report.summary())
    failed = (report.violations or report.audit_violations
              or telemetry_failures)
    return 1 if failed else 0


def _top_gates(args: argparse.Namespace, rules, transitions) -> int:
    """Apply the --fail-on-critical / --expect-firing CI gates to a
    stream of alert transitions; returns the number of failures."""
    from repro.obs.telemetry import AlertSeverity, AlertState

    fired = [t for t in transitions if t.to_state == AlertState.FIRING]
    critical = [t for t in fired if t.severity == AlertSeverity.CRITICAL]
    failures = 0
    if args.fail_on_critical and critical:
        for t in critical:
            print(f"GATE: CRITICAL {t.rule}[{t.group}] fired at "
                  f"t={t.at_time:.1f}s (value {t.value:.3f})",
                  file=sys.stderr)
        failures += 1
    if args.expect_firing and not fired:
        print("GATE: expected at least one firing alert, saw none",
              file=sys.stderr)
        failures += 1
    return failures


def cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import (
        AlertEngine, Recording, chaos_rules, default_rules, render_top,
    )

    if args.replay is not None:
        try:
            recording = Recording.load(args.replay)
        except OSError as exc:
            print(f"error: {args.replay}: {exc}", file=sys.stderr)
            return 2
        if not recording.frames:
            print(f"error: {args.replay} has no telemetry frames",
                  file=sys.stderr)
            return 1
        # Chaos recordings were monitored live by the campaign alert
        # profile; everything else by the fleet profile.  Re-stepping
        # the same rules over the replayed frames reproduces the live
        # incident exactly (the engine reads no clock).
        rules = (chaos_rules()
                 if recording.meta.get("campaign") == "chaos"
                 else default_rules())
        engine = AlertEngine(rules)
        target = args.at if args.at is not None else recording.end
        title = f"repro top — replay {args.replay}"
        next_render = recording.start
        final = None
        for t, snapshot in recording.replay():
            if t > target + 1e-9:
                break
            engine.step(snapshot, t)
            final = (t, snapshot)
            if args.follow and t + 1e-9 >= next_render:
                print(render_top(snapshot, now=t,
                                 alerts=engine.transitions, title=title))
                print()
                next_render = t + max(args.interval, 1e-9)
        if final is None:
            print(f"error: no frames at or before t={target}",
                  file=sys.stderr)
            return 1
        t, snapshot = final
        if not args.follow:
            print(render_top(snapshot, now=t, alerts=engine.transitions,
                             title=title))
        interesting = {
            k: recording.meta[k]
            for k in ("campaign", "persona", "seed", "defenses_on",
                      "attack_onset_s", "victim")
            if k in recording.meta
        }
        if interesting:
            print("meta: " + ", ".join(
                f"{k}={v}" for k, v in sorted(interesting.items())))
        return 1 if _top_gates(args, rules, engine.transitions) else 0

    # Live mode: signal --runs reservations under observability, sample
    # a telemetry frame after each, and render the resulting dashboard.
    from repro import obs
    from repro.obs.telemetry import FlightRecorder, testbed_probes

    domains = [d.strip() for d in args.domains.split(",") if d.strip()]
    if not domains:
        print("error: need at least one domain", file=sys.stderr)
        return 2
    rules = default_rules()
    engine = AlertEngine(rules)
    recorder = FlightRecorder()
    with obs.observed() as (registry, _tracer, event_log):
        testbed = build_linear_testbed(domains)
        for probe in testbed_probes(testbed):
            recorder.add_probe(probe)
        user = testbed.add_user(domains[0], args.user)
        for index in range(max(args.runs, 1)):
            testbed.reserve(
                user, source=domains[0], destination=domains[-1],
                bandwidth_mbps=args.rate, duration=3600.0,
            )
            now = float(index + 1)
            recorder.sample(now, registry=registry)
            engine.step(recorder.store, now, event_log=event_log)
    now = float(max(args.runs, 1))
    print(render_top(recorder.store, now=now, alerts=engine.transitions,
                     domains=domains, title="repro top — live"))
    return 1 if _top_gates(args, rules, engine.transitions) else 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import merge_timeline, render_timeline

    correlation = window = None
    if args.target:
        head, sep, tail = args.target.partition(":")
        if sep:
            try:
                window = (float(head), float(tail))
            except ValueError:
                correlation = args.target
        else:
            correlation = args.target

    audit_records = ()
    if args.ledger is not None:
        from repro.obs import audit as obs_audit

        try:
            with open(args.ledger, encoding="utf-8") as fh:
                ledger = obs_audit.DecisionLedger.from_json(fh.read())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: {args.ledger}: {exc}", file=sys.stderr)
            return 2
        audit_records = ledger.records(None)

    if args.replay is not None:
        from repro.obs.telemetry import Recording

        try:
            recording = Recording.load(args.replay)
        except OSError as exc:
            print(f"error: {args.replay}: {exc}", file=sys.stderr)
            return 2
        entries = merge_timeline(
            events=recording.events, alerts=recording.alerts,
            audit_records=audit_records,
            correlation=correlation, window=window,
        )
        scope = correlation or (
            f"{window[0]:.1f}..{window[1]:.1f}s" if window else "all")
        print(render_timeline(
            entries, title=f"timeline [{scope}] — {args.replay}"))
        return 0

    if args.ledger is not None:
        entries = merge_timeline(
            audit_records=audit_records,
            correlation=correlation, window=window,
        )
        scope = correlation or (
            f"{window[0]:.1f}..{window[1]:.1f}s" if window else "all")
        print(render_timeline(
            entries, title=f"timeline [{scope}] — {args.ledger}"))
        return 0

    # Live demo: one reservation under all three pillars plus the
    # decision ledger, stitched into a single timeline.
    from repro import obs
    from repro.obs import audit as obs_audit

    domains = [d.strip() for d in args.domains.split(",") if d.strip()]
    if not domains:
        print("error: need at least one domain", file=sys.stderr)
        return 2
    with obs.observed() as (_registry, tracer, event_log):
        with obs_audit.use_ledger() as ledger:
            testbed = build_linear_testbed(domains)
            user = testbed.add_user(domains[0], "Alice")
            outcome = testbed.reserve(
                user, source=domains[0], destination=domains[-1],
                bandwidth_mbps=10.0, duration=3600.0,
            )
    if correlation is None and window is None:
        correlation = outcome.correlation_id
    spans = (tracer.spans_for(correlation) if correlation else ())
    entries = merge_timeline(
        events=[e.to_dict() for e in event_log.events()],
        audit_records=ledger.records(None),
        spans=spans,
        correlation=correlation, window=window,
    )
    scope = correlation or f"{window[0]:.1f}..{window[1]:.1f}s"
    print(render_timeline(entries, title=f"timeline [{scope}] — live"))
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.obs import audit as obs_audit

    domains = [d.strip() for d in args.domains.split(",") if d.strip()]
    if len(domains) < 2:
        print("error: audit needs at least two domains", file=sys.stderr)
        return 2

    def load_ledger(path: str) -> obs_audit.DecisionLedger | None:
        try:
            with open(path, encoding="utf-8") as fh:
                return obs_audit.DecisionLedger.from_json(fh.read())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return None

    def save_ledger(ledger: obs_audit.DecisionLedger) -> bool:
        if not args.save:
            return True
        try:
            with open(args.save, "w", encoding="utf-8") as fh:
                fh.write(ledger.to_json())
        except OSError as exc:
            print(f"error: {args.save}: {exc}", file=sys.stderr)
            return False
        print(f"wrote {args.save} ({len(ledger)} records)", file=sys.stderr)
        return True

    if args.reconcile:
        if args.mode is not None:
            print("error: --reconcile takes no query/explain mode",
                  file=sys.stderr)
            return 2
        extra_violations: list[str] = []
        if args.ledger is not None:
            ledger = load_ledger(args.ledger)
            if ledger is None:
                return 2
            report = obs_audit.reconcile(ledger)
        else:
            # No saved ledger: run the seeded chaos campaign under one.
            # Brokers are reconciled per trial (while they exist), the
            # whole ledger once at the end.
            from repro.faults import run_chaos

            print(f"running {args.trials} chaos trials (seed {args.seed}) "
                  "under the decision ledger...", file=sys.stderr)
            chaos = run_chaos(
                seed=args.seed, trials=args.trials, domains=domains,
                audit=True,
            )
            ledger = chaos.ledger
            assert ledger is not None and chaos.audit_report is not None
            report = chaos.audit_report
            extra_violations = [
                v for trial in chaos.trials
                for v in (
                    f"trial {trial.index} [{trial.spec.describe()}]: {x}"
                    for x in trial.audit_violations
                )
            ]
        if not save_ledger(ledger):
            return 2
        ok = report.ok and not extra_violations
        if args.as_json:
            doc = report.to_dict()
            doc["broker_violations"] = extra_violations
            doc["ok"] = ok
            print(json_mod.dumps(doc, indent=2))
        else:
            print(report.render())
            for violation in extra_violations:
                print(f"  VIOLATION broker: {violation}")
        return 0 if ok else 1

    if args.mode == "query":
        if args.ledger is None:
            print("error: query needs --ledger PATH", file=sys.stderr)
            return 2
        ledger = load_ledger(args.ledger)
        if ledger is None:
            return 2
        kind = None
        if args.kind is not None:
            try:
                kind = obs_audit.RecordKind(args.kind.lower())
            except ValueError:
                valid = ", ".join(k.value for k in obs_audit.RecordKind)
                print(f"error: unknown record kind {args.kind!r} "
                      f"(one of: {valid})", file=sys.stderr)
                return 2
        records = ledger.records(
            kind, domain=args.domain, correlation_id=args.correlation,
            handle=args.handle, user=args.user,
        )
        if args.as_json:
            print(json_mod.dumps([r.to_dict() for r in records], indent=2))
        else:
            for record in records:
                verdict = "granted" if record.granted else "denied"
                extras = []
                if record.handle:
                    extras.append(record.handle)
                if record.matched_rule:
                    extras.append(f"rule={record.matched_rule}")
                if record.reason_code:
                    extras.append(record.reason_code)
                print(f"[{record.seq:4d}] {record.kind.value:13s} "
                      f"{record.domain or '-':8s} {verdict:7s} "
                      f"{record.correlation_id or '-':12s} "
                      + " ".join(extras))
            print(f"{len(records)} record(s)", file=sys.stderr)
        return 0

    if args.mode == "explain":
        target = args.target
        if args.ledger is not None:
            ledger = load_ledger(args.ledger)
            if ledger is None:
                return 2
            if target is None:
                print("error: explain --ledger needs a handle or "
                      "correlation id", file=sys.stderr)
                return 2
        else:
            # Live demo: signal one reservation across --domains under a
            # fresh ledger, then explain it.
            with obs_audit.use_ledger() as ledger:
                testbed = build_linear_testbed(domains)
                user = testbed.add_user(domains[0], "Alice")
                outcome = testbed.reserve(
                    user, source=domains[0], destination=domains[-1],
                    bandwidth_mbps=10.0, duration=3600.0,
                )
            if target is None:
                target = outcome.correlation_id
        if not save_ledger(ledger):
            return 2
        correlation_id = obs_audit.resolve_correlation(ledger, target)
        if correlation_id is None:
            print(f"error: nothing in the ledger matches {target!r}",
                  file=sys.stderr)
            return 1
        chain = obs_audit.stitch(ledger, correlation_id)
        if args.as_json:
            print(json_mod.dumps(obs_audit.chain_to_dict(chain), indent=2))
        else:
            print(obs_audit.render_chain(chain))
        return 0

    print("error: choose a mode (query, explain) or --reconcile",
          file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        from repro.obs import configure_logging

        configure_logging(args.verbose)
    try:
        if args.command == "reserve":
            return cmd_reserve(args)
        if args.command == "policy-check":
            return cmd_policy_check(args)
        if args.command == "attack":
            return cmd_attack(args)
        if args.command == "workload":
            return cmd_workload(args)
        if args.command == "metrics":
            return cmd_metrics(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "bench":
            return cmd_bench(args)
        if args.command == "slo":
            return cmd_slo(args)
        if args.command == "lint":
            return cmd_lint(args)
        if args.command == "lockgraph":
            return cmd_lockgraph(args)
        if args.command == "lint-policy":
            return cmd_lint_policy(args)
        if args.command == "chaos":
            return cmd_chaos(args)
        if args.command == "top":
            return cmd_top(args)
        if args.command == "timeline":
            return cmd_timeline(args)
        if args.command == "audit":
            return cmd_audit(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
