"""Measurement probes: periodic time series over a running simulation.

The benchmark harness mostly needs end-of-run aggregates
(:class:`~repro.net.flows.FlowStats`), but regenerating *time series* —
goodput ramping when a policer reconfigures, queue growth during a
flood — needs periodic sampling.  A probe schedules itself on the shared
simulator and records into a :class:`~repro.net.simulator.Trace`.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.net.diffserv import NetworkModel
from repro.net.simulator import Trace

__all__ = ["GoodputProbe", "BacklogProbe", "DropProbe"]


class _PeriodicProbe:
    """Base: samples every ``interval_s`` until ``stop_time``."""

    def __init__(
        self,
        model: NetworkModel,
        *,
        interval_s: float = 0.1,
        stop_time: float = float("inf"),
        name: str = "",
    ):
        if interval_s <= 0:
            raise SimulationError("probe interval must be positive")
        self.model = model
        self.interval_s = interval_s
        self.stop_time = stop_time
        self.trace = Trace(name or type(self).__name__)
        self._started = False

    def start(self) -> "Trace":
        if self._started:
            raise SimulationError("probe already started")
        self._started = True
        self.model.sim.schedule(self.interval_s, self._tick)
        return self.trace

    def _tick(self) -> None:
        now = self.model.sim.now
        self.trace.record(now, self.sample())
        if now + self.interval_s <= self.stop_time:
            self.model.sim.schedule(self.interval_s, self._tick)

    def sample(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class GoodputProbe(_PeriodicProbe):
    """Per-interval goodput (Mb/s) of one flow."""

    def __init__(self, model: NetworkModel, flow_id: str, **kwargs):
        kwargs.setdefault("name", f"goodput:{flow_id}")
        super().__init__(model, **kwargs)
        self.flow_id = flow_id
        self._last_bits = 0.0

    def sample(self) -> float:
        stats = self.model.stats_for(self.flow_id)
        delta = stats.delivered_bits - self._last_bits
        self._last_bits = stats.delivered_bits
        return delta / self.interval_s / 1e6


class BacklogProbe(_PeriodicProbe):
    """Queue backlog (bits) of one directed link's output port."""

    def __init__(self, model: NetworkModel, u: str, v: str, **kwargs):
        kwargs.setdefault("name", f"backlog:{u}->{v}")
        super().__init__(model, **kwargs)
        if (u, v) not in model._ports:
            raise SimulationError(f"no port {u!r}->{v!r}")
        self._port = model._ports[(u, v)]

    def sample(self) -> float:
        return self._port.scheduler.backlog_bits


class DropProbe(_PeriodicProbe):
    """Per-interval drops across the whole model (optionally one reason)."""

    def __init__(self, model: NetworkModel, *, reason: str | None = None,
                 **kwargs):
        kwargs.setdefault("name", f"drops:{reason or 'all'}")
        super().__init__(model, **kwargs)
        self.reason = reason
        self._last = 0

    def sample(self) -> float:
        total = self.model.total_drops(self.reason)
        delta = total - self._last
        self._last = total
        return float(delta)
