"""Flow specifications and per-flow measurement.

A *flow* is a unidirectional stream of packets between two hosts.  The
data plane identifies flows only at the first-hop edge router (per-flow
classification); everywhere else, packets are treated by DSCP aggregate —
exactly the DiffServ split the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packet import DSCP

__all__ = ["FlowSpec", "FlowStats"]


@dataclass(frozen=True)
class FlowSpec:
    """Static description of a flow offered to the network."""

    flow_id: str
    src: str
    dst: str
    rate_mbps: float
    packet_size_bits: int = 12_000  # 1500-byte packets
    dscp: DSCP = DSCP.BE

    @property
    def rate_bps(self) -> float:
        return self.rate_mbps * 1e6

    @property
    def packets_per_second(self) -> float:
        return self.rate_bps / self.packet_size_bits


@dataclass
class FlowStats:
    """Measured fate of one flow's packets."""

    flow_id: str
    sent_packets: int = 0
    sent_bits: float = 0.0
    delivered_packets: int = 0
    delivered_bits: float = 0.0
    dropped_packets: int = 0
    downgraded_packets: int = 0
    #: Sum of end-to-end delays of delivered packets (seconds).
    total_delay_s: float = 0.0
    first_send: float | None = None
    last_delivery: float | None = None
    delays: list[float] = field(default_factory=list)

    # -- recorders ---------------------------------------------------------------

    def on_send(self, size_bits: float, now: float) -> None:
        self.sent_packets += 1
        self.sent_bits += size_bits
        if self.first_send is None:
            self.first_send = now

    def on_deliver(self, size_bits: float, created: float, now: float) -> None:
        self.delivered_packets += 1
        self.delivered_bits += size_bits
        delay = now - created
        self.total_delay_s += delay
        self.delays.append(delay)
        self.last_delivery = now

    def on_drop(self) -> None:
        self.dropped_packets += 1

    def on_downgrade(self) -> None:
        self.downgraded_packets += 1

    # -- derived metrics ------------------------------------------------------------

    @property
    def loss_ratio(self) -> float:
        """Dropped / sent (0.0 when nothing was sent)."""
        return self.dropped_packets / self.sent_packets if self.sent_packets else 0.0

    @property
    def delivery_ratio(self) -> float:
        return self.delivered_packets / self.sent_packets if self.sent_packets else 0.0

    @property
    def mean_delay_s(self) -> float:
        return (
            self.total_delay_s / self.delivered_packets
            if self.delivered_packets
            else 0.0
        )

    def goodput_mbps(self, duration_s: float) -> float:
        """Delivered bits over *duration_s*, in Mb/s."""
        if duration_s <= 0:
            return 0.0
        return self.delivered_bits / duration_s / 1e6

    def delay_percentiles(self, percentiles=(50.0, 95.0, 99.0)) -> dict[float, float]:
        """Delay percentiles (seconds) over delivered packets.

        Returns an empty mapping when nothing was delivered.  Uses numpy
        for the percentile computation (the one numeric hot spot when
        flows carry hundreds of thousands of packets).
        """
        if not self.delays:
            return {}
        import numpy as np

        values = np.percentile(np.asarray(self.delays), percentiles)
        return {p: float(v) for p, v in zip(percentiles, values)}

    def jitter_s(self) -> float:
        """Standard deviation of the end-to-end delay (seconds)."""
        if len(self.delays) < 2:
            return 0.0
        import numpy as np

        return float(np.std(np.asarray(self.delays)))
