"""Packets, DSCP code points, and per-hop-behaviour classes.

The Differentiated-Services model (RFC 2474/2475) marks each packet with
a six-bit DSCP in the IP header; interior routers select a per-hop
behaviour (PHB) from the mark alone — this is the aggregation that fixes
RSVP's per-flow-state scaling problem (paper §2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum

__all__ = ["DSCP", "PHB", "phb_for_dscp", "Packet"]


class DSCP(IntEnum):
    """The code points used in the reproduction.

    ``EF`` (expedited forwarding, RFC 3246) carries the premium
    reserved-bandwidth service the paper's bandwidth brokers sell;
    ``AF41``..``AF43`` an assured-forwarding class with three drop
    precedences; ``BE`` best effort.
    """

    BE = 0
    AF43 = 38
    AF42 = 36
    AF41 = 34
    EF = 46


class PHB(IntEnum):
    """Per-hop behaviour: scheduling class inside the routers.  Lower
    value = served first by the strict-priority scheduler."""

    EXPEDITED = 0
    ASSURED = 1
    DEFAULT = 2


_PHB_MAP = {
    DSCP.EF: PHB.EXPEDITED,
    DSCP.AF41: PHB.ASSURED,
    DSCP.AF42: PHB.ASSURED,
    DSCP.AF43: PHB.ASSURED,
    DSCP.BE: PHB.DEFAULT,
}


def phb_for_dscp(dscp: DSCP) -> PHB:
    """Map a code point to its per-hop behaviour (unknown marks → BE)."""
    return _PHB_MAP.get(dscp, PHB.DEFAULT)


_packet_ids = itertools.count()


@dataclass
class Packet:
    """One simulated packet.

    ``size_bits`` governs transmission time, ``dscp`` the treatment.
    ``flow_id`` ties the packet to a :class:`~repro.net.flows.FlowStats`
    record; the edge router may rewrite ``dscp`` (marking/downgrading).
    """

    flow_id: str
    src: str
    dst: str
    size_bits: int
    dscp: DSCP = DSCP.BE
    created: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    #: Number of router hops traversed so far (loop guard + diagnostics).
    hops: int = 0
    #: True once a policer has downgraded the packet out of its original class.
    downgraded: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packet(#{self.uid} {self.flow_id} {self.src}->{self.dst} "
            f"{self.size_bits}b {self.dscp.name})"
        )
