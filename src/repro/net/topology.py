"""Multi-domain network topology.

The testbed of the paper (Figures 2–7) is a chain of administrative
domains — source domain A, intermediate/ISP domains, destination domain —
each with hosts, edge routers at the domain borders, and core routers
inside.  A :class:`Topology` is a static annotated graph (networkx under
the hood); the dynamic packet behaviour lives in
:mod:`repro.net.diffserv`.

Link attributes: ``capacity_mbps`` (transmission rate) and ``delay_s``
(propagation delay).  All links are bidirectional with symmetric
attributes; the data plane treats each direction independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import networkx as nx

from repro.errors import NoRouteError, RoutingError

__all__ = [
    "NodeKind",
    "NodeInfo",
    "Topology",
    "linear_domain_chain",
    "star_domains",
    "mesh_domains",
]


class NodeKind(Enum):
    HOST = "host"
    EDGE_ROUTER = "edge"
    CORE_ROUTER = "core"


@dataclass(frozen=True)
class NodeInfo:
    """Static facts about one node."""

    name: str
    domain: str
    kind: NodeKind

    @property
    def is_router(self) -> bool:
        return self.kind is not NodeKind.HOST


class Topology:
    """An annotated multi-domain graph."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._nodes: dict[str, NodeInfo] = {}

    # -- construction -----------------------------------------------------------

    def add_node(self, name: str, domain: str, kind: NodeKind) -> NodeInfo:
        if name in self._nodes:
            raise RoutingError(f"duplicate node name {name!r}")
        info = NodeInfo(name, domain, kind)
        self._nodes[name] = info
        self.graph.add_node(name)
        return info

    def add_host(self, name: str, domain: str) -> NodeInfo:
        return self.add_node(name, domain, NodeKind.HOST)

    def add_edge_router(self, name: str, domain: str) -> NodeInfo:
        return self.add_node(name, domain, NodeKind.EDGE_ROUTER)

    def add_core_router(self, name: str, domain: str) -> NodeInfo:
        return self.add_node(name, domain, NodeKind.CORE_ROUTER)

    def add_link(
        self, a: str, b: str, *, capacity_mbps: float, delay_s: float = 0.001
    ) -> None:
        """Add a bidirectional link (both endpoints must already exist)."""
        for n in (a, b):
            if n not in self._nodes:
                raise RoutingError(f"unknown node {n!r}")
        if capacity_mbps <= 0 or delay_s < 0:
            raise RoutingError("link needs capacity > 0 and delay >= 0")
        self.graph.add_edge(a, b, capacity_mbps=capacity_mbps, delay_s=delay_s)

    # -- queries ------------------------------------------------------------------

    def node(self, name: str) -> NodeInfo:
        try:
            return self._nodes[name]
        except KeyError:
            raise RoutingError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> tuple[NodeInfo, ...]:
        return tuple(self._nodes.values())

    def domains(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for info in self._nodes.values():
            seen.setdefault(info.domain, None)
        return tuple(seen)

    def nodes_in_domain(self, domain: str) -> tuple[NodeInfo, ...]:
        return tuple(i for i in self._nodes.values() if i.domain == domain)

    def hosts_in_domain(self, domain: str) -> tuple[NodeInfo, ...]:
        return tuple(
            i for i in self._nodes.values()
            if i.domain == domain and i.kind is NodeKind.HOST
        )

    def link_attrs(self, a: str, b: str) -> dict:
        try:
            return self.graph.edges[a, b]
        except KeyError:
            raise RoutingError(f"no link {a!r}-{b!r}") from None

    def interdomain_links(self) -> list[tuple[str, str]]:
        """All links whose endpoints belong to different domains."""
        out = []
        for a, b in self.graph.edges:
            if self._nodes[a].domain != self._nodes[b].domain:
                out.append((a, b))
        return out

    def border_routers(self, domain: str, towards: str) -> tuple[str, ...]:
        """Edge routers of *domain* with a direct link into *towards*."""
        result = []
        for a, b in self.interdomain_links():
            for inside, outside in ((a, b), (b, a)):
                if (
                    self._nodes[inside].domain == domain
                    and self._nodes[outside].domain == towards
                ):
                    result.append(inside)
        return tuple(dict.fromkeys(result))

    def domain_graph(self) -> nx.Graph:
        """The domain-level adjacency graph (for BB path computation)."""
        g = nx.Graph()
        g.add_nodes_from(self.domains())
        for a, b in self.interdomain_links():
            g.add_edge(self._nodes[a].domain, self._nodes[b].domain)
        return g

    # -- routing helpers -----------------------------------------------------------

    def shortest_path(self, src: str, dst: str) -> list[str]:
        """Minimum-delay node path from *src* to *dst*."""
        for n in (src, dst):
            if n not in self._nodes:
                raise RoutingError(f"unknown node {n!r}")
        try:
            return nx.shortest_path(self.graph, src, dst, weight="delay_s")
        except nx.NetworkXNoPath:
            raise NoRouteError(f"no path from {src!r} to {dst!r}") from None

    def domain_path(self, src_domain: str, dst_domain: str) -> list[str]:
        """The sequence of domains a reservation must traverse."""
        g = self.domain_graph()
        for d in (src_domain, dst_domain):
            if d not in g:
                raise RoutingError(f"unknown domain {d!r}")
        try:
            return nx.shortest_path(g, src_domain, dst_domain)
        except nx.NetworkXNoPath:
            raise NoRouteError(
                f"no domain-level path from {src_domain!r} to {dst_domain!r}"
            ) from None


def linear_domain_chain(
    domain_names: list[str],
    *,
    hosts_per_domain: int = 1,
    intra_capacity_mbps: float = 1000.0,
    inter_capacity_mbps: float = 155.0,
    intra_delay_s: float = 0.0005,
    inter_delay_s: float = 0.005,
) -> Topology:
    """Build the paper's standard testbed: a chain of domains, each with an
    ingress and egress edge router, one core router, and ``hosts_per_domain``
    hosts attached to the core.

    Topology per domain ``X``::

        hX0..hXn -- coreX -- edgeX.left / edgeX.right

    with ``edgeX.right -- edgeY.left`` links joining consecutive domains.
    Single-domain chains collapse the two edge routers into one.
    """
    if not domain_names:
        raise RoutingError("need at least one domain")
    if len(set(domain_names)) != len(domain_names):
        raise RoutingError("domain names must be unique")
    topo = Topology()
    for name in domain_names:
        core = f"core.{name}"
        topo.add_core_router(core, name)
        left = f"edge.{name}.left"
        right = f"edge.{name}.right"
        topo.add_edge_router(left, name)
        topo.add_link(core, left, capacity_mbps=intra_capacity_mbps, delay_s=intra_delay_s)
        if len(domain_names) > 1:
            topo.add_edge_router(right, name)
            topo.add_link(core, right, capacity_mbps=intra_capacity_mbps, delay_s=intra_delay_s)
        for i in range(hosts_per_domain):
            host = f"h{i}.{name}"
            topo.add_host(host, name)
            topo.add_link(host, core, capacity_mbps=intra_capacity_mbps, delay_s=intra_delay_s)
    for upstream, downstream in zip(domain_names, domain_names[1:]):
        topo.add_link(
            f"edge.{upstream}.right",
            f"edge.{downstream}.left",
            capacity_mbps=inter_capacity_mbps,
            delay_s=inter_delay_s,
        )
    return topo


def _build_domain_island(
    topo: Topology,
    name: str,
    *,
    hosts: int,
    intra_capacity_mbps: float,
    intra_delay_s: float,
) -> str:
    """Create one domain's interior (hosts + core); returns the core name.

    Border edge routers are added lazily per inter-domain link by the
    star/mesh builders.
    """
    core = f"core.{name}"
    topo.add_core_router(core, name)
    for i in range(hosts):
        host = f"h{i}.{name}"
        topo.add_host(host, name)
        topo.add_link(host, core, capacity_mbps=intra_capacity_mbps,
                      delay_s=intra_delay_s)
    return core


def _join_domains(
    topo: Topology,
    a: str,
    b: str,
    *,
    intra_capacity_mbps: float,
    intra_delay_s: float,
    inter_capacity_mbps: float,
    inter_delay_s: float,
) -> None:
    """Add a border edge router on each side and the inter-domain link."""
    edge_a = f"edge.{a}.to-{b}"
    edge_b = f"edge.{b}.to-{a}"
    topo.add_edge_router(edge_a, a)
    topo.add_edge_router(edge_b, b)
    topo.add_link(f"core.{a}", edge_a, capacity_mbps=intra_capacity_mbps,
                  delay_s=intra_delay_s)
    topo.add_link(f"core.{b}", edge_b, capacity_mbps=intra_capacity_mbps,
                  delay_s=intra_delay_s)
    topo.add_link(edge_a, edge_b, capacity_mbps=inter_capacity_mbps,
                  delay_s=inter_delay_s)


def star_domains(
    hub: str,
    leaves: list[str],
    *,
    hosts_per_domain: int = 1,
    intra_capacity_mbps: float = 1000.0,
    inter_capacity_mbps: float = 155.0,
    intra_delay_s: float = 0.0005,
    inter_delay_s: float = 0.005,
) -> Topology:
    """An ISP-hub topology: every leaf domain peers only with *hub*.

    The common 2001 deployment shape — stub domains buying transit from
    one backbone (ESnet/Abilene); any leaf-to-leaf reservation crosses
    exactly three domains.
    """
    if not leaves:
        raise RoutingError("a star needs at least one leaf")
    names = [hub] + leaves
    if len(set(names)) != len(names):
        raise RoutingError("domain names must be unique")
    topo = Topology()
    for name in names:
        _build_domain_island(
            topo, name, hosts=hosts_per_domain,
            intra_capacity_mbps=intra_capacity_mbps, intra_delay_s=intra_delay_s,
        )
    for leaf in leaves:
        _join_domains(
            topo, hub, leaf,
            intra_capacity_mbps=intra_capacity_mbps, intra_delay_s=intra_delay_s,
            inter_capacity_mbps=inter_capacity_mbps, inter_delay_s=inter_delay_s,
        )
    return topo


def mesh_domains(
    names: list[str],
    *,
    hosts_per_domain: int = 1,
    intra_capacity_mbps: float = 1000.0,
    inter_capacity_mbps: float = 155.0,
    intra_delay_s: float = 0.0005,
    inter_delay_s: float = 0.005,
) -> Topology:
    """A full mesh: every pair of domains peers directly.

    With a mesh, every reservation is two domains end to end; useful for
    isolating per-hop protocol costs from path-length effects.
    """
    if len(names) < 2:
        raise RoutingError("a mesh needs at least two domains")
    if len(set(names)) != len(names):
        raise RoutingError("domain names must be unique")
    topo = Topology()
    for name in names:
        _build_domain_island(
            topo, name, hosts=hosts_per_domain,
            intra_capacity_mbps=intra_capacity_mbps, intra_delay_s=intra_delay_s,
        )
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            _join_domains(
                topo, a, b,
                intra_capacity_mbps=intra_capacity_mbps,
                intra_delay_s=intra_delay_s,
                inter_capacity_mbps=inter_capacity_mbps,
                inter_delay_s=inter_delay_s,
            )
    return topo
