"""Output-port queueing: drop-tail FIFOs under a strict-priority scheduler.

Each router output port owns one :class:`PriorityScheduler` with a
drop-tail queue per :class:`~repro.net.packet.PHB`.  EF is served before
AF before BE — the standard DiffServ core configuration for guaranteed-
bandwidth service (cf. the authors' own DiffServ implementation for
high-performance TCP flows [20]).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.net.packet import DSCP, PHB, Packet, phb_for_dscp

__all__ = ["DropTailQueue", "PriorityScheduler"]


@dataclass
class DropTailQueue:
    """A FIFO bounded in bits; arrivals that would overflow are dropped."""

    capacity_bits: float
    _items: deque = field(default_factory=deque)
    occupancy_bits: float = 0.0
    drops: int = 0
    enqueued: int = 0

    def offer(self, packet: Packet) -> bool:
        """Enqueue *packet*; returns False (drop) when the queue is full."""
        if self.occupancy_bits + packet.size_bits > self.capacity_bits:
            self.drops += 1
            return False
        self._items.append(packet)
        self.occupancy_bits += packet.size_bits
        self.enqueued += 1
        return True

    def poll(self) -> Packet | None:
        if not self._items:
            return None
        packet = self._items.popleft()
        self.occupancy_bits -= packet.size_bits
        return packet

    def __len__(self) -> int:
        return len(self._items)


#: Occupancy fractions above which assured-class arrivals of the given
#: drop precedence are discarded early (RFC 2597 semantics: AF43 is the
#: most droppable, AF41 survives until the queue is genuinely full).
_AF_DROP_THRESHOLDS = {
    DSCP.AF43: 0.50,
    DSCP.AF42: 0.75,
}


class PriorityScheduler:
    """Strict-priority service over per-PHB drop-tail queues.

    Within the assured class the three AF4x drop precedences are honoured:
    when the assured queue fills past a threshold, higher-precedence
    arrivals are discarded before lower ones, so an AF41 flow degrades
    last (the standard DiffServ AF PHB group behaviour).
    """

    def __init__(self, capacity_bits_per_class: float = 1_000_000.0):
        self.queues: dict[PHB, DropTailQueue] = {
            phb: DropTailQueue(capacity_bits_per_class) for phb in PHB
        }
        #: Early drops by drop-precedence policing (excludes tail drops).
        self.precedence_drops = 0

    def offer(self, packet: Packet) -> bool:
        """Classify by DSCP and enqueue.  Returns False on any drop."""
        queue = self.queues[phb_for_dscp(packet.dscp)]
        threshold = _AF_DROP_THRESHOLDS.get(packet.dscp)
        if (
            threshold is not None
            and queue.occupancy_bits >= threshold * queue.capacity_bits
        ):
            self.precedence_drops += 1
            queue.drops += 1
            return False
        return queue.offer(packet)

    def poll(self) -> Packet | None:
        """Dequeue from the highest-priority non-empty class."""
        for phb in PHB:  # ordered: EXPEDITED, ASSURED, DEFAULT
            packet = self.queues[phb].poll()
            if packet is not None:
                return packet
        return None

    @property
    def backlog_bits(self) -> float:
        return sum(q.occupancy_bits for q in self.queues.values())

    @property
    def total_drops(self) -> int:
        return sum(q.drops for q in self.queues.values())

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues.values())
