"""Token buckets: the policing/shaping primitive of the DiffServ edge.

A bucket of depth ``burst_bits`` fills at ``rate_bps``; a packet of
``size_bits`` conforms when the bucket holds at least that many tokens.
Edge routers use buckets in two roles:

* **per-flow policer** at the first router, checking a flow against its
  reserved traffic profile (paper §2: "only the first router recognizes
  packets on a per flow base");
* **aggregate policer** at a domain's ingress, checking the whole EF
  aggregate against the sum of reservations the bandwidth broker has
  admitted — the mechanism whose blindness to individual flows enables
  the Figure 4 misreservation attack.

Tokens are refilled lazily from the virtual clock, so no periodic refill
events are needed (keeps the event loop small).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["TokenBucket"]


@dataclass
class TokenBucket:
    """Lazy-refill token bucket."""

    rate_bps: float
    burst_bits: float
    tokens: float = -1.0  # sentinel: initialise full
    last_refill: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps < 0 or self.burst_bits <= 0:
            raise SimulationError("token bucket needs rate >= 0 and burst > 0")
        if self.tokens < 0:
            self.tokens = self.burst_bits

    def _refill(self, now: float) -> None:
        if now < self.last_refill:
            raise SimulationError(
                f"token bucket time went backwards ({now} < {self.last_refill})"
            )
        self.tokens = min(self.burst_bits, self.tokens + (now - self.last_refill) * self.rate_bps)
        self.last_refill = now

    def conforms(self, size_bits: float, now: float) -> bool:
        """Would a packet of *size_bits* conform right now?  (No state change.)"""
        available = min(
            self.burst_bits, self.tokens + (now - self.last_refill) * self.rate_bps
        )
        return available >= size_bits

    def consume(self, size_bits: float, now: float) -> bool:
        """Consume tokens for a conforming packet; return False (and leave
        the bucket untouched) for a non-conforming one."""
        self._refill(now)
        if self.tokens >= size_bits:
            self.tokens -= size_bits
            return True
        return False

    def delay_until_conformant(self, size_bits: float, now: float) -> float:
        """Seconds to wait until *size_bits* tokens are available (for
        shaping rather than policing).  Infinite when the packet can never
        conform (size exceeds the burst depth or rate is zero)."""
        self._refill(now)
        if self.tokens >= size_bits:
            return 0.0
        if size_bits > self.burst_bits or self.rate_bps == 0:
            return float("inf")
        return (size_bits - self.tokens) / self.rate_bps

    def reconfigure(self, rate_bps: float | None = None, burst_bits: float | None = None,
                    now: float | None = None) -> None:
        """Adjust rate/burst in place (bandwidth broker re-provisioning an
        edge router when reservations come and go)."""
        if now is not None:
            self._refill(now)
        if rate_bps is not None:
            if rate_bps < 0:
                raise SimulationError("rate must be >= 0")
            self.rate_bps = rate_bps
        if burst_bits is not None:
            if burst_bits <= 0:
                raise SimulationError("burst must be > 0")
            self.burst_bits = burst_bits
            self.tokens = min(self.tokens, burst_bits)
