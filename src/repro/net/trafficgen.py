"""Traffic generators: simulator processes that inject packets for a flow.

Three arrival models cover the paper's workloads:

* :class:`CBRSource` — constant bit rate (the natural model for the
  reserved high-end streams the paper's applications generate: distance
  visualization, data streaming);
* :class:`PoissonSource` — exponential inter-arrivals at a mean rate
  (background/best-effort mixes);
* :class:`OnOffSource` — bursty two-state traffic (stress-tests policer
  burst tolerances).

Each generator schedules itself on the shared simulator; call
:meth:`start` once and it keeps emitting until ``stop_time``.
"""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.net.diffserv import NetworkModel
from repro.net.flows import FlowSpec
from repro.net.packet import Packet

__all__ = ["CBRSource", "PoissonSource", "OnOffSource", "AIMDSource"]


class _SourceBase:
    def __init__(
        self,
        model: NetworkModel,
        spec: FlowSpec,
        *,
        start_time: float = 0.0,
        stop_time: float = float("inf"),
    ):
        if spec.rate_mbps <= 0:
            raise SimulationError("source rate must be positive")
        self.model = model
        self.spec = spec
        self.start_time = start_time
        self.stop_time = stop_time
        self._started = False

    def start(self) -> None:
        if self._started:
            raise SimulationError("source already started")
        self._started = True
        delay = max(0.0, self.start_time - self.model.sim.now)
        self.model.sim.schedule(delay, self._emit)

    def _make_packet(self) -> Packet:
        return Packet(
            flow_id=self.spec.flow_id,
            src=self.spec.src,
            dst=self.spec.dst,
            size_bits=self.spec.packet_size_bits,
            dscp=self.spec.dscp,
        )

    def _emit(self) -> None:
        now = self.model.sim.now
        if now >= self.stop_time:
            return
        self.model.inject(self._make_packet())
        gap = self._next_gap()
        if now + gap < self.stop_time:
            self.model.sim.schedule(gap, self._emit)

    def _next_gap(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class CBRSource(_SourceBase):
    """Constant bit rate: fixed inter-packet gap."""

    def _next_gap(self) -> float:
        return self.spec.packet_size_bits / self.spec.rate_bps


class PoissonSource(_SourceBase):
    """Poisson arrivals with the spec's mean rate."""

    def __init__(self, model: NetworkModel, spec: FlowSpec, *, rng: random.Random,
                 **kwargs):
        super().__init__(model, spec, **kwargs)
        self.rng = rng

    def _next_gap(self) -> float:
        mean_gap = self.spec.packet_size_bits / self.spec.rate_bps
        return self.rng.expovariate(1.0 / mean_gap)


class OnOffSource(_SourceBase):
    """Exponential on/off bursts.  During ON periods packets are emitted
    back-to-back at ``peak_multiplier`` times the mean rate; the mean rate
    over time equals the spec rate when ``on_fraction`` matches."""

    def __init__(
        self,
        model: NetworkModel,
        spec: FlowSpec,
        *,
        rng: random.Random,
        mean_on_s: float = 0.05,
        mean_off_s: float = 0.05,
        **kwargs,
    ):
        super().__init__(model, spec, **kwargs)
        self.rng = rng
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        on_fraction = mean_on_s / (mean_on_s + mean_off_s)
        # Peak rate chosen so the long-run average equals the spec rate.
        self.peak_gap = self.spec.packet_size_bits / (self.spec.rate_bps / on_fraction)
        self._on_until = 0.0

    def _next_gap(self) -> float:
        now = self.model.sim.now
        if now >= self._on_until:
            off = self.rng.expovariate(1.0 / self.mean_off_s)
            on = self.rng.expovariate(1.0 / self.mean_on_s)
            self._on_until = now + off + on
            return off + self.peak_gap
        return self.peak_gap


class AIMDSource(_SourceBase):
    """An adaptive, TCP-friendly source (additive increase /
    multiplicative decrease on loss).

    The paper's motivating applications run over TCP, and the authors'
    own DiffServ work [20] studied exactly how adaptive flows share links
    with reserved traffic.  This source sends at a controlled rate and
    adjusts it once per ``control_interval_s``: if any of its packets
    were dropped since the last check the rate halves; otherwise it grows
    by ``increase_mbps``.  The spec's ``rate_mbps`` caps the rate (the
    application-limited ceiling); ``floor_mbps`` bounds the backoff.

    It converges to the spare capacity left by strict-priority EF traffic
    — the behaviour the DiffServ value proposition depends on.
    """

    def __init__(
        self,
        model: NetworkModel,
        spec: FlowSpec,
        *,
        start_rate_mbps: float | None = None,
        increase_mbps: float = 1.0,
        decrease_factor: float = 0.5,
        floor_mbps: float = 0.1,
        control_interval_s: float = 0.05,
        **kwargs,
    ):
        super().__init__(model, spec, **kwargs)
        if not (0.0 < decrease_factor < 1.0):
            raise SimulationError("decrease factor must be in (0, 1)")
        self.rate_mbps = (
            start_rate_mbps if start_rate_mbps is not None else spec.rate_mbps / 2
        )
        self.increase_mbps = increase_mbps
        self.decrease_factor = decrease_factor
        self.floor_mbps = floor_mbps
        self.control_interval_s = control_interval_s
        self._seen_drops = 0
        self._seen_downgrades = 0
        #: (time, rate) samples, one per control decision.
        self.rate_history: list[tuple[float, float]] = []

    def start(self) -> None:
        super().start()
        self.model.sim.schedule(
            max(0.0, self.start_time - self.model.sim.now)
            + self.control_interval_s,
            self._control,
        )

    def _next_gap(self) -> float:
        return self.spec.packet_size_bits / (self.rate_mbps * 1e6)

    def _control(self) -> None:
        now = self.model.sim.now
        if now >= self.stop_time:
            return
        stats = self.model.stats_for(self.spec.flow_id)
        lost = stats.dropped_packets - self._seen_drops
        self._seen_drops = stats.dropped_packets
        if lost > 0:
            self.rate_mbps = max(
                self.floor_mbps, self.rate_mbps * self.decrease_factor
            )
        else:
            self.rate_mbps = min(
                self.spec.rate_mbps, self.rate_mbps + self.increase_mbps
            )
        self.rate_history.append((now, self.rate_mbps))
        self.model.sim.schedule(self.control_interval_s, self._control)
