"""The DiffServ data plane: edge classification/policing, core PHBs.

:class:`NetworkModel` animates a :class:`~repro.net.topology.Topology`
on a :class:`~repro.net.simulator.Simulator`:

* every directed link direction is an output port — a strict-priority
  scheduler draining at link capacity, plus propagation delay;
* the *first router* a flow traverses may hold a **per-flow policer**
  (installed by the source domain's bandwidth broker when a reservation
  is claimed): conforming packets are marked with the reserved DSCP,
  excess packets are downgraded to best effort or dropped;
* packets marked in a reserved class that reach a first-hop router with
  no policer for their flow are *remarked to best effort* — hosts cannot
  self-award EF service;
* every **domain ingress** edge router may hold an **aggregate policer**
  per DSCP (configured by that domain's broker to the sum of admitted
  reservations crossing this ingress).  The aggregate policer knows
  nothing about individual flows — exactly the property the Figure 4
  misreservation attack exploits.

The model is packet level but entirely event driven; a 10-second,
three-domain, multi-flow scenario simulates in well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import RoutingError, SimulationError
from repro.net.flows import FlowStats
from repro.obs import metrics as obs_metrics
from repro.net.packet import DSCP, Packet
from repro.net.queues import PriorityScheduler
from repro.net.simulator import Simulator
from repro.net.tokenbucket import TokenBucket
from repro.net.topology import NodeKind, Topology

__all__ = [
    "ExceedAction",
    "TrafficProfile",
    "FlowPolicer",
    "AggregatePolicer",
    "NetworkModel",
]

#: Hop budget: packets travelling further than this are assumed looping.
MAX_HOPS = 64


class ExceedAction(Enum):
    """What a policer does with non-conforming packets."""

    DROP = "drop"
    DOWNGRADE = "downgrade"


@dataclass(frozen=True)
class TrafficProfile:
    """A token-bucket traffic profile (the SLS 'traffic profile' of §2)."""

    rate_mbps: float
    burst_bits: float = 100_000.0

    @property
    def rate_bps(self) -> float:
        return self.rate_mbps * 1e6

    def make_bucket(self, now: float = 0.0) -> TokenBucket:
        return TokenBucket(self.rate_bps, self.burst_bits, last_refill=now)


@dataclass
class FlowPolicer:
    """Per-flow policer + marker at the flow's first router."""

    flow_id: str
    bucket: TokenBucket
    mark: DSCP
    exceed: ExceedAction = ExceedAction.DOWNGRADE
    conformed: int = 0
    exceeded: int = 0


@dataclass
class AggregatePolicer:
    """Per-DSCP aggregate policer at a domain ingress."""

    dscp: DSCP
    bucket: TokenBucket
    exceed: ExceedAction = ExceedAction.DROP
    conformed: int = 0
    exceeded: int = 0


class _OutputPort:
    """One direction of a link: queue + transmitter."""

    __slots__ = ("capacity_bps", "delay_s", "scheduler", "busy", "tx_bits")

    def __init__(self, capacity_mbps: float, delay_s: float, queue_bits: float):
        self.capacity_bps = capacity_mbps * 1e6
        self.delay_s = delay_s
        self.scheduler = PriorityScheduler(queue_bits)
        self.busy = False
        self.tx_bits = 0.0


class NetworkModel:
    """Event-driven DiffServ data plane over a topology."""

    def __init__(
        self,
        topology: Topology,
        sim: Simulator | None = None,
        *,
        queue_bits_per_class: float = 600_000.0,
    ):
        self.topology = topology
        self.sim = sim if sim is not None else Simulator()
        self._ports: dict[tuple[str, str], _OutputPort] = {}
        for a, b in topology.graph.edges:
            attrs = topology.link_attrs(a, b)
            for u, v in ((a, b), (b, a)):
                self._ports[(u, v)] = _OutputPort(
                    attrs["capacity_mbps"], attrs["delay_s"], queue_bits_per_class
                )
        self._flow_policers: dict[str, dict[str, FlowPolicer]] = {}
        self._aggregate_policers: dict[str, dict[DSCP, AggregatePolicer]] = {}
        self.stats: dict[str, FlowStats] = {}
        self._next_hop_cache: dict[tuple[str, str], str] = {}
        #: (router, reason) -> count; diagnostic ledger of all drops.
        self.drop_ledger: dict[tuple[str, str], int] = {}

    # -- broker-facing configuration ------------------------------------------------

    def install_flow_policer(
        self,
        router: str,
        flow_id: str,
        profile: TrafficProfile,
        *,
        mark: DSCP = DSCP.EF,
        exceed: ExceedAction = ExceedAction.DOWNGRADE,
    ) -> FlowPolicer:
        """Install per-flow classification at *router* (a BB action when a
        reservation is claimed)."""
        info = self.topology.node(router)
        if not info.is_router:
            raise RoutingError(f"{router!r} is not a router")
        policer = FlowPolicer(flow_id, profile.make_bucket(self.sim.now), mark, exceed)
        self._flow_policers.setdefault(router, {})[flow_id] = policer
        return policer

    def remove_flow_policer(self, router: str, flow_id: str) -> None:
        try:
            del self._flow_policers[router][flow_id]
        except KeyError:
            raise SimulationError(
                f"no policer for flow {flow_id!r} at {router!r}"
            ) from None

    def set_aggregate_rate(
        self,
        router: str,
        dscp: DSCP,
        rate_mbps: float,
        *,
        burst_bits: float = 200_000.0,
        exceed: ExceedAction = ExceedAction.DROP,
    ) -> AggregatePolicer:
        """Configure (or reconfigure) the per-DSCP aggregate policer at a
        domain-ingress edge router."""
        info = self.topology.node(router)
        if info.kind is not NodeKind.EDGE_ROUTER:
            raise RoutingError(f"{router!r} is not an edge router")
        policers = self._aggregate_policers.setdefault(router, {})
        existing = policers.get(dscp)
        if existing is not None:
            existing.bucket.reconfigure(
                rate_bps=rate_mbps * 1e6, burst_bits=burst_bits, now=self.sim.now
            )
            existing.exceed = exceed
            return existing
        policer = AggregatePolicer(
            dscp,
            TokenBucket(rate_mbps * 1e6, burst_bits, last_refill=self.sim.now),
            exceed,
        )
        policers[dscp] = policer
        return policer

    def aggregate_policer(self, router: str, dscp: DSCP) -> AggregatePolicer | None:
        return self._aggregate_policers.get(router, {}).get(dscp)

    def flow_policer(self, router: str, flow_id: str) -> FlowPolicer | None:
        return self._flow_policers.get(router, {}).get(flow_id)

    # -- traffic entry ----------------------------------------------------------------

    def stats_for(self, flow_id: str) -> FlowStats:
        if flow_id not in self.stats:
            self.stats[flow_id] = FlowStats(flow_id)
        return self.stats[flow_id]

    def inject(self, packet: Packet) -> None:
        """Offer *packet* to the network at its source host."""
        src = self.topology.node(packet.src)
        if src.kind is not NodeKind.HOST:
            raise RoutingError(f"packets must originate at hosts, not {packet.src!r}")
        packet.created = self.sim.now
        self.stats_for(packet.flow_id).on_send(packet.size_bits, self.sim.now)
        self._forward(packet, at=packet.src, prev=None)

    # -- internal data path --------------------------------------------------------------

    def _drop(self, packet: Packet, where: str, reason: str) -> None:
        key = (where, reason)
        self.drop_ledger[key] = self.drop_ledger.get(key, 0) + 1
        self.stats_for(packet.flow_id).on_drop()
        registry = obs_metrics.get_registry()
        if registry is not None:
            # Drops are rare relative to forwards, so metering here keeps
            # the per-packet fast path free of registry lookups.
            registry.counter(
                "packet_drops_total", "Packets dropped in the data plane",
            ).inc(where=where, reason=reason)
            if reason == "queue-overflow":
                for (u, _v), port in self._ports.items():
                    if u == where:
                        registry.gauge(
                            "queue_depth_bits",
                            "Scheduler occupancy at the dropping router",
                        ).set(port.scheduler.backlog_bits, router=where)
                        break

    def _next_hop(self, at: str, dst: str) -> str:
        key = (at, dst)
        hop = self._next_hop_cache.get(key)
        if hop is None:
            path = self.topology.shortest_path(at, dst)
            # Cache every prefix of the path while we have it.
            for i in range(len(path) - 1):
                self._next_hop_cache[(path[i], dst)] = path[i + 1]
            hop = path[1]
        return hop

    def _apply_first_hop_policing(self, packet: Packet, router: str) -> bool:
        """Per-flow policing at the flow's first router.  Returns False when
        the packet was dropped."""
        policer = self._flow_policers.get(router, {}).get(packet.flow_id)
        if policer is None:
            # No reservation claimed here: reserved marks are not honoured.
            if packet.dscp != DSCP.BE:
                packet.dscp = DSCP.BE
                packet.downgraded = True
                self.stats_for(packet.flow_id).on_downgrade()
            return True
        if policer.bucket.consume(packet.size_bits, self.sim.now):
            policer.conformed += 1
            packet.dscp = policer.mark
            return True
        policer.exceeded += 1
        if policer.exceed is ExceedAction.DROP:
            self._drop(packet, router, "flow-policer")
            return False
        packet.dscp = DSCP.BE
        packet.downgraded = True
        self.stats_for(packet.flow_id).on_downgrade()
        return True

    def _apply_ingress_policing(self, packet: Packet, router: str) -> bool:
        """Aggregate policing when a packet enters a new domain."""
        policer = self._aggregate_policers.get(router, {}).get(packet.dscp)
        if policer is None:
            # Unprovisioned ingress: reserved marks are stripped.
            if packet.dscp != DSCP.BE:
                packet.dscp = DSCP.BE
                packet.downgraded = True
                self.stats_for(packet.flow_id).on_downgrade()
            return True
        if policer.bucket.consume(packet.size_bits, self.sim.now):
            policer.conformed += 1
            return True
        policer.exceeded += 1
        if policer.exceed is ExceedAction.DROP:
            self._drop(packet, router, "aggregate-policer")
            return False
        packet.dscp = DSCP.BE
        packet.downgraded = True
        self.stats_for(packet.flow_id).on_downgrade()
        return True

    def _forward(self, packet: Packet, at: str, prev: str | None) -> None:
        """Process *packet* at node *at* (arrived from *prev*)."""
        if at == packet.dst:
            self.stats_for(packet.flow_id).on_deliver(
                packet.size_bits, packet.created, self.sim.now
            )
            return
        info = self.topology.node(at)
        if info.kind is NodeKind.HOST and prev is not None:
            self._drop(packet, at, "misdelivered")
            return
        packet.hops += 1
        if packet.hops > MAX_HOPS:
            self._drop(packet, at, "ttl")
            return
        if info.is_router:
            if prev is not None and self.topology.node(prev).kind is NodeKind.HOST:
                if not self._apply_first_hop_policing(packet, at):
                    return
            if (
                prev is not None
                and self.topology.node(prev).domain != info.domain
            ):
                if not self._apply_ingress_policing(packet, at):
                    return
        nxt = self._next_hop(at, packet.dst)
        self._transmit(packet, at, nxt)

    def _transmit(self, packet: Packet, u: str, v: str) -> None:
        port = self._ports[(u, v)]
        if not port.scheduler.offer(packet):
            self._drop(packet, u, "queue-overflow")
            return
        if not port.busy:
            self._service(port, u, v)

    def _service(self, port: _OutputPort, u: str, v: str) -> None:
        packet = port.scheduler.poll()
        if packet is None:
            port.busy = False
            return
        port.busy = True
        tx_time = packet.size_bits / port.capacity_bps
        port.tx_bits += packet.size_bits
        arrival = tx_time + port.delay_s
        self.sim.schedule(arrival, lambda p=packet: self._forward(p, at=v, prev=u))
        self.sim.schedule(tx_time, lambda: self._service(port, u, v))

    # -- measurement -------------------------------------------------------------------

    def port_utilization_bits(self, u: str, v: str) -> float:
        return self._ports[(u, v)].tx_bits

    def total_drops(self, reason: str | None = None) -> int:
        return sum(
            n for (where, r), n in self.drop_ledger.items()
            if reason is None or r == reason
        )
