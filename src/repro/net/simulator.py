"""A small discrete-event simulation engine.

Everything time-dependent in the reproduction — packet transmission,
token-bucket refill, signalling-channel latency — runs on this engine.
The design follows the classic event-list pattern: a heap of
``(time, sequence, callback)`` entries, a virtual clock that jumps from
event to event, and zero wall-clock coupling so every run is
deterministic and fast (the guides' "make it work, make it reliable"
rule; the loop itself is the measured hot path and is kept allocation
light).

Example::

    sim = Simulator()
    sim.schedule(1.0, lambda: print("one second in"))
    sim.run(until=10.0)
"""

from __future__ import annotations

import heapq
import itertools
import logging
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.obs import metrics as obs_metrics

__all__ = ["Simulator", "Event", "Trace"]

logger = logging.getLogger(__name__)


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq) so ties preserve
    scheduling order.  Cancelled events stay in the heap but are skipped."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event-driven virtual-time scheduler."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Run *action* after *delay* seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.at(self._now + delay, action)

    def at(self, time: float, action: Callable[[], None]) -> Event:
        """Run *action* at absolute virtual *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        event = Event(time, next(self._seq), action)
        heapq.heappush(self._queue, event)
        return event

    # -- execution --------------------------------------------------------------

    def step(self) -> bool:
        """Process the next pending event.  Returns False when idle."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self.events_processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the event list drains, *until* is reached, or
        *max_events* have been processed."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # Metered outside the event loop so the hot path stays untouched.
        events_before = self.events_processed
        try:
            processed = 0
            queue = self._queue
            while queue:
                if max_events is not None and processed >= max_events:
                    return
                event = queue[0]
                if event.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    return
                heapq.heappop(queue)
                self._now = event.time
                event.action()
                self.events_processed += 1
                processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            registry = obs_metrics.get_registry()
            if registry is not None:
                processed_now = self.events_processed - events_before
                if processed_now:
                    registry.counter(
                        "sim_events_processed_total",
                        "Discrete events executed by the simulator",
                    ).inc(processed_now)
                registry.gauge(
                    "sim_pending_events",
                    "Events still queued when the last run() returned",
                ).set(self.pending)
                logger.debug(
                    "run() processed %d events, %d pending, t=%.6f",
                    processed_now, self.pending, self._now,
                )

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)


class Trace:
    """Append-only time series recorder: ``(time, value)`` samples.

    Used by measurement probes (throughput, queue depth, drops) and by
    the benchmark harness to regenerate figure data.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise SimulationError(
                f"trace {self.name!r}: time went backwards ({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def total(self) -> float:
        return sum(self.values)

    def rate_over(self, start: float, end: float) -> float:
        """Sum of values recorded in [start, end) divided by the window."""
        if end <= start:
            raise SimulationError("rate window must have positive width")
        total = sum(v for t, v in zip(self.times, self.values) if start <= t < end)
        return total / (end - start)

    def samples(self) -> list[tuple[float, float]]:
        return list(zip(self.times, self.values))
