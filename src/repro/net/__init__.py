"""Network substrate: a discrete-event Differentiated-Services simulator.

This package replaces the paper's physical WAN testbed (DESIGN.md §3):
multi-domain topologies, DSCP marking, token-bucket policing at the edge,
strict-priority per-hop behaviours in the core, and traffic generators —
everything needed to demonstrate both working end-to-end reservations and
the Figure 4 misreservation attack.
"""

from repro.net.diffserv import (
    AggregatePolicer,
    ExceedAction,
    FlowPolicer,
    NetworkModel,
    TrafficProfile,
)
from repro.net.flows import FlowSpec, FlowStats
from repro.net.packet import DSCP, PHB, Packet, phb_for_dscp
from repro.net.queues import DropTailQueue, PriorityScheduler
from repro.net.simulator import Simulator, Trace
from repro.net.tokenbucket import TokenBucket
from repro.net.topology import NodeKind, Topology, linear_domain_chain
from repro.net.probes import BacklogProbe, DropProbe, GoodputProbe
from repro.net.trafficgen import AIMDSource, CBRSource, OnOffSource, PoissonSource

__all__ = [
    "Simulator",
    "Trace",
    "Topology",
    "NodeKind",
    "linear_domain_chain",
    "Packet",
    "DSCP",
    "PHB",
    "phb_for_dscp",
    "TokenBucket",
    "DropTailQueue",
    "PriorityScheduler",
    "NetworkModel",
    "TrafficProfile",
    "FlowPolicer",
    "AggregatePolicer",
    "ExceedAction",
    "FlowSpec",
    "FlowStats",
    "CBRSource",
    "PoissonSource",
    "OnOffSource",
    "AIMDSource",
    "GoodputProbe",
    "BacklogProbe",
    "DropProbe",
]
