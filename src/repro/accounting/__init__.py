"""Transitive billing along the SLA chain (paper §6.4)."""

from repro.accounting.billing import BillingRun, Invoice, TransitiveBilling

__all__ = ["Invoice", "BillingRun", "TransitiveBilling"]
