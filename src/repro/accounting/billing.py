"""Transitive billing along the SLA chain (paper §6.4).

"Whenever a domain actually bills the requesting entity for the use of
the network service, SLAs are already used to set up a transitive billing
relation in multi-domain networks.  When network traffic enters domain C
through domain B, it is billed using the agreement between B and C.  B as
a transient domain, however, would also bill traffic originating from a
different domain using the related SLA.  Finally, the source domain would
bill the traffic against the originator."

Model: every domain on the path charges its *own* tariff (the ingress
SLA's ``price_per_mbps_hour``; the source domain uses its user tariff)
and passes through whatever it was billed from downstream.  Invoices
therefore cascade upstream — C bills B, B bills A (B's own charge plus
C's invoice), A bills the user — and the user's single invoice equals the
sum of every domain's own charge.  :meth:`TransitiveBilling.net_position`
checks the conservation property: each transit domain nets exactly its
own charge, and the sum of all net positions equals the user's payment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hopbyhop import SignallingOutcome
from repro.crypto.dn import DistinguishedName
from repro.errors import AccountingError

__all__ = ["Invoice", "BillingRun", "TransitiveBilling"]


@dataclass(frozen=True)
class Invoice:
    """One bill: *issuer* charges *payer* `amount` for `usage_mbps_hours`.

    ``own_charge`` is the issuer's tariff portion; ``passed_through`` the
    downstream invoices it forwards.  ``amount = own_charge +
    passed_through``.
    """

    issuer: str
    payer: str
    usage_mbps_hours: float
    own_charge: float
    passed_through: float

    @property
    def amount(self) -> float:
        return self.own_charge + self.passed_through


@dataclass
class BillingRun:
    """All invoices produced for one reservation's usage."""

    user: DistinguishedName
    path: tuple[str, ...]
    usage_mbps_hours: float
    invoices: tuple[Invoice, ...] = ()
    #: Correlation id of the signalling run billed, for audit
    #: reconciliation against the decision ledger ("" pre-ISSUE-6).
    correlation_id: str = ""

    def invoice_to_user(self) -> Invoice:
        for inv in self.invoices:
            if inv.payer == str(self.user):
                return inv
        raise AccountingError("no invoice addressed to the user")

    def invoice_between(self, issuer: str, payer: str) -> Invoice:
        for inv in self.invoices:
            if inv.issuer == issuer and inv.payer == payer:
                return inv
        raise AccountingError(f"no invoice {issuer} -> {payer}")


class TransitiveBilling:
    """Generates and ledgers transitive invoices for granted reservations."""

    def __init__(self, brokers, *, user_tariff_per_mbps_hour: float = 2.0):
        self.brokers = dict(brokers)
        self.user_tariff = user_tariff_per_mbps_hour
        self.ledger: list[BillingRun] = []

    def _ingress_price(self, domain: str, upstream: str) -> float:
        """The price of the SLA governing traffic entering *domain* from
        *upstream* (what *domain* charges *upstream*)."""
        broker = self.brokers[domain]
        sla = broker.slas_in.get(upstream)
        if sla is None:
            raise AccountingError(f"no SLA {upstream} -> {domain}")
        return sla.price_per_mbps_hour

    def bill(
        self,
        outcome: SignallingOutcome,
        *,
        usage_mbps_hours: float | None = None,
    ) -> BillingRun:
        """Produce the invoice cascade for a granted reservation.

        ``usage_mbps_hours`` defaults to the reserved rate times the
        reservation duration (flat-rate billing of the reserved profile).
        """
        if not outcome.granted or outcome.verified is None:
            raise AccountingError("can only bill granted reservations")
        request = outcome.verified.request
        if usage_mbps_hours is None:
            usage_mbps_hours = request.rate_mbps * request.duration / 3600.0
        path = outcome.path

        invoices: list[Invoice] = []
        passed = 0.0
        # Walk from the destination towards the source: each domain bills
        # its upstream neighbour its own tariff plus the pass-through.
        for i in range(len(path) - 1, 0, -1):
            domain, upstream = path[i], path[i - 1]
            own = self._ingress_price(domain, upstream) * usage_mbps_hours
            invoices.append(
                Invoice(
                    issuer=domain,
                    payer=upstream,
                    usage_mbps_hours=usage_mbps_hours,
                    own_charge=own,
                    passed_through=passed,
                )
            )
            passed += own
        # Finally the source domain bills the originator.
        source = path[0]
        invoices.append(
            Invoice(
                issuer=source,
                payer=str(outcome.verified.user),
                usage_mbps_hours=usage_mbps_hours,
                own_charge=self.user_tariff * usage_mbps_hours,
                passed_through=passed,
            )
        )
        run = BillingRun(
            user=outcome.verified.user,
            path=path,
            usage_mbps_hours=usage_mbps_hours,
            invoices=tuple(invoices),
            correlation_id=outcome.correlation_id or "",
        )
        self.ledger.append(run)
        return run

    # -- settlement ------------------------------------------------------------------

    @staticmethod
    def net_position(run: BillingRun, party: str) -> float:
        """Money received minus money paid by *party* in this run."""
        received = sum(i.amount for i in run.invoices if i.issuer == party)
        paid = sum(i.amount for i in run.invoices if i.payer == party)
        return received - paid

    @staticmethod
    def conservation_holds(run: BillingRun, *, tol: float = 1e-9) -> bool:
        """The user's payment equals the sum of all own charges, and every
        party's net position equals its own charge (zero for the user)."""
        user_paid = run.invoice_to_user().amount
        total_own = sum(i.own_charge for i in run.invoices)
        if abs(user_paid - total_own) > tol:
            return False
        for inv in run.invoices:
            net = TransitiveBilling.net_position(run, inv.issuer)
            if abs(net - inv.own_charge) > tol:
                return False
        return True
