"""Key pairs and signature schemes.

The signalling protocol of the paper rests on one primitive: a party signs
a structured value with its private key, and any holder of the matching
public key can verify the signature.  This module provides two
interchangeable implementations behind the :class:`SignatureScheme`
protocol:

* :class:`RSAScheme` — genuine textbook RSA with Miller–Rabin key
  generation and hash-then-sign (``sig = H(m)^d mod n``).  Keys default to
  1024 bits, adequate for a simulation substrate and fast enough to
  generate in bulk.  This is the reproduction's stand-in for the OpenSSL
  RSA keys the 2001 deployment would have used.
* :class:`SimulatedScheme` — a *non-cryptographic* scheme for large-scale
  benchmarks.  Signing hashes the private seed with the message; the
  public key carries the seed so verification can recompute the hash.
  It preserves the two properties the protocol logic depends on — any
  message or key mismatch is detected, and only the correct key pair
  produces accepting signatures inside an honest simulation — but offers
  **no security against an adversary who inspects public keys**.  Its use
  is flagged via :attr:`SignatureScheme.secure`.

All randomness is drawn from an injected :class:`random.Random`, making
key generation reproducible; no global RNG state is touched.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.errors import CryptoError

__all__ = [
    "PublicKey",
    "PrivateKey",
    "KeyPair",
    "SignatureScheme",
    "RSAScheme",
    "SimulatedScheme",
    "get_scheme",
    "register_scheme",
]


@dataclass(frozen=True)
class PublicKey:
    """A public key: a scheme name plus scheme-specific material."""

    scheme: str
    material: tuple
    #: Short identifier derived from the key material; used for logging
    #: and for matching certificates to keys.
    key_id: str = field(init=False)

    def __post_init__(self) -> None:
        blob = repr((self.scheme, self.material)).encode()
        object.__setattr__(self, "key_id", hashlib.sha256(blob).hexdigest()[:16])

    def to_cbe(self) -> Any:
        return {"scheme": self.scheme, "material": [str(m) for m in self.material]}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PublicKey({self.scheme}, id={self.key_id})"


@dataclass(frozen=True)
class PrivateKey:
    """A private key.  Never placed inside messages or certificates."""

    scheme: str
    material: tuple

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivateKey({self.scheme}, <secret>)"


@dataclass(frozen=True)
class KeyPair:
    """A matched (private, public) pair produced by a scheme's keygen."""

    private: PrivateKey
    public: PublicKey

    @property
    def scheme(self) -> str:
        return self.public.scheme


@runtime_checkable
class SignatureScheme(Protocol):
    """Interface all signature schemes implement."""

    #: Registry name of the scheme ("rsa", "simulated").
    name: str
    #: True when the scheme offers actual cryptographic security.
    secure: bool

    def generate(self, rng: random.Random) -> KeyPair:  # pragma: no cover
        """Generate a fresh key pair using *rng* as the entropy source."""
        ...

    def sign(self, private: PrivateKey, message: bytes) -> bytes:  # pragma: no cover
        """Return a signature over *message*."""
        ...

    def verify(self, public: PublicKey, message: bytes, signature: bytes) -> bool:  # pragma: no cover
        """Return True iff *signature* is valid for *message* under *public*."""
        ...


# ---------------------------------------------------------------------------
# RSA
# ---------------------------------------------------------------------------

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller–Rabin primality test with *rounds* random bases."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    """Return a random probable prime of exactly *bits* bits."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


class RSAScheme:
    """Textbook RSA with hash-then-sign.

    The signature is ``pow(int(SHA-256(message)), d, n)``.  Verification
    recomputes the digest and checks ``pow(sig, e, n)`` against it.  No
    padding is applied; for the threat model of a protocol simulation
    (tamper evidence, key binding) this is sufficient and keeps the
    implementation transparent.
    """

    name = "rsa"
    secure = True

    def __init__(self, bits: int = 1024, public_exponent: int = 65537) -> None:
        if bits < 256:
            raise CryptoError("RSA modulus must be at least 256 bits")
        self.bits = bits
        self.e = public_exponent

    def generate(self, rng: random.Random) -> KeyPair:
        half = self.bits // 2
        while True:
            p = _random_prime(half, rng)
            q = _random_prime(self.bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % self.e == 0:
                continue
            try:
                d = pow(self.e, -1, phi)
            except ValueError:
                continue
            public = PublicKey(self.name, (n, self.e))
            private = PrivateKey(self.name, (n, d))
            return KeyPair(private, public)

    @staticmethod
    def _digest_int(message: bytes, n: int) -> int:
        return int.from_bytes(hashlib.sha256(message).digest(), "big") % n

    def sign(self, private: PrivateKey, message: bytes) -> bytes:
        if private.scheme != self.name:
            raise CryptoError(f"key scheme {private.scheme!r} != {self.name!r}")
        n, d = private.material
        h = self._digest_int(message, n)
        sig = pow(h, d, n)
        return sig.to_bytes((n.bit_length() + 7) // 8, "big")

    def verify(self, public: PublicKey, message: bytes, signature: bytes) -> bool:
        if public.scheme != self.name:
            return False
        n, e = public.material
        try:
            sig = int.from_bytes(signature, "big")
        except (TypeError, ValueError):
            return False
        if not 0 < sig < n:
            return False
        return pow(sig, e, n) == self._digest_int(message, n)


# ---------------------------------------------------------------------------
# Simulated scheme
# ---------------------------------------------------------------------------

class SimulatedScheme:
    """Fast hash-based stand-in for a signature scheme.

    ``private = seed``; ``public = (seed,)`` (the seed is embedded so the
    verifier can recompute); ``sign(m) = SHA-256(seed || m)``.  Integrity
    and key-binding hold for honest participants; confidentiality of the
    signing ability does **not** (``secure = False``).  Intended only for
    benchmarks that would otherwise be dominated by RSA arithmetic.
    """

    name = "simulated"
    secure = False

    def generate(self, rng: random.Random) -> KeyPair:
        seed = rng.getrandbits(128).to_bytes(16, "big").hex()
        public = PublicKey(self.name, (seed,))
        private = PrivateKey(self.name, (seed,))
        return KeyPair(private, public)

    @staticmethod
    def _mac(seed: str, message: bytes) -> bytes:
        return hashlib.sha256(seed.encode("ascii") + b"|" + message).digest()

    def sign(self, private: PrivateKey, message: bytes) -> bytes:
        if private.scheme != self.name:
            raise CryptoError(f"key scheme {private.scheme!r} != {self.name!r}")
        return self._mac(private.material[0], message)

    def verify(self, public: PublicKey, message: bytes, signature: bytes) -> bool:
        if public.scheme != self.name:
            return False
        return self._mac(public.material[0], message) == signature


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_SCHEMES: dict[str, SignatureScheme] = {}


def register_scheme(scheme: SignatureScheme) -> None:
    """Register *scheme* so keys can find their implementation by name."""
    _SCHEMES[scheme.name] = scheme


def get_scheme(name: str) -> SignatureScheme:
    """Return the registered scheme called *name*.

    Raises :class:`~repro.errors.CryptoError` for unknown names.
    """
    try:
        return _SCHEMES[name]
    except KeyError:
        raise CryptoError(f"unknown signature scheme {name!r}") from None


register_scheme(RSAScheme())
register_scheme(SimulatedScheme())
