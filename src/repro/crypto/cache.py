"""Bounded memoization of the hot verification primitives.

Section 7 of the paper attributes most of the per-hop signalling cost to
public-key operations: every BB re-verifies the whole nested-envelope
chain, the peer introduction, and the seven §6.5 capability checks on
every request, even when the same user reserves over the same path a
thousand times.  This module caches those verdicts without ever letting
a cache hit become a security downgrade:

* **signature cache** — memoizes the *pure math* of one signature check
  (``scheme.verify(key, message, signature)``), keyed by the scheme
  name, the key id, and content digests of the message and signature.
  Signature validity is an immutable function of its inputs, so entries
  are never invalidated (only LRU-evicted) and both verdicts may be
  cached;
* **RAR verdict cache** — memoizes a whole successful transitive-trust
  verification (:func:`repro.core.trust.verify_rar`), keyed by the
  envelope's canonical-bytes digest plus verifier and peer identity.
  The entry carries every certificate the verdict depended on, and the
  caller **re-runs the cheap time- and policy-dependent guards on every
  hit** (validity windows, revocation oracles, direct-trust acceptance,
  depth/scheme policy) — only the expensive signature math is skipped;
* **delegation verdict cache** — same contract for the §6.5 cascaded
  delegation checks; the proof-of-possession check (check 5) involves a
  live nonce and is always re-run by the caller.

Only *positive* verdicts are cached for RARs and delegation chains: a
denial may become a grant when trust is broadened or a clock advances,
and a stale denial served from cache would be wrong (the reverse — a
stale grant — is prevented by the hit-time guards plus the explicit
:meth:`VerificationCaches.invalidate_certificate` hook that
:meth:`repro.crypto.x509.CertificateAuthority.revoke` calls).

The module-global enable/disable/use pattern mirrors ``repro.obs``:
caching is off by default (tier-1 behaviour is bit-for-bit unchanged)
and scoped on explicitly by benchmarks, the concurrent signaller, or a
``use_caches()`` block.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from repro.errors import CryptoError
from repro.obs import metrics as obs_metrics

__all__ = [
    "LRUCache",
    "VerificationCaches",
    "enable",
    "disable",
    "get_caches",
    "use_caches",
    "notify_revoked",
]


def digest(data: bytes) -> bytes:
    """Content digest used in cache keys (sha256, truncated for compactness)."""
    return hashlib.sha256(data).digest()[:16]


class LRUCache:
    """A thread-safe bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` evicts the oldest entry once
    ``maxsize`` is exceeded.  All operations take the internal lock, so
    concurrent signalling workers can share one instance.
    """

    def __init__(
        self, maxsize: int, *,
        on_evict: Any | None = None,
    ) -> None:
        if maxsize < 1:
            raise CryptoError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        #: Entries evicted by the size bound (the churn regression test
        #: asserts this moves while ``len`` stays pinned at ``maxsize``).
        self.evictions = 0
        #: Called with each size-evicted key, *after* the internal lock
        #: is released (so the callback may take other locks freely).
        self._on_evict = on_evict

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            if key not in self._data:
                return None
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        evicted: list[Hashable] = []
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                old_key, _ = self._data.popitem(last=False)
                self.evictions += 1
                evicted.append(old_key)
        if self._on_evict is not None:
            for old_key in evicted:
                self._on_evict(old_key)

    def discard(self, key: Hashable) -> bool:
        with self._lock:
            return self._data.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> tuple[Hashable, ...]:
        with self._lock:
            return tuple(self._data)


def _meter(cache: str, result: str) -> None:
    """Count one lookup outcome; free when observability is disabled."""
    registry = obs_metrics.get_registry()
    if registry is None:
        return
    registry.counter(
        "verification_cache_events_total",
        "Verification-cache lookups by cache name and hit/miss/invalidate",
    ).inc(cache=cache, result=result)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters for one run (independent of obs state)."""

    hits: int
    misses: int
    invalidations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _StatCell:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class VerificationCaches:
    """The three verification caches plus the revocation reverse-index.

    Verdict entries register the fingerprints of every certificate they
    depend on; :meth:`invalidate_certificate` (driven by CA revocation)
    drops all dependent verdicts at once.  The signature cache is pure
    math and exempt from invalidation by construction.
    """

    def __init__(
        self,
        *,
        signature_size: int = 4096,
        rar_size: int = 1024,
        delegation_size: int = 1024,
    ) -> None:
        self.signature = LRUCache(signature_size)
        # Verdict stores report size-evictions back so the revocation
        # reverse-index never outlives the entries it points at — a
        # revocation *storm* (10^4 revoke/re-issue cycles) must leave
        # the index bounded by the live entries, not by history.
        self.rar = LRUCache(
            rar_size,
            on_evict=lambda key: self._forget_entry("rar", key),
        )
        self.delegation = LRUCache(
            delegation_size,
            on_evict=lambda key: self._forget_entry("delegation", key),
        )
        self._lock = threading.RLock()
        #: cert fingerprint -> {(cache_name, key), ...} of dependent verdicts.
        self._dependents: dict[str, set[tuple[str, Hashable]]] = {}
        #: (cache_name, key) -> the fingerprints it registered under
        #: (the forward map that makes reverse-index pruning exact).
        self._entry_deps: dict[tuple[str, Hashable], tuple[str, ...]] = {}
        self._stats = {
            "signature": _StatCell(),
            "rar": _StatCell(),
            "delegation": _StatCell(),
        }

    # -- bookkeeping ---------------------------------------------------------------

    def _count(self, cache: str, result: str) -> None:
        cell = self._stats[cache]
        with cell.lock:
            if result == "hit":
                cell.hits += 1
            elif result == "miss":
                cell.misses += 1
            else:
                cell.invalidations += 1
        _meter(cache, result)

    def stats(self, cache: str) -> CacheStats:
        cell = self._stats[cache]
        with cell.lock:
            return CacheStats(cell.hits, cell.misses, cell.invalidations)

    # -- signature math (never invalidated) ----------------------------------------

    def verify_signature(
        self,
        scheme_name: str,
        key_id: str,
        message: bytes,
        signature: bytes,
        verify: Any,
    ) -> bool:
        """Memoized ``scheme.verify``; *verify* is the zero-arg fallback.

        The key binds scheme, key, message digest, and signature digest,
        so a hit can only ever repeat the exact computation it replaces.
        """
        key = (scheme_name, key_id, digest(message), digest(signature))
        cached = self.signature.get(key)
        if cached is not None:
            self._count("signature", "hit")
            return bool(cached[0])
        self._count("signature", "miss")
        result = bool(verify())
        self.signature.put(key, (result,))
        return result

    # -- verdict caches (guarded + invalidatable) ----------------------------------

    def get_verdict(self, cache: str, key: Hashable) -> Any | None:
        store = self.rar if cache == "rar" else self.delegation
        entry = store.get(key)
        self._count(cache, "hit" if entry is not None else "miss")
        return entry

    def put_verdict(
        self, cache: str, key: Hashable, entry: Any,
        dependency_fingerprints: tuple[str, ...],
    ) -> None:
        store = self.rar if cache == "rar" else self.delegation
        with self._lock:
            # Re-registering a key under different dependencies must not
            # leave the old fingerprints pointing at it.
            self._forget_entry(cache, key)
            store.put(key, entry)
            self._entry_deps[(cache, key)] = tuple(dependency_fingerprints)
            for fingerprint in dependency_fingerprints:
                self._dependents.setdefault(fingerprint, set()).add((cache, key))

    def _forget_entry(self, cache: str, key: Hashable) -> None:
        """Erase one verdict's reverse-index registrations (entry gone:
        evicted, invalidated, or about to be overwritten)."""
        with self._lock:
            for fingerprint in self._entry_deps.pop((cache, key), ()):
                dependents = self._dependents.get(fingerprint)
                if dependents is not None:
                    dependents.discard((cache, key))
                    if not dependents:
                        del self._dependents[fingerprint]

    def invalidate_certificate(self, fingerprint: str) -> int:
        """Drop every verdict that depended on *fingerprint*.

        Called by :meth:`CertificateAuthority.revoke`; returns how many
        entries were dropped.  A revoked certificate can therefore never
        admit from cache even before the hit-time revocation guard runs.
        Dropped entries are also erased from every *other* fingerprint's
        dependent set, so storms of revocations cannot grow the index.
        """
        with self._lock:
            dependents = self._dependents.pop(fingerprint, set())
            dropped = 0
            for cache, key in dependents:
                store = self.rar if cache == "rar" else self.delegation
                if store.discard(key):
                    dropped += 1
                    self._count(cache, "invalidate")
                self._forget_entry(cache, key)
        return dropped

    def reverse_index_size(self) -> tuple[int, int]:
        """(fingerprints tracked, total dependent pairs) — both bounded
        by the live verdict entries."""
        with self._lock:
            return (
                len(self._dependents),
                sum(len(deps) for deps in self._dependents.values()),
            )

    def clear(self) -> None:
        with self._lock:
            self.signature.clear()
            self.rar.clear()
            self.delegation.clear()
            self._dependents.clear()
            self._entry_deps.clear()

    def render(self) -> str:
        lines = ["verification caches:"]
        for name, store in (
            ("signature", self.signature),
            ("rar", self.rar),
            ("delegation", self.delegation),
        ):
            stats = self.stats(name)
            lines.append(
                f"  {name:<10s} size={len(store)}/{store.maxsize}"
                f" hits={stats.hits} misses={stats.misses}"
                f" hit_rate={stats.hit_rate:.2%}"
                f" invalidations={stats.invalidations}"
                f" evictions={store.evictions}"
            )
        return "\n".join(lines)


# -- module-global handle (mirrors repro.obs.metrics) ------------------------------

_active: VerificationCaches | None = None
_active_lock = threading.Lock()


def enable(
    *,
    signature_size: int = 4096,
    rar_size: int = 1024,
    delegation_size: int = 1024,
) -> VerificationCaches:
    """Install (and return) a fresh process-global cache set."""
    global _active
    with _active_lock:
        _active = VerificationCaches(
            signature_size=signature_size,
            rar_size=rar_size,
            delegation_size=delegation_size,
        )
        return _active


def disable() -> None:
    global _active
    with _active_lock:
        _active = None


def get_caches() -> VerificationCaches | None:
    """The active cache set, or ``None`` when caching is off (default)."""
    return _active


@contextmanager
def use_caches(
    caches: VerificationCaches | None = None,
) -> Iterator[VerificationCaches]:
    """Scope-install *caches* (or a fresh default set), restoring on exit."""
    global _active
    with _active_lock:
        previous = _active
        _active = caches if caches is not None else VerificationCaches()
        installed = _active
    try:
        yield installed
    finally:
        with _active_lock:
            _active = previous


def notify_revoked(fingerprint: str) -> None:
    """Revocation hook for issuers: invalidate if caching is active."""
    caches = get_caches()
    if caches is not None:
        caches.invalidate_certificate(fingerprint)
