"""Distinguished names (DNs).

The protocol identifies every principal — users, bandwidth brokers,
certificate authorities, community authorization servers — by an X.500
style distinguished name such as ``/O=Grid/OU=DomainA/CN=BB-A``.  The
paper's message notation (``DN_BBA``, ``DN_U``) refers to these values.

A :class:`DistinguishedName` is an ordered tuple of ``(attribute, value)``
pairs.  Comparison is case-insensitive in attribute types (``cn`` == ``CN``)
and case-sensitive in values, matching common X.500 practice closely
enough for a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable

from repro.errors import CryptoError

__all__ = ["DistinguishedName", "DN"]

_VALID_ATTRS = {"C", "O", "OU", "CN", "L", "ST", "DC", "UID", "EMAIL"}


@total_ordering
@dataclass(frozen=True)
class DistinguishedName:
    """An ordered X.500-style distinguished name.

    Construct from pairs, or parse the slash form with :meth:`parse`::

        DN.parse("/O=Grid/OU=DomainA/CN=BB-A")
        DistinguishedName((("O", "Grid"), ("OU", "DomainA"), ("CN", "BB-A")))
    """

    rdns: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.rdns:
            raise CryptoError("a distinguished name needs at least one RDN")
        normalized = []
        for pair in self.rdns:
            if len(pair) != 2:
                raise CryptoError(f"malformed RDN {pair!r}")
            attr, value = pair
            attr_up = attr.upper()
            if attr_up not in _VALID_ATTRS:
                raise CryptoError(f"unknown DN attribute type {attr!r}")
            if not value or "/" in value or "=" in value:
                raise CryptoError(f"invalid DN attribute value {value!r}")
            normalized.append((attr_up, value))
        object.__setattr__(self, "rdns", tuple(normalized))

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        """Parse ``/ATTR=value/ATTR=value`` syntax.

        Raises :class:`~repro.errors.CryptoError` on malformed input.
        """
        if not text.startswith("/"):
            raise CryptoError(f"DN must start with '/': {text!r}")
        parts = [p for p in text.split("/") if p]
        if not parts:
            raise CryptoError("empty DN")
        rdns = []
        for part in parts:
            if "=" not in part:
                raise CryptoError(f"RDN {part!r} lacks '='")
            attr, _, value = part.partition("=")
            rdns.append((attr.strip(), value.strip()))
        return cls(tuple(rdns))

    @classmethod
    def make(cls, organization: str, unit: str | None = None,
             common_name: str | None = None) -> "DistinguishedName":
        """Convenience constructor for the common O/OU/CN shape."""
        rdns: list[tuple[str, str]] = [("O", organization)]
        if unit is not None:
            rdns.append(("OU", unit))
        if common_name is not None:
            rdns.append(("CN", common_name))
        return cls(tuple(rdns))

    # -- accessors -----------------------------------------------------------

    def get(self, attr: str) -> str | None:
        """Return the first value of *attr* (case-insensitive), or None."""
        attr_up = attr.upper()
        for a, v in self.rdns:
            if a == attr_up:
                return v
        return None

    @property
    def common_name(self) -> str | None:
        return self.get("CN")

    @property
    def organization(self) -> str | None:
        return self.get("O")

    def with_cn(self, common_name: str) -> "DistinguishedName":
        """Return a copy whose CN is replaced (or appended) with *common_name*.

        Used when the paper derives capability-certificate subjects from a
        user DN "potentially modified to indicate that this is a capability
        certificate".
        """
        rdns = [(a, v) for a, v in self.rdns if a != "CN"]
        rdns.append(("CN", common_name))
        return DistinguishedName(tuple(rdns))

    def is_descendant_of(self, ancestor: "DistinguishedName") -> bool:
        """True when *ancestor*'s RDN sequence is a strict prefix of ours."""
        if len(ancestor.rdns) >= len(self.rdns):
            return False
        return self.rdns[: len(ancestor.rdns)] == ancestor.rdns

    # -- encoding / formatting ----------------------------------------------

    def to_cbe(self) -> list[list[str]]:
        return [list(pair) for pair in self.rdns]

    def __str__(self) -> str:
        return "".join(f"/{a}={v}" for a, v in self.rdns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DN({str(self)!r})"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, DistinguishedName):
            return NotImplemented
        return self.rdns < other.rdns


#: Short alias used pervasively in the codebase and the paper's notation.
DN = DistinguishedName


def dn_set(names: Iterable[DistinguishedName]) -> frozenset[DistinguishedName]:
    """Build a frozenset of DNs (helper for trust-store construction)."""
    return frozenset(names)
