"""Cryptographic substrate: canonical encoding, key pairs and signature
schemes, distinguished names, X.509-style certificates and CAs, capability
certificates with Neuman-style cascaded delegation, and trust stores.

This package is the reproduction's stand-in for the OpenSSL/X.509v3 PKI
the paper assumes.  See DESIGN.md §3 for the substitution rationale.
"""

from repro.crypto.canonical import digest, encode, fingerprint
from repro.crypto.capability import (
    DelegationResult,
    ProxyCredential,
    check_possession,
    delegate,
    issue_capability,
    prove_possession,
    verify_delegation_chain,
)
from repro.crypto.dn import DN, DistinguishedName
from repro.crypto.keys import (
    KeyPair,
    PrivateKey,
    PublicKey,
    RSAScheme,
    SignatureScheme,
    SimulatedScheme,
    get_scheme,
    register_scheme,
)
from repro.crypto.repository import CertificateRepository
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import Certificate, CertificateAuthority, verify_chain

__all__ = [
    "encode",
    "digest",
    "fingerprint",
    "DN",
    "DistinguishedName",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "SignatureScheme",
    "RSAScheme",
    "SimulatedScheme",
    "get_scheme",
    "register_scheme",
    "Certificate",
    "CertificateAuthority",
    "verify_chain",
    "ProxyCredential",
    "DelegationResult",
    "issue_capability",
    "delegate",
    "verify_delegation_chain",
    "prove_possession",
    "check_possession",
    "TrustPolicy",
    "TrustStore",
    "CertificateRepository",
]
