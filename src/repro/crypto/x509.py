"""X.509-style certificates and certificate authorities.

This is the reproduction's stand-in for the ITU X.509v3 PKI the paper
assumes.  A :class:`Certificate` binds a subject DN to a public key, is
signed by an issuer, and can carry arbitrary v3-style extensions (used by
:mod:`repro.crypto.capability` for capability certificates and by the
Akenti-style engine for attribute certificates).

Timestamps are plain floats on the simulation clock (seconds); the library
never reads the wall clock, keeping every scenario deterministic.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from hashlib import sha256 as hashlib_sha256
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.crypto import cache as verification_cache
from repro.crypto import canonical
from repro.obs.audit import ledger as obs_audit
from repro.crypto.dn import DN, DistinguishedName
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, get_scheme
from repro.errors import (
    CertificateError,
    CertificateExpiredError,
    CertificateRevokedError,
    SignatureError,
    UntrustedIssuerError,
)

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "verify_chain",
    "EXT_BASIC_CONSTRAINTS_CA",
]

#: Extension key marking a certificate as a CA certificate.
EXT_BASIC_CONSTRAINTS_CA = "basic_constraints_ca"

#: Default validity window (ten simulated years), generous on purpose:
#: expiry semantics are tested explicitly, not tripped over accidentally.
DEFAULT_VALIDITY = 10 * 365 * 24 * 3600.0


@dataclass(frozen=True)
class Certificate:
    """An X.509v3-style certificate.

    ``extensions`` values must be canonically encodable (see
    :mod:`repro.crypto.canonical`); tuples are preferred over lists for
    hashability of the dataclass.
    """

    serial: int
    issuer: DistinguishedName
    subject: DistinguishedName
    public_key: PublicKey
    not_before: float
    not_after: float
    extensions: tuple[tuple[str, Any], ...]
    signature: bytes
    signature_scheme: str

    # -- structure -----------------------------------------------------------

    def tbs(self) -> dict:
        """The to-be-signed portion as a canonical mapping."""
        return {
            "serial": self.serial,
            "issuer": self.issuer.to_cbe(),
            "subject": self.subject.to_cbe(),
            "public_key": self.public_key.to_cbe(),
            "not_before": self.not_before,
            "not_after": self.not_after,
            "extensions": {k: _ext_cbe(v) for k, v in self.extensions},
        }

    def tbs_bytes(self) -> bytes:
        """Canonical bytes of the to-be-signed portion (memoized — the
        certificate is immutable and gets re-verified at every hop)."""
        cached = getattr(self, "_tbs_bytes_cache", None)
        if cached is None:
            cached = canonical.encode(self.tbs())
            object.__setattr__(self, "_tbs_bytes_cache", cached)
        return cached

    def to_cbe(self) -> dict:
        data = self.tbs()
        data["signature"] = self.signature
        data["signature_scheme"] = self.signature_scheme
        return data

    def cbe_bytes(self) -> bytes:
        """Canonical bytes of the full certificate (memoized; spliced into
        enclosing encodings by :mod:`repro.crypto.canonical`)."""
        cached = getattr(self, "_cbe_bytes_cache", None)
        if cached is None:
            cached = canonical.encode(self.to_cbe())
            object.__setattr__(self, "_cbe_bytes_cache", cached)
        return cached

    # -- accessors -----------------------------------------------------------

    def extension(self, key: str, default: Any = None) -> Any:
        for k, v in self.extensions:
            if k == key:
                return v
        return default

    @property
    def is_ca(self) -> bool:
        return bool(self.extension(EXT_BASIC_CONSTRAINTS_CA, False))

    @property
    def fingerprint(self) -> str:
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is None:
            cached = hashlib_sha256(self.cbe_bytes()).hexdigest()[:16]
            object.__setattr__(self, "_fingerprint_cache", cached)
        return cached

    def valid_at(self, when: float) -> bool:
        return self.not_before <= when <= self.not_after

    # -- verification ---------------------------------------------------------

    def verify_signature(self, issuer_public: PublicKey) -> bool:
        """True iff this certificate's signature verifies under *issuer_public*."""
        scheme = get_scheme(self.signature_scheme)
        caches = verification_cache.get_caches()
        if caches is None:
            return scheme.verify(issuer_public, self.tbs_bytes(), self.signature)
        return caches.verify_signature(
            self.signature_scheme, issuer_public.key_id,
            self.tbs_bytes(), self.signature,
            lambda: scheme.verify(issuer_public, self.tbs_bytes(), self.signature),
        )

    def check_validity(self, when: float) -> None:
        """Raise :class:`CertificateExpiredError` unless valid at *when*."""
        if not self.valid_at(when):
            raise CertificateExpiredError(
                f"certificate {self.subject} (serial {self.serial}) not valid "
                f"at t={when} (window [{self.not_before}, {self.not_after}])"
            )

    def with_tampered_subject(self, subject: DistinguishedName) -> "Certificate":
        """Return a copy with a different subject but the *old* signature.

        Test helper: the result must always fail verification.
        """
        return replace(self, subject=subject)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Certificate(subject={self.subject}, issuer={self.issuer}, "
            f"serial={self.serial})"
        )


def _ext_cbe(value: Any) -> Any:
    """Convert extension values to canonically encodable form."""
    if isinstance(value, tuple):
        return [_ext_cbe(v) for v in value]
    if hasattr(value, "to_cbe"):
        return value.to_cbe()
    return value


def _freeze_extensions(extensions: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    if not extensions:
        return ()
    return tuple(sorted(extensions.items()))


def sign_certificate(
    *,
    serial: int,
    issuer: DistinguishedName,
    subject: DistinguishedName,
    public_key: PublicKey,
    signing_key: PrivateKey,
    not_before: float = 0.0,
    not_after: float = DEFAULT_VALIDITY,
    extensions: Mapping[str, Any] | None = None,
) -> Certificate:
    """Build and sign a certificate (low-level; prefer a CA's ``issue``)."""
    if not_after <= not_before:
        raise CertificateError("not_after must exceed not_before")
    unsigned = Certificate(
        serial=serial,
        issuer=issuer,
        subject=subject,
        public_key=public_key,
        not_before=not_before,
        not_after=not_after,
        extensions=_freeze_extensions(extensions),
        signature=b"",
        signature_scheme=signing_key.scheme,
    )
    scheme = get_scheme(signing_key.scheme)
    signature = scheme.sign(signing_key, unsigned.tbs_bytes())
    return replace(unsigned, signature=signature)


class CertificateAuthority:
    """A certificate authority with its own key pair and revocation list.

    Each administrative domain in the testbed runs one; SLAs between
    peered domains exchange the CA certificates that anchor the mutual
    TLS-style authentication of the inter-BB channels.
    """

    def __init__(
        self,
        name: DistinguishedName | str,
        *,
        rng: random.Random | None = None,
        scheme: str = "rsa",
        keypair: KeyPair | None = None,
        validity: float = DEFAULT_VALIDITY,
    ) -> None:
        self.name = DN.parse(name) if isinstance(name, str) else name
        self._rng = rng if rng is not None else random.Random(0xCA)
        self._scheme = get_scheme(scheme)
        self.keypair = keypair if keypair is not None else self._scheme.generate(self._rng)
        self._serials = itertools.count(1)
        self._revoked: set[int] = set()
        self._issued: dict[int, Certificate] = {}
        self.validity = validity
        self.certificate = sign_certificate(
            serial=next(self._serials),
            issuer=self.name,
            subject=self.name,
            public_key=self.keypair.public,
            signing_key=self.keypair.private,
            not_after=validity,
            extensions={EXT_BASIC_CONSTRAINTS_CA: True},
        )
        self._issued[self.certificate.serial] = self.certificate

    # -- issuing ---------------------------------------------------------------

    def issue(
        self,
        subject: DistinguishedName | str,
        public_key: PublicKey,
        *,
        not_before: float = 0.0,
        not_after: float | None = None,
        extensions: Mapping[str, Any] | None = None,
        is_ca: bool = False,
    ) -> Certificate:
        """Issue a certificate for *subject* binding *public_key*."""
        subject_dn = DN.parse(subject) if isinstance(subject, str) else subject
        exts = dict(extensions or {})
        if is_ca:
            exts[EXT_BASIC_CONSTRAINTS_CA] = True
        cert = sign_certificate(
            serial=next(self._serials),
            issuer=self.name,
            subject=subject_dn,
            public_key=public_key,
            signing_key=self.keypair.private,
            not_before=not_before,
            not_after=self.validity if not_after is None else not_after,
            extensions=exts,
        )
        self._issued[cert.serial] = cert
        return cert

    def issue_keypair(
        self,
        subject: DistinguishedName | str,
        *,
        rng: random.Random | None = None,
        **kwargs: Any,
    ) -> tuple[KeyPair, Certificate]:
        """Generate a key pair and issue a certificate for it in one step."""
        keypair = self._scheme.generate(rng if rng is not None else self._rng)
        cert = self.issue(subject, keypair.public, **kwargs)
        return keypair, cert

    # -- revocation --------------------------------------------------------------

    def revoke(self, serial: int) -> None:
        if serial not in self._issued:
            raise CertificateError(f"serial {serial} was not issued by {self.name}")
        self._revoked.add(serial)
        # A revoked certificate must also stop admitting *from cache*:
        # drop every memoized verdict that depended on it.
        cert = self._issued[serial]
        verification_cache.notify_revoked(cert.fingerprint)
        obs_audit.record_revocation(
            fingerprint=cert.fingerprint,
            subject=str(cert.subject),
            authority=str(self.name),
        )

    def is_revoked(self, cert: Certificate) -> bool:
        return cert.issuer == self.name and cert.serial in self._revoked

    @property
    def crl(self) -> frozenset[int]:
        """The current revocation list (serials)."""
        return frozenset(self._revoked)


RevocationChecker = Callable[[Certificate], bool]


def verify_chain(
    chain: Sequence[Certificate],
    trust_anchors: Iterable[Certificate],
    *,
    at_time: float = 0.0,
    revocation_checker: RevocationChecker | None = None,
    max_length: int = 8,
) -> Certificate:
    """Verify a leaf-first certificate chain against *trust_anchors*.

    ``chain[0]`` is the end-entity certificate; each subsequent element
    must be the issuer of its predecessor.  The final certificate must
    either *be* a trust anchor or be directly signed by one.  Returns the
    verified leaf certificate.

    Raises the most specific :class:`~repro.errors.CertificateError`
    subclass describing the failure.
    """
    if not chain:
        raise CertificateError("empty certificate chain")
    if len(chain) > max_length:
        raise CertificateError(
            f"chain length {len(chain)} exceeds maximum {max_length}"
        )
    anchors = {cert.fingerprint: cert for cert in trust_anchors}
    anchor_by_dn: dict[DistinguishedName, list[Certificate]] = {}
    for cert in anchors.values():
        anchor_by_dn.setdefault(cert.subject, []).append(cert)

    for i, cert in enumerate(chain):
        cert.check_validity(at_time)
        if revocation_checker is not None and revocation_checker(cert):
            raise CertificateRevokedError(
                f"certificate {cert.subject} (serial {cert.serial}) is revoked"
            )
        if i > 0 and not cert.is_ca:
            raise CertificateError(
                f"intermediate certificate {cert.subject} lacks the CA bit"
            )
        if i + 1 < len(chain):
            issuer_cert = chain[i + 1]
            if issuer_cert.subject != cert.issuer:
                raise CertificateError(
                    f"chain break: {cert.subject} names issuer {cert.issuer}, "
                    f"next element is {issuer_cert.subject}"
                )
            if not cert.verify_signature(issuer_cert.public_key):
                raise SignatureError(
                    f"signature on {cert.subject} does not verify under "
                    f"{issuer_cert.subject}"
                )

    last = chain[-1]
    if last.fingerprint in anchors:
        return chain[0]
    # Otherwise the last element must be signed by some trust anchor.
    for anchor in anchor_by_dn.get(last.issuer, []):
        if last.verify_signature(anchor.public_key):
            return chain[0]
    raise UntrustedIssuerError(
        f"chain terminates at {last.subject} (issuer {last.issuer}), which is "
        f"neither a trust anchor nor signed by one"
    )
