"""Canonical, deterministic byte encoding of structured values for signing.

Digital signatures in the signalling protocol cover *structured* content:
reservation specifications, nested signed envelopes, certificate fields.
Two parties must derive the identical byte string from the identical
logical value, otherwise signatures are not portable.  This module defines
a small, self-describing, deterministic encoding ("CBE" — canonical byte
encoding) with the following properties:

* **Deterministic** — mappings are encoded in sorted key order; there is
  exactly one encoding per value.
* **Injective** — distinct values never share an encoding.  Every item is
  length-prefixed and type-tagged, so concatenation ambiguities (the
  classic ``("ab","c")`` vs ``("a","bc")`` problem) cannot occur.
* **Closed** — only a fixed set of types is supported; anything else
  raises :class:`~repro.errors.EncodingError`.  In particular floats are
  encoded via their IEEE-754 hex representation so that equality of
  encodings matches equality of values.

Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``tuple``/``list`` (both encode as sequences), ``dict`` with
string keys, and any object exposing ``to_cbe()`` returning a supported
value (the hook used by certificates and envelopes).

Performance: objects may additionally expose ``cbe_bytes()`` returning
their *already encoded* canonical bytes; the encoder splices those in
directly.  Because the encoding is compositional (a container's encoding
is the concatenation of its items' encodings under a tagged length
prefix), this is semantically identical to re-encoding ``to_cbe()`` —
immutable protocol objects (certificates, signed envelopes) memoize
their bytes this way, which is what keeps deeply nested RAR verification
linear instead of quadratic.

The encoding is *not* meant to be a wire format for interoperability with
other software — it is the reproduction's stand-in for DER.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

from repro.errors import EncodingError

__all__ = ["encode", "decode", "digest", "fingerprint"]

# One-byte type tags.  Kept stable forever: signatures depend on them.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_SEQ = b"L"
_TAG_MAP = b"M"


def _emit(parts: list[bytes], tag: bytes, payload: bytes) -> None:
    parts.append(tag)
    parts.append(struct.pack(">I", len(payload)))
    parts.append(payload)


def _encode_into(value: Any, parts: list[bytes], depth: int) -> None:
    if depth > 200:
        raise EncodingError("value nesting exceeds maximum depth 200")
    if value is None:
        _emit(parts, _TAG_NONE, b"")
    elif value is True:
        _emit(parts, _TAG_TRUE, b"")
    elif value is False:
        _emit(parts, _TAG_FALSE, b"")
    elif isinstance(value, int):
        # Sign-magnitude decimal keeps arbitrary precision and determinism.
        _emit(parts, _TAG_INT, str(value).encode("ascii"))
    elif isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise EncodingError("non-finite floats are not encodable")
        _emit(parts, _TAG_FLOAT, value.hex().encode("ascii"))
    elif isinstance(value, str):
        _emit(parts, _TAG_STR, value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray, memoryview)):
        _emit(parts, _TAG_BYTES, bytes(value))
    elif isinstance(value, (tuple, list)):
        inner: list[bytes] = []
        for item in value:
            _encode_into(item, inner, depth + 1)
        _emit(parts, _TAG_SEQ, b"".join(inner))
    elif isinstance(value, dict):
        inner = []
        try:
            keys = sorted(value.keys())
        except TypeError as exc:  # mixed / non-string keys
            raise EncodingError("mapping keys must be strings") from exc
        for key in keys:
            if not isinstance(key, str):
                raise EncodingError(
                    f"mapping keys must be strings, got {type(key).__name__}"
                )
            _encode_into(key, inner, depth + 1)
            _encode_into(value[key], inner, depth + 1)
        _emit(parts, _TAG_MAP, b"".join(inner))
    elif hasattr(value, "cbe_bytes"):
        # Pre-encoded immutable object: splice its cached bytes in.
        parts.append(value.cbe_bytes())
    elif hasattr(value, "to_cbe"):
        _encode_into(value.to_cbe(), parts, depth + 1)
    else:
        raise EncodingError(f"type {type(value).__name__} is not encodable")


def encode(value: Any) -> bytes:
    """Return the canonical byte encoding of *value*.

    Raises :class:`~repro.errors.EncodingError` for unsupported types,
    non-finite floats, non-string mapping keys, or excessive nesting.
    """
    parts: list[bytes] = []
    _encode_into(value, parts, 0)
    return b"".join(parts)


def _decode_at(data: bytes, pos: int, depth: int) -> tuple[Any, int]:
    if depth > 200:
        raise EncodingError("encoded nesting exceeds maximum depth 200")
    if pos + 5 > len(data):
        raise EncodingError("truncated encoding (missing tag/length)")
    tag = data[pos:pos + 1]
    (length,) = struct.unpack(">I", data[pos + 1:pos + 5])
    start = pos + 5
    end = start + length
    if end > len(data):
        raise EncodingError("truncated encoding (payload shorter than length)")
    payload = data[start:end]
    if tag == _TAG_NONE:
        if length:
            raise EncodingError("None payload must be empty")
        return None, end
    if tag == _TAG_TRUE:
        return True, end
    if tag == _TAG_FALSE:
        return False, end
    if tag == _TAG_INT:
        try:
            value = int(payload.decode("ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise EncodingError("malformed integer payload") from exc
        # Strict canonical form: exactly the digits encode() would emit
        # (rejects leading zeros, "+1", whitespace, "-0", ...).
        if str(value).encode("ascii") != payload:
            raise EncodingError("non-canonical integer payload")
        return value, end
    if tag == _TAG_FLOAT:
        try:
            value = float.fromhex(payload.decode("ascii"))
        except (UnicodeDecodeError, ValueError, OverflowError) as exc:
            raise EncodingError("malformed float payload") from exc
        if value != value or value in (float("inf"), float("-inf")):
            raise EncodingError("non-finite float payload")
        if value.hex().encode("ascii") != payload:
            raise EncodingError("non-canonical float payload")
        return value, end
    if tag == _TAG_STR:
        try:
            return payload.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise EncodingError("malformed utf-8 string payload") from exc
    if tag == _TAG_BYTES:
        return payload, end
    if tag == _TAG_SEQ:
        items = []
        inner = start
        while inner < end:
            item, inner = _decode_at(data, inner, depth + 1)
            items.append(item)
        if inner != end:
            raise EncodingError("sequence payload length mismatch")
        return items, end
    if tag == _TAG_MAP:
        mapping: dict[str, Any] = {}
        inner = start
        previous_key: str | None = None
        while inner < end:
            key, inner = _decode_at(data, inner, depth + 1)
            if not isinstance(key, str):
                raise EncodingError("mapping key is not a string")
            # Strict canonical form: encode() emits keys in sorted order
            # exactly once, so out-of-order or duplicate keys cannot be
            # the output of encode() and must be rejected (otherwise two
            # distinct byte strings could decode to the same value —
            # the injectivity the signatures rely on, in reverse).
            if previous_key is not None and key <= previous_key:
                raise EncodingError(
                    "non-canonical mapping (duplicate or unsorted keys)"
                )
            previous_key = key
            value, inner = _decode_at(data, inner, depth + 1)
            mapping[key] = value
        if inner != end:
            raise EncodingError("mapping payload length mismatch")
        return mapping, end
    raise EncodingError(f"unknown type tag {tag!r}")


def decode(data: bytes) -> Any:
    """Parse a canonical byte encoding back into plain Python values.

    The inverse of :func:`encode` up to container normalisation:
    sequences come back as lists.  Raises
    :class:`~repro.errors.EncodingError` on malformed input (bad tags,
    truncation, trailing bytes).
    """
    value, end = _decode_at(bytes(data), 0, 0)
    if end != len(data):
        raise EncodingError(f"{len(data) - end} trailing bytes after value")
    return value


def digest(value: Any) -> bytes:
    """Return the SHA-256 digest of the canonical encoding of *value*."""
    return hashlib.sha256(encode(value)).digest()


def fingerprint(value: Any, length: int = 16) -> str:
    """Return a short hex fingerprint of *value* (for handles, logging)."""
    return digest(value).hex()[:length]
